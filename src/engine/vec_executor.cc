#include "engine/vec_executor.h"

#include "common/lock_registry.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "engine/agg_state.h"

namespace pse {

namespace {

/// Projects `in` onto source columns `idxs` without touching individual
/// values: whole column vectors are moved when a source column is used
/// exactly once (copied otherwise) and `in`'s selection vector, if any,
/// transfers to `out` unchanged — physical indices are column-independent,
/// so narrowing survives the projection for free. `in` is left hollow;
/// callers Reset() it before reuse.
void GatherColumns(TupleBatch* in, const std::vector<size_t>& idxs, TupleBatch* out) {
  const size_t phys = in->num_rows();
  out->Reset(idxs.size(), phys);
  for (size_t j = 0; j < idxs.size(); ++j) {
    size_t uses = 0;
    for (size_t k : idxs) {
      if (k == idxs[j]) ++uses;
    }
    if (uses == 1) {
      out->col(j) = std::move(in->col(idxs[j]));
    } else {
      out->col(j) = in->col(idxs[j]);
    }
  }
  out->SetNumRows(phys);
  if (in->has_sel()) out->SetSel(in->sel());
}

/// Collects the resolved positions of every ColumnRef under `e` into `out`.
/// Returns false (collector output unusable) on an unresolved reference or a
/// node kind this walker does not know, in which case the caller must assume
/// every column is referenced.
bool CollectColumnPositions(const Expr& e, std::vector<size_t>* out) {
  if (const auto* col = dynamic_cast<const ColumnRefExpr*>(&e)) {
    if (!col->resolved()) return false;
    out->push_back(col->position());
    return true;
  }
  if (dynamic_cast<const ConstantExpr*>(&e) != nullptr) return true;
  if (const auto* cmp = dynamic_cast<const CompareExpr*>(&e)) {
    return CollectColumnPositions(*cmp->left(), out) &&
           CollectColumnPositions(*cmp->right(), out);
  }
  if (const auto* logic = dynamic_cast<const LogicExpr*>(&e)) {
    return CollectColumnPositions(*logic->left(), out) &&
           CollectColumnPositions(*logic->right(), out);
  }
  if (const auto* arith = dynamic_cast<const ArithExpr*>(&e)) {
    return CollectColumnPositions(*arith->left(), out) &&
           CollectColumnPositions(*arith->right(), out);
  }
  if (const auto* neg = dynamic_cast<const NotExpr*>(&e)) {
    return CollectColumnPositions(*neg->child(), out);
  }
  if (const auto* like = dynamic_cast<const LikeExpr*>(&e)) {
    return CollectColumnPositions(*like->child(), out);
  }
  if (const auto* isnull = dynamic_cast<const IsNullExpr*>(&e)) {
    return CollectColumnPositions(*isnull->child(), out);
  }
  if (const auto* in = dynamic_cast<const InListExpr*>(&e)) {
    return CollectColumnPositions(*in->child(), out);
  }
  return false;
}

class SeqScanVecExecutor : public VecExecutor {
 public:
  SeqScanVecExecutor(const PlanNode& plan, TableInfo* table, const ExecOptions& options)
      : VecExecutor(options), plan_(plan), table_(table) {}

  Status Init() override {
    if (plan_.scan_filter) {
      PSE_ASSIGN_OR_RETURN(filter_, ExprVecExecutor::Create(*plan_.scan_filter));
    }
    // Column pruning: decode only what the projection or the pushed-down
    // filter touches. Skipped columns (often wide varchars) never leave the
    // page — the structural edge over the row engine's full-row decode.
    const size_t width = table_->schema->columns().size();
    needed_ = plan_.scan_column_idxs;
    if (plan_.scan_filter && !CollectColumnPositions(*plan_.scan_filter, &needed_)) {
      needed_.resize(width);
      for (size_t i = 0; i < width; ++i) needed_[i] = i;
    }
    std::sort(needed_.begin(), needed_.end());
    needed_.erase(std::unique(needed_.begin(), needed_.end()), needed_.end());
    // Shared content latch per batch, not per execution: the same
    // discipline (and lockdep rank) as the migration copy loop, so a
    // vectorized lane never nests table latches on the writer-preferring
    // SharedMutex.
    std::shared_lock<SharedMutex> lock(table_->latch);
    it_ = table_->heap->Begin();
    return Status::OK();
  }

  Result<bool> InternalNext(TupleBatch* out) override {
    const size_t width = table_->schema->columns().size();
    while (true) {
      full_.Reset(width, options_.batch_rows);
      cols_.clear();
      for (size_t c : needed_) cols_.push_back(&full_.col(c));
      size_t filled = 0;
      {
        std::shared_lock<SharedMutex> batch_lock(table_->latch);
        PSE_ASSIGN_OR_RETURN(filled,
                             it_.FillBatchColumns(options_.batch_rows, needed_, cols_));
      }
      if (filled == 0) return false;
      // Pruned columns stay empty; only `needed_` positions are readable,
      // which covers the filter and the gather below.
      full_.SetNumRows(filled);
      if (filter_.valid()) {
        PSE_RETURN_NOT_OK(filter_.EvalSelect(full_, &sel_));
        if (sel_.empty()) continue;  // all-filtered batch: keep scanning
        full_.SetSel(std::move(sel_));
      }
      GatherColumns(&full_, plan_.scan_column_idxs, out);
      return true;
    }
  }

 private:
  const PlanNode& plan_;
  TableInfo* table_;
  TableHeap::Iterator it_;
  ExprVecExecutor filter_;
  std::vector<size_t> needed_;
  std::vector<std::vector<Value>*> cols_;
  TupleBatch full_;
  std::vector<uint32_t> sel_;
};

class IndexScanVecExecutor : public VecExecutor {
 public:
  IndexScanVecExecutor(const PlanNode& plan, TableInfo* table, const BPlusTree* tree,
                       const ExecOptions& options)
      : VecExecutor(options), plan_(plan), table_(table), tree_(tree) {}

  Status Init() override {
    if (plan_.scan_filter) {
      PSE_ASSIGN_OR_RETURN(filter_, ExprVecExecutor::Create(*plan_.scan_filter));
    }
    int64_t lo = plan_.lo.value_or(INT64_MIN);
    int64_t hi = plan_.hi.value_or(INT64_MAX);
    rids_.clear();
    pos_ = 0;
    std::shared_lock<SharedMutex> lock(table_->latch);
    return tree_->ScanRange(lo, hi, &rids_);
  }

  Result<bool> InternalNext(TupleBatch* out) override {
    const size_t width = table_->schema->columns().size();
    while (pos_ < rids_.size()) {
      full_.Reset(width, options_.batch_rows);
      {
        std::shared_lock<SharedMutex> batch_lock(table_->latch);
        Row row;
        for (size_t n = 0; pos_ < rids_.size() && n < options_.batch_rows; ++n, ++pos_) {
          PSE_RETURN_NOT_OK(table_->heap->Get(rids_[pos_], &row));
          full_.AppendRow(std::move(row));
        }
      }
      if (filter_.valid()) {
        PSE_RETURN_NOT_OK(filter_.EvalSelect(full_, &sel_));
        if (sel_.empty()) continue;
        full_.SetSel(std::move(sel_));
      }
      GatherColumns(&full_, plan_.scan_column_idxs, out);
      return true;
    }
    return false;
  }

 private:
  const PlanNode& plan_;
  TableInfo* table_;
  const BPlusTree* tree_;
  ExprVecExecutor filter_;
  std::vector<Rid> rids_;
  size_t pos_ = 0;
  TupleBatch full_;
  std::vector<uint32_t> sel_;
};

class FilterVecExecutor : public VecExecutor {
 public:
  FilterVecExecutor(const PlanNode& plan, std::unique_ptr<VecExecutor> child,
                    const ExecOptions& options)
      : VecExecutor(options), plan_(plan), child_(std::move(child)) {}

  Status Init() override {
    PSE_ASSIGN_OR_RETURN(pred_, ExprVecExecutor::Create(*plan_.predicate));
    return child_->Init();
  }

  Result<bool> InternalNext(TupleBatch* out) override {
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      // Narrow the selection vector in place: no Value moves.
      PSE_RETURN_NOT_OK(pred_.EvalSelect(*out, &sel_));
      if (sel_.empty()) continue;  // all-filtered batch: pull the next one
      out->SetSel(std::move(sel_));
      return true;
    }
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<VecExecutor> child_;
  ExprVecExecutor pred_;
  std::vector<uint32_t> sel_;
};

class ProjectVecExecutor : public VecExecutor {
 public:
  static constexpr size_t kNotPassThrough = static_cast<size_t>(-1);

  ProjectVecExecutor(const PlanNode& plan, std::unique_ptr<VecExecutor> child,
                     const ExecOptions& options)
      : VecExecutor(options), plan_(plan), child_(std::move(child)) {}

  Status Init() override {
    pass_pos_.assign(plan_.projections.size(), kNotPassThrough);
    evals_.clear();
    evals_.resize(plan_.projections.size());
    for (size_t j = 0; j < plan_.projections.size(); ++j) {
      const Expr& e = *plan_.projections[j];
      if (const auto* col = dynamic_cast<const ColumnRefExpr*>(&e); col != nullptr &&
                                                                    col->resolved()) {
        pass_pos_[j] = col->position();
        continue;
      }
      PSE_ASSIGN_OR_RETURN(evals_[j], ExprVecExecutor::Create(e));
    }
    return child_->Init();
  }

  Result<bool> InternalNext(TupleBatch* out) override {
    PSE_ASSIGN_OR_RETURN(bool has, child_->Next(&in_));
    if (!has) return false;
    // Keep the child's physical layout and selection vector: computed
    // expressions land at their physical positions, pass-through columns
    // move wholesale, and no value is copied for narrowing.
    const size_t phys = in_.num_rows();
    const size_t live = in_.size();
    out->Reset(plan_.projections.size(), phys);
    // Computed columns first — they read `in_` columns that the
    // pass-through moves below would hollow out.
    for (size_t j = 0; j < plan_.projections.size(); ++j) {
      if (pass_pos_[j] != kNotPassThrough) continue;
      const std::vector<Value>* vals = nullptr;
      PSE_RETURN_NOT_OK(evals_[j].Eval(in_, &vals));
      auto& dst = out->col(j);
      dst.resize(phys);
      for (size_t i = 0; i < live; ++i) {
        const size_t p = in_.SelIndex(i);
        dst[p] = (*vals)[p];
      }
    }
    for (size_t j = 0; j < plan_.projections.size(); ++j) {
      if (pass_pos_[j] == kNotPassThrough) continue;
      size_t uses = 0;
      for (size_t k : pass_pos_) {
        if (k == pass_pos_[j]) ++uses;
      }
      if (uses == 1) {
        out->col(j) = std::move(in_.col(pass_pos_[j]));
      } else {
        out->col(j) = in_.col(pass_pos_[j]);
      }
    }
    out->SetNumRows(phys);
    if (in_.has_sel()) out->SetSel(in_.sel());
    return true;
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<VecExecutor> child_;
  std::vector<size_t> pass_pos_;
  std::vector<ExprVecExecutor> evals_;
  TupleBatch in_;
};

class HashJoinVecExecutor : public VecExecutor {
 public:
  HashJoinVecExecutor(const PlanNode& plan, std::unique_ptr<VecExecutor> build,
                      std::unique_ptr<VecExecutor> probe, const ExecOptions& options)
      : VecExecutor(options), plan_(plan), build_(std::move(build)), probe_(std::move(probe)) {}

  Status Init() override {
    PSE_RETURN_NOT_OK(build_->Init());
    PSE_RETURN_NOT_OK(probe_->Init());
    build_width_ = plan_.children[0]->output_columns.size();
    probe_width_ = plan_.children[1]->output_columns.size();
    table_.clear();
    // Drain the build side completely before the probe side pulls its
    // first batch, so the two scans never hold table latches concurrently.
    TupleBatch batch;
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, build_->Next(&batch));
      if (!has) break;
      const size_t n = batch.size();
      for (size_t i = 0; i < n; ++i) {
        const size_t p = batch.SelIndex(i);
        const Value& key = batch.At(plan_.left_key_pos, p);
        if (key.is_null()) continue;  // NULL never joins
        table_[key].push_back(batch.RowAt(p));
      }
    }
    return Status::OK();
  }

  Result<bool> InternalNext(TupleBatch* out) override {
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, probe_->Next(&probe_batch_));
      if (!has) return false;
      out->Reset(build_width_ + probe_width_, probe_batch_.size());
      size_t emitted = 0;
      const size_t n = probe_batch_.size();
      for (size_t i = 0; i < n; ++i) {
        const size_t p = probe_batch_.SelIndex(i);
        const Value& key = probe_batch_.At(plan_.right_key_pos, p);
        if (key.is_null()) continue;
        auto it = table_.find(key);
        if (it == table_.end()) continue;
        for (const Row& build_row : it->second) {
          for (size_t c = 0; c < build_width_; ++c) out->col(c).push_back(build_row[c]);
          for (size_t c = 0; c < probe_width_; ++c) {
            out->col(build_width_ + c).push_back(probe_batch_.At(c, p));
          }
          ++emitted;
        }
      }
      if (emitted == 0) continue;
      out->SetNumRows(emitted);
      return true;
    }
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<VecExecutor> build_;
  std::unique_ptr<VecExecutor> probe_;
  std::unordered_map<Value, std::vector<Row>, ValueHash, ValueEq> table_;
  TupleBatch probe_batch_;
  size_t build_width_ = 0;
  size_t probe_width_ = 0;
};

class IndexNLJoinVecExecutor : public VecExecutor {
 public:
  IndexNLJoinVecExecutor(const PlanNode& plan, std::unique_ptr<VecExecutor> outer,
                         TableInfo* inner, const BPlusTree* tree, const ExecOptions& options)
      : VecExecutor(options), plan_(plan), outer_(std::move(outer)), inner_(inner),
        tree_(tree) {}

  Status Init() override {
    outer_width_ = plan_.children[0]->output_columns.size();
    return outer_->Init();
  }

  Result<bool> InternalNext(TupleBatch* out) override {
    Row inner_full;
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, outer_->Next(&outer_batch_));
      if (!has) return false;
      out->Reset(outer_width_ + plan_.scan_column_idxs.size(), outer_batch_.size());
      size_t emitted = 0;
      const size_t n = outer_batch_.size();
      // The outer child released its own latches when the batch returned;
      // the inner probe is the only table latch this frame holds.
      std::shared_lock<SharedMutex> inner_lock(inner_->latch);
      for (size_t i = 0; i < n; ++i) {
        const size_t p = outer_batch_.SelIndex(i);
        const Value& key = outer_batch_.At(plan_.left_key_pos, p);
        if (key.is_null() || key.type() != TypeId::kInt64) continue;
        rids_.clear();
        PSE_RETURN_NOT_OK(tree_->ScanEqual(key.AsInt(), &rids_));
        for (const Rid& rid : rids_) {
          PSE_RETURN_NOT_OK(inner_->heap->Get(rid, &inner_full));
          bool pass = true;
          if (plan_.scan_filter) {
            PSE_ASSIGN_OR_RETURN(pass, EvalPredicate(*plan_.scan_filter, inner_full));
          }
          if (!pass) continue;
          for (size_t c = 0; c < outer_width_; ++c) {
            out->col(c).push_back(outer_batch_.At(c, p));
          }
          for (size_t c = 0; c < plan_.scan_column_idxs.size(); ++c) {
            out->col(outer_width_ + c).push_back(inner_full[plan_.scan_column_idxs[c]]);
          }
          ++emitted;
        }
      }
      if (emitted == 0) continue;
      out->SetNumRows(emitted);
      return true;
    }
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<VecExecutor> outer_;
  TableInfo* inner_;
  const BPlusTree* tree_;
  TupleBatch outer_batch_;
  std::vector<Rid> rids_;
  size_t outer_width_ = 0;
};

class DistinctVecExecutor : public VecExecutor {
 public:
  DistinctVecExecutor(std::unique_ptr<VecExecutor> child, const ExecOptions& options)
      : VecExecutor(options), child_(std::move(child)) {}

  Status Init() override {
    seen_.clear();
    return child_->Init();
  }

  Result<bool> InternalNext(TupleBatch* out) override {
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      sel_.clear();
      const size_t n = out->size();
      for (size_t i = 0; i < n; ++i) {
        const size_t p = out->SelIndex(i);
        if (seen_.insert(out->RowAt(p)).second) sel_.push_back(static_cast<uint32_t>(p));
      }
      if (sel_.empty()) continue;
      out->SetSel(std::move(sel_));
      return true;
    }
  }

 private:
  std::unique_ptr<VecExecutor> child_;
  std::unordered_set<Row, RowHash, RowEq> seen_;
  std::vector<uint32_t> sel_;
};

class AggregateVecExecutor : public VecExecutor {
 public:
  AggregateVecExecutor(const PlanNode& plan, std::unique_ptr<VecExecutor> child,
                       const ExecOptions& options)
      : VecExecutor(options), plan_(plan), child_(std::move(child)) {}

  Status Init() override {
    PSE_RETURN_NOT_OK(child_->Init());
    groups_.clear();
    order_.clear();
    bool saw_any = false;
    TupleBatch batch;
    Row key;
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, child_->Next(&batch));
      if (!has) break;
      const size_t n = batch.size();
      if (n > 0) saw_any = true;
      for (size_t i = 0; i < n; ++i) {
        const size_t p = batch.SelIndex(i);
        key.clear();
        key.reserve(plan_.group_by_pos.size());
        for (size_t g : plan_.group_by_pos) key.push_back(batch.At(g, p));
        auto [it, fresh] = groups_.try_emplace(key, std::vector<AggState>(plan_.aggs.size()));
        if (fresh) order_.push_back(key);
        for (size_t a = 0; a < plan_.aggs.size(); ++a) {
          const PlanAggSpec& spec = plan_.aggs[a];
          AggState& st = it->second[a];
          if (spec.func == AggFunc::kCountStar) {
            ++st.count;
            continue;
          }
          const Value& v = batch.At(spec.arg_pos, p);
          if (v.is_null()) continue;
          AggAccumulate(spec.func, v, &st);
        }
      }
    }
    // Scalar aggregate over an empty input still yields one row.
    if (!saw_any && plan_.group_by_pos.empty()) {
      Row empty_key;
      groups_.try_emplace(empty_key, std::vector<AggState>(plan_.aggs.size()));
      order_.push_back(empty_key);
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> InternalNext(TupleBatch* out) override {
    if (pos_ >= order_.size()) return false;
    const size_t width = plan_.group_by_pos.size() + plan_.aggs.size();
    const size_t take = std::min(options_.batch_rows, order_.size() - pos_);
    out->Reset(width, take);
    Row row;
    for (size_t i = 0; i < take; ++i, ++pos_) {
      const Row& key = order_[pos_];
      const std::vector<AggState>& states = groups_.at(key);
      row.clear();
      row.reserve(width);
      row.insert(row.end(), key.begin(), key.end());
      for (size_t a = 0; a < plan_.aggs.size(); ++a) {
        PSE_ASSIGN_OR_RETURN(Value v, AggFinalize(plan_.aggs[a].func, states[a]));
        row.push_back(std::move(v));
      }
      out->AppendRow(std::move(row));
    }
    return true;
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<VecExecutor> child_;
  std::unordered_map<Row, std::vector<AggState>, RowHash, RowEq> groups_;
  std::vector<Row> order_;  // first-seen group order (deterministic output)
  size_t pos_ = 0;
};

class SortVecExecutor : public VecExecutor {
 public:
  SortVecExecutor(const PlanNode& plan, std::unique_ptr<VecExecutor> child,
                  const ExecOptions& options)
      : VecExecutor(options), plan_(plan), child_(std::move(child)) {}

  Status Init() override {
    PSE_RETURN_NOT_OK(child_->Init());
    rows_.clear();
    TupleBatch batch;
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, child_->Next(&batch));
      if (!has) break;
      batch.EmitRows(&rows_);
    }
    // Stable over the child's batch order, which is the same heap order the
    // row engine sees — ties break identically under Sort+Limit.
    const auto& keys = plan_.sort_keys;
    std::stable_sort(rows_.begin(), rows_.end(), [&keys](const Row& a, const Row& b) {
      for (const auto& k : keys) {
        int c = a[k.pos].Compare(b[k.pos]);
        if (c != 0) return k.desc ? c > 0 : c < 0;
      }
      return false;
    });
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> InternalNext(TupleBatch* out) override {
    if (pos_ >= rows_.size()) return false;
    const size_t width = rows_[pos_].size();
    const size_t take = std::min(options_.batch_rows, rows_.size() - pos_);
    out->Reset(width, take);
    for (size_t i = 0; i < take; ++i, ++pos_) out->AppendRow(std::move(rows_[pos_]));
    return true;
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<VecExecutor> child_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class LimitVecExecutor : public VecExecutor {
 public:
  LimitVecExecutor(const PlanNode& plan, std::unique_ptr<VecExecutor> child,
                   const ExecOptions& options)
      : VecExecutor(options), plan_(plan), child_(std::move(child)) {}

  Status Init() override {
    remaining_ = plan_.limit_n < 0 ? 0 : static_cast<size_t>(plan_.limit_n);
    return child_->Init();
  }

  Result<bool> InternalNext(TupleBatch* out) override {
    if (remaining_ == 0) return false;
    PSE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    if (out->size() > remaining_) {
      std::vector<uint32_t> sel;
      sel.reserve(remaining_);
      for (size_t i = 0; i < remaining_; ++i) {
        sel.push_back(static_cast<uint32_t>(out->SelIndex(i)));
      }
      out->SetSel(std::move(sel));
    }
    remaining_ -= out->size();
    return true;
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<VecExecutor> child_;
  size_t remaining_ = 0;
};

}  // namespace

Result<std::unique_ptr<VecExecutor>> BuildVecExecutor(const PlanNode& plan, Database* db,
                                                      const ExecOptions& options) {
  switch (plan.kind) {
    case PlanNode::Kind::kSeqScan: {
      PSE_ASSIGN_OR_RETURN(TableInfo * t, db->GetTable(plan.table));
      return std::unique_ptr<VecExecutor>(new SeqScanVecExecutor(plan, t, options));
    }
    case PlanNode::Kind::kIndexScan: {
      PSE_ASSIGN_OR_RETURN(TableInfo * t, db->GetTable(plan.table));
      const IndexInfo* idx = t->FindIndex(plan.index_column);
      if (idx == nullptr) {
        return Status::Internal("plan expects index on " + plan.table + "." + plan.index_column);
      }
      return std::unique_ptr<VecExecutor>(
          new IndexScanVecExecutor(plan, t, idx->tree.get(), options));
    }
    case PlanNode::Kind::kFilter: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildVecExecutor(*plan.children[0], db, options));
      return std::unique_ptr<VecExecutor>(new FilterVecExecutor(plan, std::move(child), options));
    }
    case PlanNode::Kind::kProject: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildVecExecutor(*plan.children[0], db, options));
      return std::unique_ptr<VecExecutor>(
          new ProjectVecExecutor(plan, std::move(child), options));
    }
    case PlanNode::Kind::kHashJoin: {
      PSE_ASSIGN_OR_RETURN(auto build, BuildVecExecutor(*plan.children[0], db, options));
      PSE_ASSIGN_OR_RETURN(auto probe, BuildVecExecutor(*plan.children[1], db, options));
      return std::unique_ptr<VecExecutor>(
          new HashJoinVecExecutor(plan, std::move(build), std::move(probe), options));
    }
    case PlanNode::Kind::kIndexNLJoin: {
      PSE_ASSIGN_OR_RETURN(auto outer, BuildVecExecutor(*plan.children[0], db, options));
      PSE_ASSIGN_OR_RETURN(TableInfo * t, db->GetTable(plan.table));
      const IndexInfo* idx = t->FindIndex(plan.index_column);
      if (idx == nullptr) {
        return Status::Internal("plan expects index on " + plan.table + "." + plan.index_column);
      }
      return std::unique_ptr<VecExecutor>(
          new IndexNLJoinVecExecutor(plan, std::move(outer), t, idx->tree.get(), options));
    }
    case PlanNode::Kind::kDistinct: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildVecExecutor(*plan.children[0], db, options));
      return std::unique_ptr<VecExecutor>(new DistinctVecExecutor(std::move(child), options));
    }
    case PlanNode::Kind::kAggregate: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildVecExecutor(*plan.children[0], db, options));
      return std::unique_ptr<VecExecutor>(
          new AggregateVecExecutor(plan, std::move(child), options));
    }
    case PlanNode::Kind::kSort: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildVecExecutor(*plan.children[0], db, options));
      return std::unique_ptr<VecExecutor>(new SortVecExecutor(plan, std::move(child), options));
    }
    case PlanNode::Kind::kLimit: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildVecExecutor(*plan.children[0], db, options));
      return std::unique_ptr<VecExecutor>(new LimitVecExecutor(plan, std::move(child), options));
    }
  }
  return Status::Internal("unknown plan node kind");
}

Result<std::vector<Row>> ExecutePlanVectorized(const PlanNode& plan, Database* db,
                                               const ExecOptions& options) {
  PSE_LOCKDEP_SCOPE("ExecutePlanVectorized");
  // No whole-execution table latches here: every scan takes its table's
  // shared latch per batch (see the header comment), so the engine sees
  // each table in batch-consistent snapshots exactly like the copy loop.
  PSE_ASSIGN_OR_RETURN(auto exec, BuildVecExecutor(plan, db, options));
  PSE_RETURN_NOT_OK(exec->Init());
  std::vector<Row> rows;
  TupleBatch batch;
  while (true) {
    PSE_ASSIGN_OR_RETURN(bool has, exec->Next(&batch));
    if (!has) break;
    batch.EmitRows(&rows);
  }
  return rows;
}

}  // namespace pse
