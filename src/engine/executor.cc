#include "engine/executor.h"

#include "common/lock_registry.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "engine/agg_state.h"
#include "engine/vec_executor.h"

namespace pse {

ExecOptions ExecOptions::Default() {
  static const bool forced_vectorized = [] {
    const char* v = std::getenv("PSE_VECTORIZED");
    return v != nullptr && v[0] == '1';
  }();
  ExecOptions options;
  options.vectorized = forced_vectorized;
  return options;
}

namespace {

/// Projects the positions in `idxs` out of `in`.
Row ProjectRow(const Row& in, const std::vector<size_t>& idxs) {
  Row out;
  out.reserve(idxs.size());
  for (size_t i : idxs) out.push_back(in[i]);
  return out;
}

class SeqScanExecutor : public Executor {
 public:
  SeqScanExecutor(const PlanNode& plan, TableInfo* table) : plan_(plan), table_(table) {}

  Status Init() override {
    it_ = table_->heap->Begin();
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    while (!it_.AtEnd()) {
      const Row& full = it_.row();
      bool pass = true;
      if (plan_.scan_filter) {
        PSE_ASSIGN_OR_RETURN(pass, EvalPredicate(*plan_.scan_filter, full));
      }
      if (pass) {
        *out = ProjectRow(full, plan_.scan_column_idxs);
        PSE_RETURN_NOT_OK(it_.Next());
        return true;
      }
      PSE_RETURN_NOT_OK(it_.Next());
    }
    return false;
  }

 private:
  const PlanNode& plan_;
  TableInfo* table_;
  TableHeap::Iterator it_;
};

class IndexScanExecutor : public Executor {
 public:
  IndexScanExecutor(const PlanNode& plan, TableInfo* table, const BPlusTree* tree)
      : plan_(plan), table_(table), tree_(tree) {}

  Status Init() override {
    int64_t lo = plan_.lo.value_or(INT64_MIN);
    int64_t hi = plan_.hi.value_or(INT64_MAX);
    rids_.clear();
    pos_ = 0;
    return tree_->ScanRange(lo, hi, &rids_);
  }

  Result<bool> Next(Row* out) override {
    Row full;
    while (pos_ < rids_.size()) {
      PSE_RETURN_NOT_OK(table_->heap->Get(rids_[pos_], &full));
      ++pos_;
      bool pass = true;
      if (plan_.scan_filter) {
        PSE_ASSIGN_OR_RETURN(pass, EvalPredicate(*plan_.scan_filter, full));
      }
      if (pass) {
        *out = ProjectRow(full, plan_.scan_column_idxs);
        return true;
      }
    }
    return false;
  }

 private:
  const PlanNode& plan_;
  TableInfo* table_;
  const BPlusTree* tree_;
  std::vector<Rid> rids_;
  size_t pos_ = 0;
};

class FilterExecutor : public Executor {
 public:
  FilterExecutor(const PlanNode& plan, std::unique_ptr<Executor> child)
      : plan_(plan), child_(std::move(child)) {}

  Status Init() override { return child_->Init(); }

  Result<bool> Next(Row* out) override {
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      PSE_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*plan_.predicate, *out));
      if (pass) return true;
    }
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<Executor> child_;
};

class ProjectExecutor : public Executor {
 public:
  ProjectExecutor(const PlanNode& plan, std::unique_ptr<Executor> child,
                  const ExecOptions& options)
      : plan_(plan), child_(std::move(child)) {
    // Zero-copy fast path: a projection that only reorders/narrows resolved
    // columns moves the values straight out of the child row instead of
    // routing each through a virtual Eval returning Result<Value>. Moving
    // is only sound when no source position repeats.
    if (!options.zero_copy_project) return;
    std::vector<size_t> positions;
    positions.reserve(plan_.projections.size());
    for (const auto& p : plan_.projections) {
      const auto* col = dynamic_cast<const ColumnRefExpr*>(p.get());
      if (col == nullptr || !col->resolved()) return;
      positions.push_back(col->position());
    }
    std::vector<size_t> sorted = positions;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) return;
    pass_through_ = std::move(positions);
  }

  Status Init() override { return child_->Init(); }

  Result<bool> Next(Row* out) override {
    PSE_ASSIGN_OR_RETURN(bool has, child_->Next(&in_));
    if (!has) return false;
    out->clear();
    out->reserve(plan_.projections.size());
    if (!pass_through_.empty()) {
      for (size_t pos : pass_through_) out->push_back(std::move(in_[pos]));
      return true;
    }
    for (const auto& p : plan_.projections) {
      PSE_ASSIGN_OR_RETURN(Value v, p->Eval(in_));
      out->push_back(std::move(v));
    }
    return true;
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<Executor> child_;
  /// Child positions when every projection is a distinct resolved column.
  std::vector<size_t> pass_through_;
  Row in_;
};

class HashJoinExecutor : public Executor {
 public:
  HashJoinExecutor(const PlanNode& plan, std::unique_ptr<Executor> build,
                   std::unique_ptr<Executor> probe)
      : plan_(plan), build_(std::move(build)), probe_(std::move(probe)) {}

  Status Init() override {
    PSE_RETURN_NOT_OK(build_->Init());
    PSE_RETURN_NOT_OK(probe_->Init());
    table_.clear();
    Row row;
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, build_->Next(&row));
      if (!has) break;
      const Value& key = row[plan_.left_key_pos];
      if (key.is_null()) continue;  // NULL never joins
      table_[key].push_back(row);
    }
    matches_ = nullptr;
    match_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        const Row& build_row = (*matches_)[match_pos_++];
        out->clear();
        out->reserve(build_row.size() + probe_row_.size());
        out->insert(out->end(), build_row.begin(), build_row.end());
        out->insert(out->end(), probe_row_.begin(), probe_row_.end());
        return true;
      }
      PSE_ASSIGN_OR_RETURN(bool has, probe_->Next(&probe_row_));
      if (!has) return false;
      const Value& key = probe_row_[plan_.right_key_pos];
      matches_ = nullptr;
      if (key.is_null()) continue;
      auto it = table_.find(key);
      if (it != table_.end()) {
        matches_ = &it->second;
        match_pos_ = 0;
      }
    }
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<Executor> build_;
  std::unique_ptr<Executor> probe_;
  std::unordered_map<Value, std::vector<Row>, ValueHash, ValueEq> table_;
  Row probe_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

class IndexNLJoinExecutor : public Executor {
 public:
  IndexNLJoinExecutor(const PlanNode& plan, std::unique_ptr<Executor> outer, TableInfo* inner,
                      const BPlusTree* tree)
      : plan_(plan), outer_(std::move(outer)), inner_(inner), tree_(tree) {}

  Status Init() override {
    rids_.clear();
    rid_pos_ = 0;
    return outer_->Init();
  }

  Result<bool> Next(Row* out) override {
    Row inner_full;
    while (true) {
      while (rid_pos_ < rids_.size()) {
        PSE_RETURN_NOT_OK(inner_->heap->Get(rids_[rid_pos_], &inner_full));
        ++rid_pos_;
        bool pass = true;
        if (plan_.scan_filter) {
          PSE_ASSIGN_OR_RETURN(pass, EvalPredicate(*plan_.scan_filter, inner_full));
        }
        if (!pass) continue;
        out->clear();
        out->reserve(outer_row_.size() + plan_.scan_column_idxs.size());
        out->insert(out->end(), outer_row_.begin(), outer_row_.end());
        for (size_t i : plan_.scan_column_idxs) out->push_back(inner_full[i]);
        return true;
      }
      PSE_ASSIGN_OR_RETURN(bool has, outer_->Next(&outer_row_));
      if (!has) return false;
      rids_.clear();
      rid_pos_ = 0;
      const Value& key = outer_row_[plan_.left_key_pos];
      if (key.is_null() || key.type() != TypeId::kInt64) continue;
      PSE_RETURN_NOT_OK(tree_->ScanEqual(key.AsInt(), &rids_));
    }
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<Executor> outer_;
  TableInfo* inner_;
  const BPlusTree* tree_;
  Row outer_row_;
  std::vector<Rid> rids_;
  size_t rid_pos_ = 0;
};

class DistinctExecutor : public Executor {
 public:
  explicit DistinctExecutor(std::unique_ptr<Executor> child) : child_(std::move(child)) {}

  Status Init() override {
    seen_.clear();
    return child_->Init();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      if (seen_.insert(*out).second) return true;
    }
  }

 private:
  std::unique_ptr<Executor> child_;
  std::unordered_set<Row, RowHash, RowEq> seen_;
};

class AggregateExecutor : public Executor {
 public:
  AggregateExecutor(const PlanNode& plan, std::unique_ptr<Executor> child)
      : plan_(plan), child_(std::move(child)) {}

  Status Init() override {
    PSE_RETURN_NOT_OK(child_->Init());
    groups_.clear();
    order_.clear();
    Row row;
    bool saw_any = false;
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) break;
      saw_any = true;
      Row key = ProjectRow(row, plan_.group_by_pos);
      auto [it, fresh] = groups_.try_emplace(key, std::vector<AggState>(plan_.aggs.size()));
      if (fresh) order_.push_back(key);
      for (size_t a = 0; a < plan_.aggs.size(); ++a) {
        const PlanAggSpec& spec = plan_.aggs[a];
        AggState& st = it->second[a];
        if (spec.func == AggFunc::kCountStar) {
          ++st.count;
          continue;
        }
        const Value& v = row[spec.arg_pos];
        if (v.is_null()) continue;
        AggAccumulate(spec.func, v, &st);
      }
    }
    // Scalar aggregate over an empty input still yields one row.
    if (!saw_any && plan_.group_by_pos.empty()) {
      Row key;
      groups_.try_emplace(key, std::vector<AggState>(plan_.aggs.size()));
      order_.push_back(key);
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= order_.size()) return false;
    const Row& key = order_[pos_++];
    const std::vector<AggState>& states = groups_.at(key);
    out->clear();
    out->insert(out->end(), key.begin(), key.end());
    for (size_t a = 0; a < plan_.aggs.size(); ++a) {
      PSE_ASSIGN_OR_RETURN(Value v, AggFinalize(plan_.aggs[a].func, states[a]));
      out->push_back(std::move(v));
    }
    return true;
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<Executor> child_;
  std::unordered_map<Row, std::vector<AggState>, RowHash, RowEq> groups_;
  std::vector<Row> order_;  // first-seen group order (deterministic output)
  size_t pos_ = 0;
};

class SortExecutor : public Executor {
 public:
  SortExecutor(const PlanNode& plan, std::unique_ptr<Executor> child)
      : plan_(plan), child_(std::move(child)) {}

  Status Init() override {
    PSE_RETURN_NOT_OK(child_->Init());
    rows_.clear();
    Row row;
    while (true) {
      PSE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) break;
      rows_.push_back(row);
    }
    const auto& keys = plan_.sort_keys;
    std::stable_sort(rows_.begin(), rows_.end(), [&keys](const Row& a, const Row& b) {
      for (const auto& k : keys) {
        int c = a[k.pos].Compare(b[k.pos]);
        if (c != 0) return k.desc ? c > 0 : c < 0;
      }
      return false;
    });
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<Executor> child_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class LimitExecutor : public Executor {
 public:
  LimitExecutor(const PlanNode& plan, std::unique_ptr<Executor> child)
      : plan_(plan), child_(std::move(child)) {}

  Status Init() override {
    emitted_ = 0;
    return child_->Init();
  }

  Result<bool> Next(Row* out) override {
    if (emitted_ >= plan_.limit_n) return false;
    PSE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    ++emitted_;
    return true;
  }

 private:
  const PlanNode& plan_;
  std::unique_ptr<Executor> child_;
  int64_t emitted_ = 0;
};

}  // namespace

Result<std::unique_ptr<Executor>> BuildExecutor(const PlanNode& plan, Database* db) {
  return BuildExecutor(plan, db, ExecOptions{});
}

Result<std::unique_ptr<Executor>> BuildExecutor(const PlanNode& plan, Database* db,
                                                const ExecOptions& options) {
  switch (plan.kind) {
    case PlanNode::Kind::kSeqScan: {
      PSE_ASSIGN_OR_RETURN(TableInfo * t, db->GetTable(plan.table));
      return std::unique_ptr<Executor>(new SeqScanExecutor(plan, t));
    }
    case PlanNode::Kind::kIndexScan: {
      PSE_ASSIGN_OR_RETURN(TableInfo * t, db->GetTable(plan.table));
      const IndexInfo* idx = t->FindIndex(plan.index_column);
      if (idx == nullptr) {
        return Status::Internal("plan expects index on " + plan.table + "." + plan.index_column);
      }
      return std::unique_ptr<Executor>(new IndexScanExecutor(plan, t, idx->tree.get()));
    }
    case PlanNode::Kind::kFilter: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], db, options));
      return std::unique_ptr<Executor>(new FilterExecutor(plan, std::move(child)));
    }
    case PlanNode::Kind::kProject: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], db, options));
      return std::unique_ptr<Executor>(new ProjectExecutor(plan, std::move(child), options));
    }
    case PlanNode::Kind::kHashJoin: {
      PSE_ASSIGN_OR_RETURN(auto build, BuildExecutor(*plan.children[0], db, options));
      PSE_ASSIGN_OR_RETURN(auto probe, BuildExecutor(*plan.children[1], db, options));
      return std::unique_ptr<Executor>(
          new HashJoinExecutor(plan, std::move(build), std::move(probe)));
    }
    case PlanNode::Kind::kIndexNLJoin: {
      PSE_ASSIGN_OR_RETURN(auto outer, BuildExecutor(*plan.children[0], db, options));
      PSE_ASSIGN_OR_RETURN(TableInfo * t, db->GetTable(plan.table));
      const IndexInfo* idx = t->FindIndex(plan.index_column);
      if (idx == nullptr) {
        return Status::Internal("plan expects index on " + plan.table + "." + plan.index_column);
      }
      return std::unique_ptr<Executor>(
          new IndexNLJoinExecutor(plan, std::move(outer), t, idx->tree.get()));
    }
    case PlanNode::Kind::kDistinct: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], db, options));
      return std::unique_ptr<Executor>(new DistinctExecutor(std::move(child)));
    }
    case PlanNode::Kind::kAggregate: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], db, options));
      return std::unique_ptr<Executor>(new AggregateExecutor(plan, std::move(child)));
    }
    case PlanNode::Kind::kSort: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], db, options));
      return std::unique_ptr<Executor>(new SortExecutor(plan, std::move(child)));
    }
    case PlanNode::Kind::kLimit: {
      PSE_ASSIGN_OR_RETURN(auto child, BuildExecutor(*plan.children[0], db, options));
      return std::unique_ptr<Executor>(new LimitExecutor(plan, std::move(child)));
    }
  }
  return Status::Internal("unknown plan node kind");
}

namespace {
/// Collects every base table the plan touches (scans and index-join inners).
void CollectPlanTables(const PlanNode& plan, std::vector<std::string>* out) {
  if (!plan.table.empty()) out->push_back(ToLower(plan.table));
  for (const auto& child : plan.children) CollectPlanTables(*child, out);
}
}  // namespace

Result<std::vector<Row>> ExecutePlan(const PlanNode& plan, Database* db) {
  return ExecutePlan(plan, db, ExecOptions::Default());
}

Result<std::vector<Row>> ExecutePlan(const PlanNode& plan, Database* db,
                                     const ExecOptions& options) {
  if (options.vectorized) return ExecutePlanVectorized(plan, db, options);
  PSE_LOCKDEP_SCOPE("ExecutePlan");
  // Shared content latch on every table the plan reads, held for the whole
  // execution. Sorted + deduped so concurrent executions acquire in one
  // global order (and a self-join never double-locks). Writers
  // (Database::Insert/Delete/Update, the migration copy loop) take these
  // exclusively, so a scan sees each table either before or after any
  // concurrent batch — never a torn page.
  std::vector<std::string> tables;
  CollectPlanTables(plan, &tables);
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  std::vector<std::shared_lock<SharedMutex>> table_locks;
  table_locks.reserve(tables.size());
  for (const auto& name : tables) {
    PSE_ASSIGN_OR_RETURN(TableInfo * t, db->GetTable(name));
    table_locks.emplace_back(t->latch);
  }
  PSE_ASSIGN_OR_RETURN(auto exec, BuildExecutor(plan, db, options));
  PSE_RETURN_NOT_OK(exec->Init());
  std::vector<Row> rows;
  Row row;
  while (true) {
    PSE_ASSIGN_OR_RETURN(bool has, exec->Next(&row));
    if (!has) break;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace pse
