// Memoized query-cost cache: the shared fast path under LAA/GAA/advisor
// candidate costing.
//
// A query's estimated cost on a candidate schema depends only on the
// physical tables storing its support attributes (DESIGN.md §12/§13), so the
// planners key each EstimateQueryCost result by a *layout fingerprint* — a
// stable 64-bit hash of a canonical serialization of exactly those tables
// (src/analysis computes the serialization; this class stores outcomes).
// Two candidate schemas that agree on a query's relevant tables then share
// one cached estimate, and the cache keeps paying off across enumeration
// subsets, GA generations, and migration points.
//
// Correctness does not rest on the hash: every entry stores its full
// canonical key, a lookup compares it, and a hash collision between
// different keys is counted in CostCacheStats and resolved exactly (the
// bucket holds both entries).
//
// Thread-safe: a single mutex guards the map — the cached work (rewrite ->
// plan -> cost, ~100µs+) dwarfs the critical section.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pse {

/// Counters describing a cache's activity; subtract two snapshots to get the
/// delta of one planning run.
struct CostCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Entries dropped by the size cap (the cache clears wholesale — an epoch
  /// eviction — when it would exceed max_entries).
  uint64_t evictions = 0;
  /// Inserts that found the 64-bit fingerprint already occupied by a
  /// *different* canonical key. Detected exactly via the stored keys; such
  /// entries coexist in one bucket, so collisions never corrupt results.
  uint64_t collisions = 0;

  uint64_t lookups() const { return hits + misses; }
  /// Hit percentage in [0, 100]; 0 when no lookups happened.
  double hit_pct() const {
    return lookups() == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / static_cast<double>(lookups());
  }
  std::string ToString() const;
};

CostCacheStats operator-(const CostCacheStats& a, const CostCacheStats& b);

/// \brief Thread-safe (fingerprint, canonical key) -> query-cost outcome map.
class QueryCostCache {
 public:
  /// One memoized EstimateQueryCost outcome: either an I/O cost or the fact
  /// that the query does not bind on that layout (callers then reprice via
  /// their fallback schema, exactly like the uncached path).
  struct Outcome {
    double cost = 0;
    bool bind_error = false;
  };

  explicit QueryCostCache(size_t max_entries = 1u << 20) : max_entries_(max_entries) {}

  /// Returns the outcome stored under (fingerprint, key), if any. A
  /// fingerprint hit whose stored key differs is a collision: counted,
  /// searched exactly, never returned for the wrong key.
  std::optional<Outcome> Lookup(uint64_t fingerprint, std::string_view key);

  /// Stores `outcome` under (fingerprint, key). Re-inserting an existing key
  /// is a no-op (outcomes are deterministic). When the cache would exceed
  /// max_entries it is cleared wholesale first (epoch eviction).
  void Insert(uint64_t fingerprint, std::string_view key, Outcome outcome);

  CostCacheStats Snapshot() const;
  size_t size() const;
  void Clear();

  /// FNV-1a 64-bit hash of a canonical key.
  static uint64_t Fingerprint(std::string_view key);

 private:
  mutable std::mutex mu_;
  /// fingerprint -> entries sharing it (singleton vector except on collision).
  std::unordered_map<uint64_t, std::vector<std::pair<std::string, Outcome>>> buckets_;
  size_t entries_ = 0;
  size_t max_entries_;
  CostCacheStats stats_;
};

}  // namespace pse
