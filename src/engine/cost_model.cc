#include "engine/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace pse {

namespace {
constexpr double kPageFill = 0.85;
constexpr double kLeafEntriesPerPage = 511.0;  // matches BPlusTree leaf capacity
constexpr double kDefaultSelectivity = 0.33;
constexpr double kDefaultEqSelectivity = 0.1;
}  // namespace

struct CostModel::Context {
  /// alias -> table name, collected while descending through scans.
  std::map<std::string, std::string> alias_to_table;
};

double CostModel::TablePages(const TableStatistics& stats) {
  if (stats.page_count > 0) return static_cast<double>(stats.page_count);
  double bytes = static_cast<double>(stats.row_count) * std::max(stats.avg_tuple_width, 1.0);
  return std::max(1.0, std::ceil(bytes / (static_cast<double>(kPageSize) * kPageFill)));
}

const ColumnStatistics* CostModel::LookupColumn(const Context& ctx, const std::string& name,
                                                uint64_t* table_rows) const {
  std::string alias, col;
  size_t dot = name.find('.');
  if (dot != std::string::npos) {
    alias = name.substr(0, dot);
    col = name.substr(dot + 1);
  } else {
    col = name;
  }
  for (const auto& [a, table] : ctx.alias_to_table) {
    if (!alias.empty() && !EqualsIgnoreCase(a, alias)) continue;
    auto stats = catalog_->GetStats(table);
    if (!stats.ok()) continue;
    const ColumnStatistics* cs = (*stats)->Column(col);
    if (cs == nullptr) {
      // Column names in stats are case-sensitive map keys; fall back to a
      // case-insensitive search.
      for (const auto& [cname, cstats] : (*stats)->columns) {
        if (EqualsIgnoreCase(cname, col)) {
          cs = &cstats;
          break;
        }
      }
    }
    if (cs != nullptr) {
      if (table_rows != nullptr) *table_rows = (*stats)->row_count;
      return cs;
    }
  }
  return nullptr;
}

double CostModel::Selectivity(const Expr& e, const Context& ctx) const {
  if (const auto* logic = dynamic_cast<const LogicExpr*>(&e)) {
    double l = Selectivity(*logic->left(), ctx);
    double r = Selectivity(*logic->right(), ctx);
    return logic->op() == LogicOp::kAnd ? l * r : l + r - l * r;
  }
  if (const auto* not_e = dynamic_cast<const NotExpr*>(&e)) {
    (void)not_e;
    std::vector<std::string> cols;
    e.CollectColumns(&cols);
    return 1.0 - kDefaultSelectivity;  // coarse; NOT is rare in the workloads
  }
  if (const auto* cmp = dynamic_cast<const CompareExpr*>(&e)) {
    const auto* lcol = dynamic_cast<const ColumnRefExpr*>(cmp->left());
    const auto* rconst = dynamic_cast<const ConstantExpr*>(cmp->right());
    const auto* rcol = dynamic_cast<const ColumnRefExpr*>(cmp->right());
    const auto* lconst = dynamic_cast<const ConstantExpr*>(cmp->left());
    const ColumnRefExpr* col = lcol != nullptr && rconst != nullptr ? lcol
                               : rcol != nullptr && lconst != nullptr ? rcol
                                                                      : nullptr;
    const ConstantExpr* cst = col == lcol ? rconst : lconst;
    if (col == nullptr || cst == nullptr || cst->value().is_null()) {
      // col-op-col (join residual) or complex operand.
      if (lcol != nullptr && rcol != nullptr && cmp->op() == CompareOp::kEq) {
        uint64_t lrows = 0, rrows = 0;
        const ColumnStatistics* ls = LookupColumn(ctx, lcol->name(), &lrows);
        const ColumnStatistics* rs = LookupColumn(ctx, rcol->name(), &rrows);
        double ndv = 1.0;
        if (ls != nullptr) ndv = std::max(ndv, static_cast<double>(ls->num_distinct));
        if (rs != nullptr) ndv = std::max(ndv, static_cast<double>(rs->num_distinct));
        return 1.0 / std::max(1.0, ndv);
      }
      return kDefaultSelectivity;
    }
    uint64_t rows = 0;
    const ColumnStatistics* cs = LookupColumn(ctx, col->name(), &rows);
    CompareOp op = cmp->op();
    if (col == rcol) {
      // Mirror operator: const < col == col > const.
      switch (op) {
        case CompareOp::kLt:
          op = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          op = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          op = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          op = CompareOp::kLe;
          break;
        default:
          break;
      }
    }
    if (op == CompareOp::kEq) {
      if (cs != nullptr && cs->num_distinct > 0) {
        return 1.0 / static_cast<double>(cs->num_distinct);
      }
      return kDefaultEqSelectivity;
    }
    if (op == CompareOp::kNe) {
      if (cs != nullptr && cs->num_distinct > 0) {
        return 1.0 - 1.0 / static_cast<double>(cs->num_distinct);
      }
      return 1.0 - kDefaultEqSelectivity;
    }
    // Range: interpolate over [min, max] when numeric stats exist.
    if (cs != nullptr && cs->min.has_value() && cs->max.has_value() && !cs->min->is_null() &&
        cs->max->is_null() == false && cs->min->type() != TypeId::kVarchar &&
        cst->value().type() != TypeId::kVarchar) {
      double lo = cs->min->AsDouble(), hi = cs->max->AsDouble();
      double v = cst->value().AsDouble();
      if (hi <= lo) return kDefaultSelectivity;
      double frac = (v - lo) / (hi - lo);
      frac = std::clamp(frac, 0.0, 1.0);
      switch (op) {
        case CompareOp::kLt:
        case CompareOp::kLe:
          return std::max(frac, 1.0 / std::max(1.0, static_cast<double>(rows)));
        case CompareOp::kGt:
        case CompareOp::kGe:
          return std::max(1.0 - frac, 1.0 / std::max(1.0, static_cast<double>(rows)));
        default:
          break;
      }
    }
    return kDefaultSelectivity;
  }
  if (const auto* like = dynamic_cast<const LikeExpr*>(&e)) {
    return StartsWith(like->pattern(), "%") ? 0.15 : 0.05;
  }
  if (dynamic_cast<const IsNullExpr*>(&e) != nullptr) {
    std::vector<std::string> cols;
    e.CollectColumns(&cols);
    if (!cols.empty()) {
      uint64_t rows = 0;
      const ColumnStatistics* cs = LookupColumn(ctx, cols[0], &rows);
      if (cs != nullptr && rows > 0) {
        return static_cast<double>(cs->null_count) / static_cast<double>(rows);
      }
    }
    return 0.05;
  }
  if (dynamic_cast<const InListExpr*>(&e) != nullptr) {
    return std::min(1.0, 3.0 * kDefaultEqSelectivity);
  }
  return kDefaultSelectivity;
}

double CostModel::FilterSelectivity(const Expr& filter, const std::string& table) const {
  Context ctx;
  ctx.alias_to_table[table] = table;
  return Selectivity(filter, ctx);
}

Result<CostEstimate> CostModel::Estimate(const PlanNode& plan) const {
  Context ctx;
  return EstimateNode(plan, &ctx);
}

Result<CostEstimate> CostModel::EstimateNode(const PlanNode& plan, Context* ctx) const {
  switch (plan.kind) {
    case PlanNode::Kind::kSeqScan:
    case PlanNode::Kind::kIndexScan: {
      ctx->alias_to_table[plan.alias] = plan.table;
      PSE_ASSIGN_OR_RETURN(const TableStatistics* stats, catalog_->GetStats(plan.table));
      PSE_ASSIGN_OR_RETURN(const TableSchema* schema, catalog_->GetSchema(plan.table));
      double pages = TablePages(*stats);
      double rows = static_cast<double>(stats->row_count);
      double width = 0;
      for (size_t i : plan.scan_column_idxs) width += schema->column(i).EstimatedWidth();

      CostEstimate est;
      est.width = width;
      double sel = plan.scan_filter ? Selectivity(*plan.scan_filter, *ctx) : 1.0;
      est.rows = std::max(0.0, rows * sel);
      if (plan.kind == PlanNode::Kind::kSeqScan) {
        est.io_pages = pages;
        return est;
      }
      // Index scan: fraction of entries hit by the [lo, hi] bounds.
      double bound_sel = 1.0;
      const ColumnStatistics* cs = stats->Column(plan.index_column);
      if (cs == nullptr) {
        for (const auto& [cname, cstats] : stats->columns) {
          if (EqualsIgnoreCase(cname, plan.index_column)) cs = &cstats;
        }
      }
      if (plan.lo.has_value() && plan.hi.has_value() && *plan.lo == *plan.hi) {
        bound_sel = (cs != nullptr && cs->num_distinct > 0)
                        ? 1.0 / static_cast<double>(cs->num_distinct)
                        : kDefaultEqSelectivity;
      } else if (cs != nullptr && cs->min.has_value() && cs->max.has_value() &&
                 cs->min->type() == TypeId::kInt64) {
        double mn = cs->min->AsDouble(), mx = cs->max->AsDouble();
        double lo = plan.lo.has_value() ? static_cast<double>(*plan.lo) : mn;
        double hi = plan.hi.has_value() ? static_cast<double>(*plan.hi) : mx;
        bound_sel = mx > mn ? std::clamp((std::min(hi, mx) - std::max(lo, mn)) / (mx - mn), 0.0,
                                         1.0)
                            : 1.0;
      } else {
        bound_sel = kDefaultSelectivity;
      }
      double matches = rows * bound_sel;
      double height = 1.0 + std::ceil(std::log(std::max(2.0, rows)) / std::log(200.0));
      double leaf_pages = std::ceil(matches / kLeafEntriesPerPage);
      // Heaps are filled in insertion order; when the index column is the
      // table key (monotonically generated), matching rows are co-located,
      // so a range touches matches*width bytes, not one page per row.
      bool clustered = !schema->key_columns().empty() &&
                       EqualsIgnoreCase(schema->key_columns()[0], plan.index_column);
      double heap_fetches;
      if (clustered) {
        double bytes = matches * std::max(1.0, stats->avg_tuple_width);
        heap_fetches = std::min(
            std::ceil(bytes / (static_cast<double>(kPageSize) * kPageFill)) + 1.0, pages);
      } else {
        heap_fetches = std::min(matches, pages);
      }
      est.io_pages = height + leaf_pages + heap_fetches;
      return est;
    }
    case PlanNode::Kind::kFilter: {
      PSE_ASSIGN_OR_RETURN(CostEstimate child, EstimateNode(*plan.children[0], ctx));
      CostEstimate est = child;
      est.rows = child.rows * Selectivity(*plan.predicate, *ctx);
      return est;
    }
    case PlanNode::Kind::kProject: {
      PSE_ASSIGN_OR_RETURN(CostEstimate child, EstimateNode(*plan.children[0], ctx));
      return child;  // width change ignored; projection is free
    }
    case PlanNode::Kind::kHashJoin: {
      PSE_ASSIGN_OR_RETURN(CostEstimate build, EstimateNode(*plan.children[0], ctx));
      PSE_ASSIGN_OR_RETURN(CostEstimate probe, EstimateNode(*plan.children[1], ctx));
      CostEstimate est;
      est.io_pages = build.io_pages + probe.io_pages;
      est.width = build.width + probe.width;
      uint64_t dummy = 0;
      const ColumnStatistics* ls =
          LookupColumn(*ctx, plan.children[0]->output_columns[plan.left_key_pos], &dummy);
      const ColumnStatistics* rs =
          LookupColumn(*ctx, plan.children[1]->output_columns[plan.right_key_pos], &dummy);
      double ndv = 0;
      if (ls != nullptr) ndv = std::max(ndv, static_cast<double>(ls->num_distinct));
      if (rs != nullptr) ndv = std::max(ndv, static_cast<double>(rs->num_distinct));
      if (ndv > 0) {
        est.rows = build.rows * probe.rows / ndv;
      } else {
        est.rows = std::max(build.rows, probe.rows);
      }
      return est;
    }
    case PlanNode::Kind::kIndexNLJoin: {
      PSE_ASSIGN_OR_RETURN(CostEstimate outer, EstimateNode(*plan.children[0], ctx));
      ctx->alias_to_table[plan.alias] = plan.table;
      PSE_ASSIGN_OR_RETURN(const TableStatistics* stats, catalog_->GetStats(plan.table));
      PSE_ASSIGN_OR_RETURN(const TableSchema* schema, catalog_->GetSchema(plan.table));
      double pages = TablePages(*stats);
      double inner_rows = static_cast<double>(stats->row_count);
      const ColumnStatistics* cs = stats->Column(plan.index_column);
      if (cs == nullptr) {
        for (const auto& [cname, cstats] : stats->columns) {
          if (EqualsIgnoreCase(cname, plan.index_column)) cs = &cstats;
        }
      }
      double matches_per_probe =
          (cs != nullptr && cs->num_distinct > 0)
              ? inner_rows / static_cast<double>(cs->num_distinct)
              : 1.0;
      double fetched = outer.rows * matches_per_probe;
      // Index internals cache quickly; heap fetches dominate, capped by the
      // number of distinct inner pages.
      CostEstimate est;
      est.io_pages = outer.io_pages + 2.0 + std::min(fetched, pages + outer.rows);
      double sel = plan.scan_filter ? Selectivity(*plan.scan_filter, *ctx) : 1.0;
      est.rows = fetched * sel;
      double width = 0;
      for (size_t i : plan.scan_column_idxs) width += schema->column(i).EstimatedWidth();
      est.width = outer.width + width;
      return est;
    }
    case PlanNode::Kind::kDistinct: {
      PSE_ASSIGN_OR_RETURN(CostEstimate child, EstimateNode(*plan.children[0], ctx));
      CostEstimate est = child;
      if (!plan.distinct_key_column.empty()) {
        uint64_t dummy = 0;
        const ColumnStatistics* cs = LookupColumn(*ctx, plan.distinct_key_column, &dummy);
        if (cs != nullptr && cs->num_distinct > 0) {
          est.rows = std::min(child.rows, static_cast<double>(cs->num_distinct));
        }
      }
      return est;
    }
    case PlanNode::Kind::kAggregate: {
      PSE_ASSIGN_OR_RETURN(CostEstimate child, EstimateNode(*plan.children[0], ctx));
      CostEstimate est = child;
      if (plan.group_by_pos.empty()) {
        est.rows = 1;
        return est;
      }
      double groups = 1.0;
      for (size_t g : plan.group_by_pos) {
        uint64_t dummy = 0;
        const ColumnStatistics* cs =
            LookupColumn(*ctx, plan.children[0]->output_columns[g], &dummy);
        groups *= (cs != nullptr && cs->num_distinct > 0)
                      ? static_cast<double>(cs->num_distinct)
                      : std::sqrt(std::max(1.0, child.rows));
      }
      est.rows = std::min(child.rows, groups);
      return est;
    }
    case PlanNode::Kind::kSort: {
      PSE_ASSIGN_OR_RETURN(CostEstimate child, EstimateNode(*plan.children[0], ctx));
      return child;  // in-memory sort, like the executor
    }
    case PlanNode::Kind::kLimit: {
      PSE_ASSIGN_OR_RETURN(CostEstimate child, EstimateNode(*plan.children[0], ctx));
      CostEstimate est = child;
      est.rows = std::min(child.rows, static_cast<double>(plan.limit_n));
      const PlanNode& c = *plan.children[0];
      bool blocking = c.kind == PlanNode::Kind::kSort || c.kind == PlanNode::Kind::kAggregate;
      if (!blocking && child.rows > 0) {
        est.io_pages = child.io_pages * std::min(1.0, est.rows / child.rows);
      }
      return est;
    }
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace pse
