// Scalar expression trees evaluated against rows.
//
// Column references are symbolic (a name) until a resolution pass assigns
// positions into the runtime row; the planner runs that pass once the layout
// of each operator's output is known.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/tuple.h"
#include "catalog/value.h"
#include "common/status.h"

namespace pse {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicOp { kAnd, kOr };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* CompareOpToString(CompareOp op);

/// Resolves a (possibly qualified) column name to a position in the row.
using ColumnResolver = std::function<Result<size_t>(const std::string&)>;

/// \brief Abstract scalar expression.
///
/// Three-valued logic: predicates evaluate to Bool or NULL; NULL is treated
/// as false wherever a row is accepted/rejected.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates against a row (columns must be resolved first).
  virtual Result<Value> Eval(const Row& row) const = 0;
  /// Resolves every ColumnRef beneath this node.
  virtual Status Resolve(const ColumnResolver& resolver) = 0;
  /// Deep copy.
  virtual std::unique_ptr<Expr> Clone() const = 0;
  /// Display form for EXPLAIN and errors.
  virtual std::string ToString() const = 0;
  /// Collects the names of all referenced columns.
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;
  /// Invokes `fn` on every ColumnRefExpr in the tree (mutable visitor; the
  /// binder uses it to qualify/unqualify names).
  virtual void VisitColumnRefs(const std::function<void(class ColumnRefExpr*)>& fn) = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Reference to a column by name; holds the resolved row position.
class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(std::string name) : name_(std::move(name)) {}
  Result<Value> Eval(const Row& row) const override;
  Status Resolve(const ColumnResolver& resolver) override;
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<std::string>* out) const override { out->push_back(name_); }
  void VisitColumnRefs(const std::function<void(ColumnRefExpr*)>& fn) override { fn(this); }

  const std::string& name() const { return name_; }
  /// Renames the reference (binder qualification passes). Clears resolution.
  void set_name(std::string n) {
    name_ = std::move(n);
    resolved_ = false;
  }
  size_t position() const { return pos_; }
  bool resolved() const { return resolved_; }

 private:
  std::string name_;
  size_t pos_ = 0;
  bool resolved_ = false;
};

/// Literal constant.
class ConstantExpr : public Expr {
 public:
  explicit ConstantExpr(Value v) : value_(std::move(v)) {}
  Result<Value> Eval(const Row&) const override { return value_; }
  Status Resolve(const ColumnResolver&) override { return Status::OK(); }
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<ConstantExpr>(value_);
  }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>*) const override {}
  void VisitColumnRefs(const std::function<void(ColumnRefExpr*)>&) override {}
  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Binary comparison with SQL NULL semantics (NULL operand -> NULL result).
class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Result<Value> Eval(const Row& row) const override;
  Status Resolve(const ColumnResolver& r) override;
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override;
  void VisitColumnRefs(const std::function<void(ColumnRefExpr*)>& fn) override {
    left_->VisitColumnRefs(fn);
    right_->VisitColumnRefs(fn);
  }

  CompareOp op() const { return op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

 private:
  CompareOp op_;
  ExprPtr left_, right_;
};

/// AND / OR with three-valued logic.
class LogicExpr : public Expr {
 public:
  LogicExpr(LogicOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Result<Value> Eval(const Row& row) const override;
  Status Resolve(const ColumnResolver& r) override;
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override;
  void VisitColumnRefs(const std::function<void(ColumnRefExpr*)>& fn) override {
    left_->VisitColumnRefs(fn);
    right_->VisitColumnRefs(fn);
  }

  LogicOp op() const { return op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

 private:
  LogicOp op_;
  ExprPtr left_, right_;
};

/// NOT with three-valued logic (NOT NULL -> NULL).
class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}
  Result<Value> Eval(const Row& row) const override;
  Status Resolve(const ColumnResolver& r) override { return child_->Resolve(r); }
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<NotExpr>(child_->Clone());
  }
  std::string ToString() const override { return "NOT (" + child_->ToString() + ")"; }
  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }
  void VisitColumnRefs(const std::function<void(ColumnRefExpr*)>& fn) override {
    child_->VisitColumnRefs(fn);
  }

  const Expr* child() const { return child_.get(); }

 private:
  ExprPtr child_;
};

/// Arithmetic; INT op INT stays INT except division, which promotes to
/// DOUBLE when inexact. NULL operand -> NULL.
class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Result<Value> Eval(const Row& row) const override;
  Status Resolve(const ColumnResolver& r) override;
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override;
  void VisitColumnRefs(const std::function<void(ColumnRefExpr*)>& fn) override {
    left_->VisitColumnRefs(fn);
    right_->VisitColumnRefs(fn);
  }

  ArithOp op() const { return op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

 private:
  ArithOp op_;
  ExprPtr left_, right_;
};

/// value LIKE 'pattern' ('%' and '_' wildcards).
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr child, std::string pattern, bool negated = false)
      : child_(std::move(child)), pattern_(std::move(pattern)), negated_(negated) {}
  Result<Value> Eval(const Row& row) const override;
  Status Resolve(const ColumnResolver& r) override { return child_->Resolve(r); }
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<LikeExpr>(child_->Clone(), pattern_, negated_);
  }
  std::string ToString() const override {
    return child_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") + pattern_ + "'";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }
  void VisitColumnRefs(const std::function<void(ColumnRefExpr*)>& fn) override {
    child_->VisitColumnRefs(fn);
  }
  const std::string& pattern() const { return pattern_; }
  const Expr* child() const { return child_.get(); }
  bool negated() const { return negated_; }

 private:
  ExprPtr child_;
  std::string pattern_;
  bool negated_;
};

/// IS NULL / IS NOT NULL.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr child, bool negated) : child_(std::move(child)), negated_(negated) {}
  Result<Value> Eval(const Row& row) const override;
  Status Resolve(const ColumnResolver& r) override { return child_->Resolve(r); }
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<IsNullExpr>(child_->Clone(), negated_);
  }
  std::string ToString() const override {
    return child_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }
  void VisitColumnRefs(const std::function<void(ColumnRefExpr*)>& fn) override {
    child_->VisitColumnRefs(fn);
  }

  const Expr* child() const { return child_.get(); }
  bool negated() const { return negated_; }

 private:
  ExprPtr child_;
  bool negated_;
};

/// value IN (c1, c2, ...) over constants.
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr child, std::vector<Value> values, bool negated = false)
      : child_(std::move(child)), values_(std::move(values)), negated_(negated) {}
  Result<Value> Eval(const Row& row) const override;
  Status Resolve(const ColumnResolver& r) override { return child_->Resolve(r); }
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<InListExpr>(child_->Clone(), values_, negated_);
  }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }
  void VisitColumnRefs(const std::function<void(ColumnRefExpr*)>& fn) override {
    child_->VisitColumnRefs(fn);
  }

  const Expr* child() const { return child_.get(); }
  const std::vector<Value>& values() const { return values_; }
  bool negated() const { return negated_; }

 private:
  ExprPtr child_;
  std::vector<Value> values_;
  bool negated_;
};

// -- convenience constructors used across the codebase and tests --
ExprPtr Col(std::string name);
ExprPtr Const(Value v);
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(std::string col, Value v);
ExprPtr And(ExprPtr l, ExprPtr r);
/// AND-combines a list (returns nullptr for an empty list).
ExprPtr AndAll(std::vector<ExprPtr> exprs);

/// Evaluates a predicate expression; NULL and non-bool count as false.
Result<bool> EvalPredicate(const Expr& e, const Row& row);

}  // namespace pse
