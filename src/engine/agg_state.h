// Aggregate accumulator shared by the row and vectorized engines, so the
// two cannot drift on SUM's int/double promotion, AVG's divisor, or
// COUNT(DISTINCT) semantics — the differential oracle holds them equal.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "catalog/value.h"
#include "common/status.h"
#include "engine/plan.h"

namespace pse {

/// Accumulator for one aggregate within one group.
struct AggState {
  int64_t count = 0;  ///< rows seen (non-null for arg-based functions)
  int64_t sum_int = 0;
  double sum_double = 0.0;
  bool any_double = false;
  Value min, max;  ///< NULL until first value
  bool has_value = false;
  std::unordered_set<Value, ValueHash, ValueEq> distinct;  ///< COUNT(DISTINCT)
};

/// Folds one non-COUNT(*) argument value into the accumulator (NULL args
/// must be skipped by the caller; COUNT(*) just increments `count`).
inline void AggAccumulate(AggFunc func, const Value& v, AggState* st) {
  ++st->count;
  st->has_value = true;
  if (func == AggFunc::kCountDistinct) {
    st->distinct.insert(v);
    return;
  }
  if (v.type() == TypeId::kDouble) st->any_double = true;
  if (func == AggFunc::kSum || func == AggFunc::kAvg) {
    if (v.type() == TypeId::kInt64) st->sum_int += v.AsInt();
    st->sum_double += v.AsDouble();
  }
  if (st->min.is_null() || v.Compare(st->min) < 0) st->min = v;
  if (st->max.is_null() || v.Compare(st->max) > 0) st->max = v;
}

/// Finalizes one aggregate into its output value.
inline Result<Value> AggFinalize(AggFunc func, const AggState& st) {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int(st.count);
    case AggFunc::kCountDistinct:
      return Value::Int(static_cast<int64_t>(st.distinct.size()));
    case AggFunc::kSum:
      if (!st.has_value) return Value::Null(TypeId::kDouble);
      if (st.any_double) return Value::Double(st.sum_double);
      return Value::Int(st.sum_int);
    case AggFunc::kAvg:
      return st.has_value ? Value::Double(st.sum_double / static_cast<double>(st.count))
                          : Value::Null(TypeId::kDouble);
    case AggFunc::kMin:
      return st.min;
    case AggFunc::kMax:
      return st.max;
    case AggFunc::kNone:
      break;
  }
  return Status::Internal("kNone aggregate in plan");
}

}  // namespace pse
