// Physical plan tree. Built by the planner from a BoundQuery; consumed by
// the cost estimator (analytically) and the executor builder (physically).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/bound_query.h"
#include "engine/expr.h"

namespace pse {

/// One aggregate computed by an Aggregate node.
struct PlanAggSpec {
  AggFunc func = AggFunc::kCountStar;
  size_t arg_pos = 0;  // position in child output; ignored for COUNT(*)
};

/// One sort key for a Sort node.
struct PlanSortKey {
  size_t pos = 0;  // position in child output
  bool desc = false;
};

/// \brief A node of the physical plan.
///
/// A single struct with a Kind tag (rather than a class hierarchy) keeps the
/// cost model and executor builder exhaustive and compact.
struct PlanNode {
  enum class Kind {
    kSeqScan,
    kIndexScan,
    kFilter,
    kProject,
    kHashJoin,
    kIndexNLJoin,
    kDistinct,
    kAggregate,
    kSort,
    kLimit,
  };

  Kind kind = Kind::kSeqScan;
  std::vector<std::unique_ptr<PlanNode>> children;
  /// Names of this node's output columns (qualified "alias.col" for scans).
  std::vector<std::string> output_columns;

  // -- scans --
  std::string table;
  std::string alias;
  /// Positions in the base-table schema of the produced columns.
  std::vector<size_t> scan_column_idxs;
  /// Filter applied during the scan; resolved against the FULL table row.
  ExprPtr scan_filter;
  // index scan only: inclusive BIGINT bounds on `index_column`.
  std::string index_column;
  std::optional<int64_t> lo;
  std::optional<int64_t> hi;

  // -- filter --
  ExprPtr predicate;  // resolved against child output

  // -- project --
  std::vector<ExprPtr> projections;  // resolved against child output

  // -- hash join: children[0] = build (left), children[1] = probe (right) --
  size_t left_key_pos = 0;
  size_t right_key_pos = 0;

  // -- index nested-loop join: children[0] = outer; the inner side is a base
  // table probed through the index on `index_column` per outer row, using
  // the scan fields (table/alias/scan_column_idxs/scan_filter). Output =
  // outer columns ++ inner columns. `left_key_pos` is the join key position
  // in the OUTER output. --

  // -- distinct --
  /// Column (name in child output) whose NDV predicts output rows; empty if
  /// unknown.
  std::string distinct_key_column;

  // -- aggregate --
  std::vector<size_t> group_by_pos;
  std::vector<PlanAggSpec> aggs;

  // -- sort --
  std::vector<PlanSortKey> sort_keys;

  // -- limit --
  int64_t limit_n = 0;

  /// Pretty multi-line EXPLAIN output.
  std::string ToString(int indent = 0) const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

}  // namespace pse
