// BoundQuery: a fully-resolved relational query over the *physical* tables
// of one schema. Produced either by the SQL binder (sql/) or by the
// evolution-layer query rewriter (core/), and consumed by the planner.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/expr.h"

namespace pse {

/// Aggregate functions.
enum class AggFunc { kNone, kCountStar, kCount, kCountDistinct, kSum, kAvg, kMin, kMax };
const char* AggFuncToString(AggFunc f);

/// One base-table access: which columns to produce, local filters, and
/// whether to deduplicate the produced rows (used when reading an entity's
/// attributes out of a denormalized table, where each entity row appears
/// once per child row).
struct TableAccess {
  std::string table;
  std::string alias;  // column qualifier; defaults to table name
  /// Unqualified column names this access must produce (projection pushdown).
  std::vector<std::string> columns;
  /// Deduplicate produced rows. `distinct_key` names the column whose
  /// distinct count predicts the output cardinality (for the cost model).
  bool distinct = false;
  std::string distinct_key;
  /// Local filters; ColumnRefs use unqualified column names.
  std::vector<ExprPtr> filters;

  TableAccess() = default;
  TableAccess(std::string t, std::vector<std::string> cols)
      : table(t), alias(std::move(t)), columns(std::move(cols)) {}
  TableAccess Clone() const;
};

/// Equi-join between two table accesses (indexes into BoundQuery::tables).
struct EquiJoin {
  size_t left_table = 0;
  size_t right_table = 0;
  std::string left_column;   // unqualified
  std::string right_column;  // unqualified
};

/// One output column of the query: a scalar expression, optionally wrapped
/// in an aggregate.
struct SelectItem {
  ExprPtr expr;  // ColumnRefs are "alias.column" qualified; null for COUNT(*)
  AggFunc agg = AggFunc::kNone;
  std::string name;  // output column name

  SelectItem() = default;
  SelectItem(ExprPtr e, AggFunc f, std::string n)
      : expr(std::move(e)), agg(f), name(std::move(n)) {}
  SelectItem Clone() const;
};

/// ORDER BY key: an index into select_items plus direction.
struct OrderKey {
  size_t select_index = 0;
  bool desc = false;
};

/// \brief A bound query, ready for planning.
///
/// Join graph must connect all tables (no cross products). Aggregation is
/// implied by any SelectItem with agg != kNone or a non-empty group_by; then
/// every non-aggregate select item must match a GROUP BY expression.
struct BoundQuery {
  std::vector<TableAccess> tables;
  std::vector<EquiJoin> joins;
  /// Post-join filters; ColumnRefs are "alias.column" qualified.
  std::vector<ExprPtr> global_filters;
  std::vector<ExprPtr> group_by;
  /// HAVING predicate over the post-aggregation output; ColumnRefs name
  /// select-list items (aliases). Requires aggregation.
  ExprPtr having;
  std::vector<SelectItem> select_items;
  std::vector<OrderKey> order_by;
  std::optional<int64_t> limit;
  bool select_distinct = false;

  BoundQuery() = default;
  BoundQuery(BoundQuery&&) = default;
  BoundQuery& operator=(BoundQuery&&) = default;
  BoundQuery Clone() const;

  bool HasAggregation() const;
  /// Debug display.
  std::string ToString() const;
};

}  // namespace pse
