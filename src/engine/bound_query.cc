#include "engine/bound_query.h"

namespace pse {

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kCountDistinct:
      return "COUNT_DISTINCT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

TableAccess TableAccess::Clone() const {
  TableAccess out;
  out.table = table;
  out.alias = alias;
  out.columns = columns;
  out.distinct = distinct;
  out.distinct_key = distinct_key;
  for (const auto& f : filters) out.filters.push_back(f->Clone());
  return out;
}

SelectItem SelectItem::Clone() const {
  return SelectItem(expr ? expr->Clone() : nullptr, agg, name);
}

BoundQuery BoundQuery::Clone() const {
  BoundQuery out;
  for (const auto& t : tables) out.tables.push_back(t.Clone());
  out.joins = joins;
  for (const auto& f : global_filters) out.global_filters.push_back(f->Clone());
  for (const auto& g : group_by) out.group_by.push_back(g->Clone());
  if (having) out.having = having->Clone();
  for (const auto& s : select_items) out.select_items.push_back(s.Clone());
  out.order_by = order_by;
  out.limit = limit;
  out.select_distinct = select_distinct;
  return out;
}

bool BoundQuery::HasAggregation() const {
  if (!group_by.empty()) return true;
  for (const auto& s : select_items) {
    if (s.agg != AggFunc::kNone) return true;
  }
  return false;
}

std::string BoundQuery::ToString() const {
  std::string out = "SELECT ";
  if (select_distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select_items.size(); ++i) {
    if (i > 0) out += ", ";
    const auto& s = select_items[i];
    if (s.agg == AggFunc::kCountStar) {
      out += "COUNT(*)";
    } else if (s.agg != AggFunc::kNone) {
      out += std::string(AggFuncToString(s.agg)) + "(" + s.expr->ToString() + ")";
    } else {
      out += s.expr->ToString();
    }
    out += " AS " + s.name;
  }
  out += " FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += tables[i].table;
    if (tables[i].alias != tables[i].table) out += " " + tables[i].alias;
    if (tables[i].distinct) out += "[distinct]";
  }
  for (const auto& j : joins) {
    out += " JOIN(" + tables[j.left_table].alias + "." + j.left_column + "=" +
           tables[j.right_table].alias + "." + j.right_column + ")";
  }
  bool first = true;
  for (const auto& t : tables) {
    for (const auto& f : t.filters) {
      out += first ? " WHERE " : " AND ";
      out += t.alias + ":" + f->ToString();
      first = false;
    }
  }
  for (const auto& f : global_filters) {
    out += first ? " WHERE " : " AND ";
    out += f->ToString();
    first = false;
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(order_by[i].select_index + 1);
      if (order_by[i].desc) out += " DESC";
    }
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  return out;
}

}  // namespace pse
