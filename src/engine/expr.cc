#include "engine/expr.h"

#include "common/string_util.h"

namespace pse {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<Value> ColumnRefExpr::Eval(const Row& row) const {
  if (!resolved_) return Status::Internal("unresolved column '" + name_ + "'");
  if (pos_ >= row.size()) {
    return Status::Internal("column position " + std::to_string(pos_) + " out of row");
  }
  return row[pos_];
}

Status ColumnRefExpr::Resolve(const ColumnResolver& resolver) {
  PSE_ASSIGN_OR_RETURN(pos_, resolver(name_));
  resolved_ = true;
  return Status::OK();
}

std::unique_ptr<Expr> ColumnRefExpr::Clone() const {
  auto e = std::make_unique<ColumnRefExpr>(name_);
  e->pos_ = pos_;
  e->resolved_ = resolved_;
  return e;
}

std::string ConstantExpr::ToString() const {
  if (value_.type() == TypeId::kVarchar && !value_.is_null()) {
    return "'" + value_.AsString() + "'";
  }
  return value_.ToString();
}

Result<Value> CompareExpr::Eval(const Row& row) const {
  PSE_ASSIGN_OR_RETURN(Value l, left_->Eval(row));
  PSE_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBoolean);
  int c = l.Compare(r);
  switch (op_) {
    case CompareOp::kEq:
      return Value::Bool(c == 0);
    case CompareOp::kNe:
      return Value::Bool(c != 0);
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Status::Internal("bad compare op");
}

Status CompareExpr::Resolve(const ColumnResolver& r) {
  PSE_RETURN_NOT_OK(left_->Resolve(r));
  return right_->Resolve(r);
}

std::unique_ptr<Expr> CompareExpr::Clone() const {
  return std::make_unique<CompareExpr>(op_, left_->Clone(), right_->Clone());
}

std::string CompareExpr::ToString() const {
  return left_->ToString() + " " + CompareOpToString(op_) + " " + right_->ToString();
}

void CompareExpr::CollectColumns(std::vector<std::string>* out) const {
  left_->CollectColumns(out);
  right_->CollectColumns(out);
}

Result<Value> LogicExpr::Eval(const Row& row) const {
  PSE_ASSIGN_OR_RETURN(Value l, left_->Eval(row));
  // Short-circuit with three-valued logic.
  bool l_null = l.is_null();
  bool l_true = !l_null && l.AsBool();
  if (op_ == LogicOp::kAnd && !l_null && !l_true) return Value::Bool(false);
  if (op_ == LogicOp::kOr && l_true) return Value::Bool(true);
  PSE_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  bool r_null = r.is_null();
  bool r_true = !r_null && r.AsBool();
  if (op_ == LogicOp::kAnd) {
    if (!r_null && !r_true) return Value::Bool(false);
    if (l_null || r_null) return Value::Null(TypeId::kBoolean);
    return Value::Bool(true);
  }
  if (r_true) return Value::Bool(true);
  if (l_null || r_null) return Value::Null(TypeId::kBoolean);
  return Value::Bool(false);
}

Status LogicExpr::Resolve(const ColumnResolver& r) {
  PSE_RETURN_NOT_OK(left_->Resolve(r));
  return right_->Resolve(r);
}

std::unique_ptr<Expr> LogicExpr::Clone() const {
  return std::make_unique<LogicExpr>(op_, left_->Clone(), right_->Clone());
}

std::string LogicExpr::ToString() const {
  return "(" + left_->ToString() + (op_ == LogicOp::kAnd ? " AND " : " OR ") +
         right_->ToString() + ")";
}

void LogicExpr::CollectColumns(std::vector<std::string>* out) const {
  left_->CollectColumns(out);
  right_->CollectColumns(out);
}

Result<Value> NotExpr::Eval(const Row& row) const {
  PSE_ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  if (v.is_null()) return Value::Null(TypeId::kBoolean);
  return Value::Bool(!v.AsBool());
}

Result<Value> ArithExpr::Eval(const Row& row) const {
  PSE_ASSIGN_OR_RETURN(Value l, left_->Eval(row));
  PSE_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kDouble);
  bool both_int = l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64;
  if (both_int && op_ != ArithOp::kDiv) {
    int64_t a = l.AsInt(), b = r.AsInt();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int(a + b);
      case ArithOp::kSub:
        return Value::Int(a - b);
      case ArithOp::kMul:
        return Value::Int(a * b);
      default:
        break;
    }
  }
  double a = l.AsDouble(), b = r.AsDouble();
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      if (b == 0.0) return Value::Null(TypeId::kDouble);  // SQL: error; we degrade to NULL
      return Value::Double(a / b);
  }
  return Status::Internal("bad arith op");
}

Status ArithExpr::Resolve(const ColumnResolver& r) {
  PSE_RETURN_NOT_OK(left_->Resolve(r));
  return right_->Resolve(r);
}

std::unique_ptr<Expr> ArithExpr::Clone() const {
  return std::make_unique<ArithExpr>(op_, left_->Clone(), right_->Clone());
}

std::string ArithExpr::ToString() const {
  const char* op = op_ == ArithOp::kAdd   ? "+"
                   : op_ == ArithOp::kSub ? "-"
                   : op_ == ArithOp::kMul ? "*"
                                          : "/";
  return "(" + left_->ToString() + " " + op + " " + right_->ToString() + ")";
}

void ArithExpr::CollectColumns(std::vector<std::string>* out) const {
  left_->CollectColumns(out);
  right_->CollectColumns(out);
}

Result<Value> LikeExpr::Eval(const Row& row) const {
  PSE_ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  if (v.is_null()) return Value::Null(TypeId::kBoolean);
  if (v.type() != TypeId::kVarchar) {
    return Status::InvalidArgument("LIKE requires a string operand");
  }
  bool m = LikeMatch(v.AsString(), pattern_);
  return Value::Bool(negated_ ? !m : m);
}

Result<Value> IsNullExpr::Eval(const Row& row) const {
  PSE_ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  return Value::Bool(negated_ ? !v.is_null() : v.is_null());
}

Result<Value> InListExpr::Eval(const Row& row) const {
  PSE_ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  if (v.is_null()) return Value::Null(TypeId::kBoolean);
  for (const auto& item : values_) {
    if (v.SqlEquals(item)) return Value::Bool(!negated_);
  }
  return Value::Bool(negated_);
}

std::string InListExpr::ToString() const {
  std::string out = child_->ToString() + (negated_ ? " NOT IN (" : " IN (");
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  return out + ")";
}

ExprPtr Col(std::string name) { return std::make_unique<ColumnRefExpr>(std::move(name)); }
ExprPtr Const(Value v) { return std::make_unique<ConstantExpr>(std::move(v)); }
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<CompareExpr>(op, std::move(l), std::move(r));
}
ExprPtr Eq(std::string col, Value v) {
  return Cmp(CompareOp::kEq, Col(std::move(col)), Const(std::move(v)));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_unique<LogicExpr>(LogicOp::kAnd, std::move(l), std::move(r));
}
ExprPtr AndAll(std::vector<ExprPtr> exprs) {
  ExprPtr acc;
  for (auto& e : exprs) {
    acc = acc ? And(std::move(acc), std::move(e)) : std::move(e);
  }
  return acc;
}

Result<bool> EvalPredicate(const Expr& e, const Row& row) {
  PSE_ASSIGN_OR_RETURN(Value v, e.Eval(row));
  if (v.is_null()) return false;
  if (v.type() != TypeId::kBoolean) {
    return Status::InvalidArgument("predicate did not evaluate to boolean: " + e.ToString());
  }
  return v.AsBool();
}

}  // namespace pse
