#include "engine/cost_cache.h"

#include <cstdio>

namespace pse {

std::string CostCacheStats::ToString() const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "cost cache: %llu hits / %llu lookups (%.1f%%), %llu evictions, "
                "%llu fingerprint collisions",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(lookups()), hit_pct(),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(collisions));
  return line;
}

CostCacheStats operator-(const CostCacheStats& a, const CostCacheStats& b) {
  CostCacheStats d;
  d.hits = a.hits - b.hits;
  d.misses = a.misses - b.misses;
  d.evictions = a.evictions - b.evictions;
  d.collisions = a.collisions - b.collisions;
  return d;
}

std::optional<QueryCostCache::Outcome> QueryCostCache::Lookup(uint64_t fingerprint,
                                                              std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(fingerprint);
  if (it != buckets_.end()) {
    for (const auto& [stored_key, outcome] : it->second) {
      if (stored_key == key) {
        ++stats_.hits;
        return outcome;
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void QueryCostCache::Insert(uint64_t fingerprint, std::string_view key, Outcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_ >= max_entries_) {
    stats_.evictions += entries_;
    buckets_.clear();
    entries_ = 0;
  }
  std::vector<std::pair<std::string, Outcome>>& bucket = buckets_[fingerprint];
  for (const auto& [stored_key, existing] : bucket) {
    if (stored_key == key) return;  // deterministic outcome already present
  }
  if (!bucket.empty()) ++stats_.collisions;
  bucket.emplace_back(std::string(key), outcome);
  ++entries_;
}

CostCacheStats QueryCostCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t QueryCostCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void QueryCostCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.clear();
  entries_ = 0;
}

uint64_t QueryCostCache::Fingerprint(std::string_view key) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

}  // namespace pse
