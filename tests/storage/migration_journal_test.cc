// MigrationJournal persistence: the journal rides the superblock chain
// (format v2), survives Checkpoint + reopen, and clears durably.
#include <gtest/gtest.h>

#include <cstdio>

#include "storage/database.h"

namespace pse {
namespace {

class MigrationJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/pse_migration_journal_test.db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

MigrationJournal SampleJournal() {
  MigrationJournal j;
  j.active = true;
  j.op_id = 12;
  j.op_kind = 1;
  j.phase = MigrationJournal::Phase::kCopy;
  j.drop_tables = {"user"};
  j.targets.push_back({"m12a_user", true, 60, 60});
  j.targets.push_back({"m12b_user", false, 32, 17});
  j.target_pos = 1;
  j.batches_committed = 6;
  return j;
}

TEST_F(MigrationJournalTest, RoundTripsThroughSuperblock) {
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    *(*db)->mutable_migration_journal() = SampleJournal();
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->HasPendingMigration());
  const MigrationJournal& j = (*db)->migration_journal();
  EXPECT_EQ(j.op_id, 12);
  EXPECT_EQ(j.op_kind, 1);
  EXPECT_EQ(j.phase, MigrationJournal::Phase::kCopy);
  ASSERT_EQ(j.drop_tables.size(), 1u);
  EXPECT_EQ(j.drop_tables[0], "user");
  ASSERT_EQ(j.targets.size(), 2u);
  EXPECT_EQ(j.targets[0].table, "m12a_user");
  EXPECT_TRUE(j.targets[0].completed);
  EXPECT_EQ(j.targets[0].src_cursor, 60u);
  EXPECT_EQ(j.targets[1].table, "m12b_user");
  EXPECT_FALSE(j.targets[1].completed);
  EXPECT_EQ(j.targets[1].src_cursor, 32u);
  EXPECT_EQ(j.targets[1].dest_rows, 17u);
  EXPECT_EQ(j.target_pos, 1u);
  EXPECT_EQ(j.batches_committed, 6u);
}

TEST_F(MigrationJournalTest, InactiveJournalStaysInactiveAcrossReopen) {
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_FALSE((*db)->HasPendingMigration());
}

TEST_F(MigrationJournalTest, ClearedJournalIsDurable) {
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    *(*db)->mutable_migration_journal() = SampleJournal();
    ASSERT_TRUE((*db)->Checkpoint().ok());
    (*db)->mutable_migration_journal()->Clear();
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_FALSE((*db)->HasPendingMigration());
}

TEST_F(MigrationJournalTest, ToStringAndPhaseNames) {
  MigrationJournal j;
  EXPECT_NE(j.ToString().find("inactive"), std::string::npos);
  j = SampleJournal();
  std::string s = j.ToString();
  EXPECT_NE(s.find("op#12"), std::string::npos) << s;
  EXPECT_NE(s.find(MigrationPhaseName(MigrationJournal::Phase::kCopy)), std::string::npos) << s;
  EXPECT_STREQ(MigrationPhaseName(MigrationJournal::Phase::kCreateTargets), "create-targets");
  EXPECT_STREQ(MigrationPhaseName(MigrationJournal::Phase::kDropSources), "drop-sources");
}

TEST_F(MigrationJournalTest, PersistsAlongsideTables) {
  // The journal section follows the table catalog; both must survive.
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    TableSchema t("t", {Column("id", TypeId::kInt64, 0, false)}, {"id"});
    ASSERT_TRUE((*db)->CreateTable(t).ok());
    ASSERT_TRUE((*db)->Insert("t", {Value::Int(1)}).ok());
    *(*db)->mutable_migration_journal() = SampleJournal();
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)->HasTable("t"));
  EXPECT_TRUE((*db)->HasPendingMigration());
  EXPECT_EQ((*db)->migration_journal().targets.size(), 2u);
}

}  // namespace
}  // namespace pse
