#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

namespace pse {
namespace {

TEST(BufferPoolTest, NewPageIsZeroedAndPinned) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 4);
  auto g = pool.NewPage();
  ASSERT_TRUE(g.ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(g->data()[i], 0);
}

TEST(BufferPoolTest, WriteSurvivesEviction) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 2);
  PageId pid;
  {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
    pid = g->page_id();
    std::memset(g->mutable_data(), 0x77, kPageSize);
  }
  // Force eviction by cycling more pages than capacity.
  for (int i = 0; i < 4; ++i) {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
  }
  auto g = pool.FetchPage(pid);
  ASSERT_TRUE(g.ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(static_cast<uint8_t>(g->data()[i]), 0x77);
}

TEST(BufferPoolTest, HitDoesNotTouchDisk) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 4);
  PageId pid;
  {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
    pid = g->page_id();
  }
  dm.ResetStats();
  {
    auto g = pool.FetchPage(pid);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(dm.stats().page_reads, 0u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, MissReadsFromDisk) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 2);
  PageId pid;
  {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
    pid = g->page_id();
    g->mutable_data()[0] = 1;
  }
  ASSERT_TRUE(pool.EvictAll().ok());
  dm.ResetStats();
  {
    auto g = pool.FetchPage(pid);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[0], 1);
  }
  EXPECT_EQ(dm.stats().page_reads, 1u);
}

TEST(BufferPoolTest, AllPinnedExhaustsPool) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 2);
  auto g1 = pool.NewPage();
  auto g2 = pool.NewPage();
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto g3 = pool.NewPage();
  EXPECT_FALSE(g3.ok());
  EXPECT_EQ(g3.status().code(), StatusCode::kResourceExhausted);
  g1->Release();
  auto g4 = pool.NewPage();
  EXPECT_TRUE(g4.ok());
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 2);
  PageId a, b;
  {
    auto g = pool.NewPage();
    a = g->page_id();
  }
  {
    auto g = pool.NewPage();
    b = g->page_id();
  }
  // Touch a so b becomes LRU.
  { auto g = pool.FetchPage(a); }
  { auto g = pool.NewPage(); }  // evicts b
  dm.ResetStats();
  { auto g = pool.FetchPage(a); }  // should still be resident
  EXPECT_EQ(dm.stats().page_reads, 0u);
  { auto g = pool.FetchPage(b); }  // was evicted -> one read
  EXPECT_EQ(dm.stats().page_reads, 1u);
}

TEST(BufferPoolTest, DirtyEvictionWritesBack) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 1);
  {
    auto g = pool.NewPage();
    g->mutable_data()[5] = 42;
  }
  { auto g = pool.NewPage(); }  // evicts the dirty page
  EXPECT_GE(pool.stats().dirty_writebacks, 1u);
  EXPECT_GE(dm.stats().page_writes, 1u);
}

TEST(BufferPoolTest, FlushAllCleansFrames) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 4);
  PageId pid;
  {
    auto g = pool.NewPage();
    pid = g->page_id();
    g->mutable_data()[0] = 9;
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  char buf[kPageSize];
  ASSERT_TRUE(dm.ReadPage(pid, buf).ok());
  EXPECT_EQ(buf[0], 9);
}

TEST(BufferPoolTest, DeletePageRemovesFromCache) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 4);
  PageId pid;
  {
    auto g = pool.NewPage();
    pid = g->page_id();
  }
  ASSERT_TRUE(pool.DeletePage(pid).ok());
  // Frame should be reusable without eviction.
  auto g = pool.NewPage();
  ASSERT_TRUE(g.ok());
}

TEST(BufferPoolTest, MoveGuardTransfersPin) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 1);
  auto g1 = pool.NewPage();
  ASSERT_TRUE(g1.ok());
  PageGuard g2 = std::move(*g1);
  EXPECT_TRUE(g2.Valid());
  EXPECT_FALSE(g1->Valid());
  g2.Release();
  auto g3 = pool.NewPage();  // only works if pin was released exactly once
  EXPECT_TRUE(g3.ok());
}

}  // namespace
}  // namespace pse
