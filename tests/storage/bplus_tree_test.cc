#include "storage/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"

namespace pse {
namespace {

Rid MakeRid(uint32_t p, uint16_t s) { return Rid{p, s}; }

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest() : pool_(&dm_, 512) {}
  InMemoryDiskManager dm_;
  BufferPool pool_;
};

TEST_F(BPlusTreeTest, EmptyTreeScans) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  std::vector<Rid> out;
  ASSERT_TRUE(tree->ScanEqual(5, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree->height(), 1u);
}

TEST_F(BPlusTreeTest, InsertAndPointLookup) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(10, MakeRid(1, 0)).ok());
  ASSERT_TRUE(tree->Insert(20, MakeRid(1, 1)).ok());
  std::vector<Rid> out;
  ASSERT_TRUE(tree->ScanEqual(10, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], MakeRid(1, 0));
  out.clear();
  ASSERT_TRUE(tree->ScanEqual(15, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(BPlusTreeTest, DuplicateKeysAllDistinctRids) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint16_t s = 0; s < 50; ++s) {
    ASSERT_TRUE(tree->Insert(7, MakeRid(2, s)).ok());
  }
  std::vector<Rid> out;
  ASSERT_TRUE(tree->ScanEqual(7, &out).ok());
  EXPECT_EQ(out.size(), 50u);
}

TEST_F(BPlusTreeTest, ExactDuplicatePairRejected) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(1, MakeRid(1, 1)).ok());
  EXPECT_FALSE(tree->Insert(1, MakeRid(1, 1)).ok());
}

TEST_F(BPlusTreeTest, RangeScanInclusive) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree->Insert(k, MakeRid(static_cast<uint32_t>(k), 0)).ok());
  }
  std::vector<Rid> out;
  ASSERT_TRUE(tree->ScanRange(10, 19, &out).ok());
  EXPECT_EQ(out.size(), 10u);
  out.clear();
  ASSERT_TRUE(tree->ScanRange(50, 50, &out).ok());
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  ASSERT_TRUE(tree->ScanRange(90, 200, &out).ok());
  EXPECT_EQ(out.size(), 10u);
  out.clear();
  ASSERT_TRUE(tree->ScanRange(20, 10, &out).ok());  // empty reversed range
  EXPECT_TRUE(out.empty());
}

TEST_F(BPlusTreeTest, SplitsGrowHeight) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  // 511 entries fit in one leaf; beyond that the root must split.
  for (int64_t k = 0; k < 600; ++k) {
    ASSERT_TRUE(tree->Insert(k, MakeRid(0, 0)).ok());
  }
  EXPECT_GE(tree->height(), 2u);
  auto check = tree->CheckInvariants();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(*check, 600u);
}

TEST_F(BPlusTreeTest, DeleteRemovesEntry) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(5, MakeRid(1, 0)).ok());
  ASSERT_TRUE(tree->Insert(5, MakeRid(1, 1)).ok());
  ASSERT_TRUE(tree->Delete(5, MakeRid(1, 0)).ok());
  std::vector<Rid> out;
  ASSERT_TRUE(tree->ScanEqual(5, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], MakeRid(1, 1));
  EXPECT_FALSE(tree->Delete(5, MakeRid(1, 0)).ok());  // already gone
}

TEST_F(BPlusTreeTest, NegativeKeys) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (int64_t k = -50; k <= 50; ++k) {
    ASSERT_TRUE(tree->Insert(k, MakeRid(0, 0)).ok());
  }
  std::vector<Rid> out;
  ASSERT_TRUE(tree->ScanRange(-10, 10, &out).ok());
  EXPECT_EQ(out.size(), 21u);
}

TEST_F(BPlusTreeTest, LargeSequentialInsertKeepsInvariants) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  const int64_t kN = 20000;
  for (int64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree->Insert(k, MakeRid(static_cast<uint32_t>(k % 97), 0)).ok());
  }
  EXPECT_GE(tree->height(), 2u);
  auto check = tree->CheckInvariants();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(*check, static_cast<uint64_t>(kN));
  std::vector<Rid> out;
  ASSERT_TRUE(tree->ScanRange(0, kN, &out).ok());
  EXPECT_EQ(out.size(), static_cast<size_t>(kN));
}

// Property: random inserts/deletes match a std::multimap reference model.
class BPlusTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeProperty, MatchesReferenceModel) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 1024);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(GetParam());
  std::set<std::pair<int64_t, uint64_t>> model;
  for (int step = 0; step < 20000; ++step) {
    if (rng.UniformDouble() < 0.75 || model.empty()) {
      int64_t key = rng.UniformInt(0, 500);  // small domain forces duplicates
      Rid rid = MakeRid(static_cast<uint32_t>(rng.UniformInt(0, 1 << 20)),
                        static_cast<uint16_t>(rng.UniformInt(0, 100)));
      bool fresh = model.insert({key, rid.Pack()}).second;
      Status s = tree->Insert(key, rid);
      EXPECT_EQ(s.ok(), fresh);
    } else {
      auto it = model.begin();
      std::advance(it, rng.Index(model.size()));
      ASSERT_TRUE(tree->Delete(it->first, Rid::Unpack(it->second)).ok());
      model.erase(it);
    }
  }
  auto check = tree->CheckInvariants();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(*check, model.size());
  // Spot-check all point scans over the key domain.
  for (int64_t key = 0; key <= 500; ++key) {
    std::vector<Rid> got;
    ASSERT_TRUE(tree->ScanEqual(key, &got).ok());
    std::vector<uint64_t> got_packed;
    for (auto& r : got) got_packed.push_back(r.Pack());
    std::vector<uint64_t> want;
    for (auto it = model.lower_bound({key, 0}); it != model.end() && it->first == key; ++it) {
      want.push_back(it->second);
    }
    std::sort(got_packed.begin(), got_packed.end());
    ASSERT_EQ(got_packed, want) << "key=" << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeProperty, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace pse
