// Failure injection: a DiskManager that starts failing after N operations.
// Verifies that I/O errors propagate as Status through every layer (buffer
// pool, heap, B+ tree, Database) instead of crashing or corrupting state.
// Uses the shared FaultInjectionDiskManager decorator (disk_manager.h), the
// same one the crash-recovery suite drives.
#include <gtest/gtest.h>

#include "storage/database.h"

namespace pse {
namespace {

std::unique_ptr<FaultInjectionDiskManager> FlakyDisk(uint64_t io_budget) {
  auto disk = std::make_unique<FaultInjectionDiskManager>(std::make_unique<InMemoryDiskManager>());
  disk->set_io_budget(io_budget);
  return disk;
}

TableSchema WideSchema() {
  return TableSchema("t",
                     {Column("id", TypeId::kInt64, 0, false),
                      Column("payload", TypeId::kVarchar, 64)},
                     {"id"});
}

TEST(FailureInjectionTest, InsertsEventuallyFailCleanly) {
  // A tiny pool forces evictions (disk writes); a small I/O budget makes
  // them fail at some point. The API must return a non-OK status, never
  // crash.
  Database db(4, FlakyDisk(25));
  ASSERT_TRUE(db.CreateTable(WideSchema()).ok());
  bool failed = false;
  for (int64_t i = 0; i < 5000 && !failed; ++i) {
    auto rid = db.Insert("t", {Value::Int(i), Value::Varchar(std::string(60, 'x'))});
    if (!rid.ok()) {
      EXPECT_EQ(rid.status().code(), StatusCode::kIOError);
      failed = true;
    }
  }
  EXPECT_TRUE(failed) << "injected failure never surfaced";
}

TEST(FailureInjectionTest, ScanSurfacesReadFailure) {
  Database db(4, FlakyDisk(1000000));
  ASSERT_TRUE(db.CreateTable(WideSchema()).ok());
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int(i), Value::Varchar(std::string(60, 'y'))}).ok());
  }
  // With zero I/O budget even table creation cannot flush; depending on
  // timing it may succeed (page still cached). Either way nothing crashes
  // and any failure is kIOError.
  Database db2(4, FlakyDisk(0));
  Status s = db2.CreateTable(WideSchema());
  if (!s.ok()) {
    EXPECT_EQ(s.code(), StatusCode::kIOError);
  }
}

TEST(FailureInjectionTest, FailedOperationsLeaveDatabaseUsable) {
  Database db(4, FlakyDisk(40));
  ASSERT_TRUE(db.CreateTable(WideSchema()).ok());
  int64_t inserted = 0;
  for (int64_t i = 0; i < 5000; ++i) {
    auto rid = db.Insert("t", {Value::Int(i), Value::Varchar(std::string(60, 'z'))});
    if (!rid.ok()) break;
    ++inserted;
  }
  ASSERT_GT(inserted, 0);
  // Catalog-level operations that need no disk I/O still work.
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_EQ(db.TableNames().size(), 1u);
}

TEST(FailureInjectionTest, WriteBudgetFailsExactlyAfterLimit) {
  auto disk = FlakyDisk(FaultInjectionDiskManager::kNoLimit);
  FaultInjectionDiskManager* handle = disk.get();
  handle->set_write_budget(3);
  Database db(4, std::move(disk));
  ASSERT_TRUE(db.CreateTable(WideSchema()).ok());
  // Writes fail once exactly 3 have succeeded; the error names the page.
  for (int64_t i = 0; i < 5000; ++i) {
    auto rid = db.Insert("t", {Value::Int(i), Value::Varchar(std::string(60, 'w'))});
    if (!rid.ok()) {
      EXPECT_EQ(rid.status().code(), StatusCode::kIOError);
      EXPECT_NE(rid.status().message().find("injected write failure"), std::string::npos);
      EXPECT_EQ(handle->writes_done(), 3u);
      return;
    }
  }
  FAIL() << "write budget never triggered";
}

}  // namespace
}  // namespace pse
