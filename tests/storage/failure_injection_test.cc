// Failure injection: a DiskManager that starts failing after N operations.
// Verifies that I/O errors propagate as Status through every layer (buffer
// pool, heap, B+ tree, Database) instead of crashing or corrupting state.
#include <gtest/gtest.h>

#include "storage/database.h"

namespace pse {
namespace {

/// Wraps a real disk manager; fails every operation once `budget` I/Os have
/// been spent.
class FlakyDiskManager : public DiskManager {
 public:
  explicit FlakyDiskManager(uint64_t budget) : budget_(budget) {}

  PageId AllocatePage() override {
    ++stats_.pages_allocated;
    return inner_.AllocatePage();
  }
  Status ReadPage(PageId page_id, char* out) override {
    if (Spend()) return Status::IOError("injected read failure");
    ++stats_.page_reads;
    return inner_.ReadPage(page_id, out);
  }
  Status WritePage(PageId page_id, const char* data) override {
    if (Spend()) return Status::IOError("injected write failure");
    ++stats_.page_writes;
    return inner_.WritePage(page_id, data);
  }
  void DeallocatePage(PageId page_id) override { inner_.DeallocatePage(page_id); }
  uint64_t NumAllocatedPages() const override { return inner_.NumAllocatedPages(); }

 private:
  bool Spend() {
    if (used_ >= budget_) return true;
    ++used_;
    return false;
  }
  InMemoryDiskManager inner_;
  uint64_t budget_;
  uint64_t used_ = 0;
};

TableSchema WideSchema() {
  return TableSchema("t",
                     {Column("id", TypeId::kInt64, 0, false),
                      Column("payload", TypeId::kVarchar, 64)},
                     {"id"});
}

TEST(FailureInjectionTest, InsertsEventuallyFailCleanly) {
  // A tiny pool forces evictions (disk writes); a small I/O budget makes
  // them fail at some point. The API must return a non-OK status, never
  // crash.
  Database db(4, std::make_unique<FlakyDiskManager>(25));
  ASSERT_TRUE(db.CreateTable(WideSchema()).ok());
  bool failed = false;
  for (int64_t i = 0; i < 5000 && !failed; ++i) {
    auto rid = db.Insert("t", {Value::Int(i), Value::Varchar(std::string(60, 'x'))});
    if (!rid.ok()) {
      EXPECT_EQ(rid.status().code(), StatusCode::kIOError);
      failed = true;
    }
  }
  EXPECT_TRUE(failed) << "injected failure never surfaced";
}

TEST(FailureInjectionTest, ScanSurfacesReadFailure) {
  auto flaky = std::make_unique<FlakyDiskManager>(1000000);
  FlakyDiskManager* handle = flaky.get();
  (void)handle;
  Database db(4, std::move(flaky));
  ASSERT_TRUE(db.CreateTable(WideSchema()).ok());
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int(i), Value::Varchar(std::string(60, 'y'))}).ok());
  }
  // Rebuild with a budget that survives the load but dies during the scan.
  // (Simpler: new database with exact budget discovered empirically is
  // brittle; instead verify that a scan on a healthy database is OK and on
  // an exhausted one is not.)
  Database db2(4, std::make_unique<FlakyDiskManager>(0));
  Status s = db2.CreateTable(WideSchema());
  // With zero I/O budget even table creation cannot flush; depending on
  // timing it may succeed (page still cached). Either way nothing crashes
  // and any failure is kIOError.
  if (!s.ok()) {
    EXPECT_EQ(s.code(), StatusCode::kIOError);
  }
}

TEST(FailureInjectionTest, FailedOperationsLeaveDatabaseUsable) {
  Database db(4, std::make_unique<FlakyDiskManager>(40));
  ASSERT_TRUE(db.CreateTable(WideSchema()).ok());
  int64_t inserted = 0;
  for (int64_t i = 0; i < 5000; ++i) {
    auto rid = db.Insert("t", {Value::Int(i), Value::Varchar(std::string(60, 'z'))});
    if (!rid.ok()) break;
    ++inserted;
  }
  ASSERT_GT(inserted, 0);
  // Catalog-level operations that need no disk I/O still work.
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_EQ(db.TableNames().size(), 1u);
}

}  // namespace
}  // namespace pse
