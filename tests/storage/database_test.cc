#include "storage/database.h"

#include <gtest/gtest.h>

namespace pse {
namespace {

TableSchema BookSchema() {
  return TableSchema("book",
                     {Column("book_id", TypeId::kInt64, 0, false),
                      Column("title", TypeId::kVarchar, 30),
                      Column("author_id", TypeId::kInt64)},
                     {"book_id"});
}

TEST(DatabaseTest, CreateAndLookupTable) {
  Database db(64);
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  EXPECT_TRUE(db.HasTable("book"));
  EXPECT_TRUE(db.HasTable("BOOK"));  // case-insensitive
  EXPECT_FALSE(db.HasTable("missing"));
  auto t = db.GetTable("book");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->schema->num_columns(), 3u);
}

TEST(DatabaseTest, DuplicateCreateRejected) {
  Database db(64);
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  EXPECT_TRUE(db.CreateTable(BookSchema()).IsAlreadyExists());
}

TEST(DatabaseTest, AutoKeyIndexCreated) {
  Database db(64);
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  auto t = db.GetTable("book");
  ASSERT_TRUE(t.ok());
  EXPECT_NE((*t)->FindIndex("book_id"), nullptr);
  EXPECT_EQ((*t)->FindIndex("author_id"), nullptr);
}

TEST(DatabaseTest, InsertMaintainsIndex) {
  Database db(64);
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  for (int64_t i = 0; i < 100; ++i) {
    auto rid = db.Insert("book", {Value::Int(i), Value::Varchar("t" + std::to_string(i)),
                                  Value::Int(i % 10)});
    ASSERT_TRUE(rid.ok());
  }
  auto t = db.GetTable("book");
  const IndexInfo* idx = (*t)->FindIndex("book_id");
  ASSERT_NE(idx, nullptr);
  std::vector<Rid> rids;
  ASSERT_TRUE(idx->tree->ScanEqual(42, &rids).ok());
  ASSERT_EQ(rids.size(), 1u);
  Row row;
  ASSERT_TRUE((*t)->heap->Get(rids[0], &row).ok());
  EXPECT_EQ(row[1].AsString(), "t42");
}

TEST(DatabaseTest, SecondaryIndexBackfills) {
  Database db(64);
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Insert("book", {Value::Int(i), Value::Varchar("t"), Value::Int(i % 5)}).ok());
  }
  ASSERT_TRUE(db.CreateIndex("book", "author_id").ok());
  auto t = db.GetTable("book");
  const IndexInfo* idx = (*t)->FindIndex("author_id");
  ASSERT_NE(idx, nullptr);
  std::vector<Rid> rids;
  ASSERT_TRUE(idx->tree->ScanEqual(3, &rids).ok());
  EXPECT_EQ(rids.size(), 10u);
}

TEST(DatabaseTest, IndexOnNonIntColumnRejected) {
  Database db(64);
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  EXPECT_FALSE(db.CreateIndex("book", "title").ok());
}

TEST(DatabaseTest, DeleteMaintainsIndex) {
  Database db(64);
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  auto rid = db.Insert("book", {Value::Int(7), Value::Varchar("x"), Value::Int(1)});
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(db.Delete("book", *rid).ok());
  auto t = db.GetTable("book");
  std::vector<Rid> rids;
  ASSERT_TRUE((*t)->FindIndex("book_id")->tree->ScanEqual(7, &rids).ok());
  EXPECT_TRUE(rids.empty());
  EXPECT_EQ((*t)->row_count, 0u);
}

TEST(DatabaseTest, UpdateMaintainsIndex) {
  Database db(64);
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  auto rid = db.Insert("book", {Value::Int(7), Value::Varchar("x"), Value::Int(1)});
  ASSERT_TRUE(rid.ok());
  auto nrid = db.Update("book", *rid, {Value::Int(8), Value::Varchar("y"), Value::Int(1)});
  ASSERT_TRUE(nrid.ok());
  auto t = db.GetTable("book");
  std::vector<Rid> rids;
  ASSERT_TRUE((*t)->FindIndex("book_id")->tree->ScanEqual(7, &rids).ok());
  EXPECT_TRUE(rids.empty());
  ASSERT_TRUE((*t)->FindIndex("book_id")->tree->ScanEqual(8, &rids).ok());
  EXPECT_EQ(rids.size(), 1u);
}

TEST(DatabaseTest, DropTableFreesAndForgets) {
  Database db(64);
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        db.Insert("book", {Value::Int(i), Value::Varchar(std::string(40, 'a')), Value::Int(0)})
            .ok());
  }
  ASSERT_TRUE(db.DropTable("book").ok());
  EXPECT_FALSE(db.HasTable("book"));
  EXPECT_FALSE(db.DropTable("book").ok());
  // Can recreate under the same name.
  EXPECT_TRUE(db.CreateTable(BookSchema()).ok());
}

TEST(DatabaseTest, AnalyzeComputesStatistics) {
  Database db(64);
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.Insert("book", {Value::Int(i), Value::Varchar("title-" + std::to_string(i)),
                                   i % 7 == 0 ? Value::Null(TypeId::kInt64) : Value::Int(i % 10)})
                    .ok());
  }
  ASSERT_TRUE(db.Analyze("book").ok());
  auto t = db.GetTable("book");
  const TableStatistics& st = (*t)->stats;
  EXPECT_EQ(st.row_count, 200u);
  EXPECT_GT(st.page_count, 0u);
  EXPECT_GT(st.avg_tuple_width, 10.0);
  const ColumnStatistics* id_stats = st.Column("book_id");
  ASSERT_NE(id_stats, nullptr);
  EXPECT_EQ(id_stats->num_distinct, 200u);
  EXPECT_EQ(id_stats->min->AsInt(), 0);
  EXPECT_EQ(id_stats->max->AsInt(), 199);
  const ColumnStatistics* author_stats = st.Column("author_id");
  ASSERT_NE(author_stats, nullptr);
  EXPECT_EQ(author_stats->num_distinct, 10u);
  EXPECT_GT(author_stats->null_count, 0u);
}

TEST(DatabaseTest, TableNamesSorted) {
  Database db(64);
  TableSchema a("zeta", {Column("x", TypeId::kInt64)});
  TableSchema b("alpha", {Column("x", TypeId::kInt64)});
  ASSERT_TRUE(db.CreateTable(a).ok());
  ASSERT_TRUE(db.CreateTable(b).ok());
  auto names = db.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(DatabaseTest, IoCountersAdvanceOnColdScan) {
  Database db(8);  // tiny pool to force physical I/O
  ASSERT_TRUE(db.CreateTable(BookSchema()).ok());
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        db.Insert("book", {Value::Int(i), Value::Varchar(std::string(30, 'b')), Value::Int(0)})
            .ok());
  }
  db.ResetIoStats();
  auto t = db.GetTable("book");
  uint64_t rows = 0;
  for (auto it = (*t)->heap->Begin(); !it.AtEnd();) {
    ++rows;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(rows, 2000u);
  EXPECT_GT(db.TotalIo(), 0u);
}

}  // namespace
}  // namespace pse
