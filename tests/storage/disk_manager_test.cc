#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

namespace pse {
namespace {

TEST(InMemoryDiskManagerTest, AllocateReadWrite) {
  InMemoryDiskManager dm;
  PageId p = dm.AllocatePage();
  char buf[kPageSize];
  std::memset(buf, 0xAB, kPageSize);
  ASSERT_TRUE(dm.WritePage(p, buf).ok());
  char out[kPageSize];
  ASSERT_TRUE(dm.ReadPage(p, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
}

TEST(InMemoryDiskManagerTest, UnwrittenPageReadsZeros) {
  InMemoryDiskManager dm;
  PageId p = dm.AllocatePage();
  char out[kPageSize];
  std::memset(out, 0xFF, kPageSize);
  ASSERT_TRUE(dm.ReadPage(p, out).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(out[i], 0);
}

TEST(InMemoryDiskManagerTest, OutOfRangeAccessFails) {
  InMemoryDiskManager dm;
  char buf[kPageSize] = {};
  EXPECT_FALSE(dm.ReadPage(5, buf).ok());
  EXPECT_FALSE(dm.WritePage(5, buf).ok());
}

TEST(InMemoryDiskManagerTest, StatsCountIo) {
  InMemoryDiskManager dm;
  PageId p = dm.AllocatePage();
  char buf[kPageSize] = {};
  ASSERT_TRUE(dm.WritePage(p, buf).ok());
  ASSERT_TRUE(dm.WritePage(p, buf).ok());
  ASSERT_TRUE(dm.ReadPage(p, buf).ok());
  EXPECT_EQ(dm.stats().page_writes, 2u);
  EXPECT_EQ(dm.stats().page_reads, 1u);
  EXPECT_EQ(dm.stats().pages_allocated, 1u);
  EXPECT_EQ(dm.stats().TotalIo(), 3u);
  dm.ResetStats();
  EXPECT_EQ(dm.stats().TotalIo(), 0u);
}

TEST(FileDiskManagerTest, PersistsAcrossReopen) {
  std::string path = testing::TempDir() + "/pse_fdm_test.db";
  std::remove(path.c_str());
  char buf[kPageSize];
  std::memset(buf, 0x5C, kPageSize);
  PageId p;
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    p = (*dm)->AllocatePage();
    ASSERT_TRUE((*dm)->WritePage(p, buf).ok());
  }
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ((*dm)->NumAllocatedPages(), 1u);
    char out[kPageSize];
    ASSERT_TRUE((*dm)->ReadPage(p, out).ok());
    EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, ReadBeyondEofZeroFills) {
  std::string path = testing::TempDir() + "/pse_fdm_eof.db";
  std::remove(path.c_str());
  auto dm = FileDiskManager::Open(path);
  ASSERT_TRUE(dm.ok());
  PageId p = (*dm)->AllocatePage();
  char out[kPageSize];
  std::memset(out, 0x11, kPageSize);
  ASSERT_TRUE((*dm)->ReadPage(p, out).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(out[i], 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pse
