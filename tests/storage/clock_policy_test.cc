// Clock (second-chance) replacement: correctness parity with LRU and the
// second-chance behavior itself.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "storage/buffer_pool.h"

namespace pse {
namespace {

TEST(ClockPolicyTest, WritesSurviveEviction) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 2, ReplacementPolicy::kClock);
  PageId pid;
  {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
    pid = g->page_id();
    std::memset(g->mutable_data(), 0x3C, kPageSize);
  }
  for (int i = 0; i < 5; ++i) {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
  }
  auto g = pool.FetchPage(pid);
  ASSERT_TRUE(g.ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(static_cast<uint8_t>(g->data()[i]), 0x3C);
  }
}

TEST(ClockPolicyTest, AllPinnedIsResourceExhausted) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 2, ReplacementPolicy::kClock);
  auto g1 = pool.NewPage();
  auto g2 = pool.NewPage();
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto g3 = pool.NewPage();
  ASSERT_FALSE(g3.ok());
  EXPECT_EQ(g3.status().code(), StatusCode::kResourceExhausted);
}

TEST(ClockPolicyTest, SecondChanceProtectsReReferencedPage) {
  // Clock cannot guarantee any single eviction spares the hottest page (a
  // full sweep with every bit set evicts whatever sits under the hand), but
  // across many evictions a page re-referenced before each allocation must
  // survive far more often than it is evicted, while never-referenced pages
  // churn constantly.
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 4, ReplacementPolicy::kClock);
  PageId hot;
  {
    auto g = pool.NewPage();
    hot = g->page_id();
  }
  for (int i = 0; i < 3; ++i) {
    auto g = pool.NewPage();
  }
  int hot_misses = 0;
  for (int round = 0; round < 20; ++round) {
    dm.ResetStats();
    { auto g = pool.FetchPage(hot); }
    if (dm.stats().page_reads > 0) ++hot_misses;
    { auto g = pool.NewPage(); }  // forces an eviction every round
  }
  // Without the ref bit the hot page would miss nearly every round (the
  // allocations flood the 4-frame pool); with it, misses are rare.
  EXPECT_LE(hot_misses, 6) << "second chance is not protecting the hot page";
}

TEST(ClockPolicyTest, RandomWorkloadMatchesLruContent) {
  // Same random page access pattern through both policies; the *contents*
  // read back must be identical (policies only change WHICH pages stay
  // cached, never what data a fetch returns).
  Rng rng(77);
  InMemoryDiskManager dm_lru, dm_clock;
  BufferPool lru(&dm_lru, 8, ReplacementPolicy::kLru);
  BufferPool clock(&dm_clock, 8, ReplacementPolicy::kClock);
  std::vector<PageId> pages_lru, pages_clock;
  for (int i = 0; i < 32; ++i) {
    auto gl = lru.NewPage();
    auto gc = clock.NewPage();
    ASSERT_TRUE(gl.ok());
    ASSERT_TRUE(gc.ok());
    std::memset(gl->mutable_data(), i, kPageSize);
    std::memset(gc->mutable_data(), i, kPageSize);
    pages_lru.push_back(gl->page_id());
    pages_clock.push_back(gc->page_id());
  }
  for (int step = 0; step < 500; ++step) {
    size_t i = rng.Index(pages_lru.size());
    auto gl = lru.FetchPage(pages_lru[i]);
    auto gc = clock.FetchPage(pages_clock[i]);
    ASSERT_TRUE(gl.ok());
    ASSERT_TRUE(gc.ok());
    ASSERT_EQ(gl->data()[0], gc->data()[0]) << "step " << step;
    ASSERT_EQ(static_cast<size_t>(static_cast<uint8_t>(gl->data()[0])), i);
  }
}

TEST(ClockPolicyTest, DeleteAndReuseFrames) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 4, ReplacementPolicy::kClock);
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
    pages.push_back(g->page_id());
  }
  ASSERT_TRUE(pool.DeletePage(pages[1]).ok());
  // The freed frame is reused without evicting anything else.
  uint64_t evictions_before = pool.stats().evictions;
  auto g = pool.NewPage();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(pool.stats().evictions, evictions_before);
}

}  // namespace
}  // namespace pse
