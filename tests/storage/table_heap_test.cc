#include "storage/table_heap.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"

namespace pse {
namespace {

class TableHeapTest : public ::testing::Test {
 protected:
  TableHeapTest()
      : pool_(&dm_, 64),
        schema_("t", {Column("id", TypeId::kInt64), Column("payload", TypeId::kVarchar, 32)}) {}

  InMemoryDiskManager dm_;
  BufferPool pool_;
  TableSchema schema_;
};

TEST_F(TableHeapTest, InsertAndGet) {
  auto heap = TableHeap::Create(&pool_, &schema_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Insert({Value::Int(1), Value::Varchar("hello")});
  ASSERT_TRUE(rid.ok());
  Row out;
  ASSERT_TRUE(heap->Get(*rid, &out).ok());
  EXPECT_EQ(out[0].AsInt(), 1);
  EXPECT_EQ(out[1].AsString(), "hello");
}

TEST_F(TableHeapTest, GetMissingRid) {
  auto heap = TableHeap::Create(&pool_, &schema_);
  ASSERT_TRUE(heap.ok());
  Row out;
  EXPECT_FALSE(heap->Get(Rid{heap->first_page(), 3}, &out).ok());
}

TEST_F(TableHeapTest, DeleteHidesTuple) {
  auto heap = TableHeap::Create(&pool_, &schema_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Insert({Value::Int(1), Value::Varchar("x")});
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(heap->Delete(*rid).ok());
  Row out;
  EXPECT_FALSE(heap->Get(*rid, &out).ok());
  EXPECT_FALSE(heap->Delete(*rid).ok());  // double delete
}

TEST_F(TableHeapTest, UpdateInPlaceKeepsRid) {
  auto heap = TableHeap::Create(&pool_, &schema_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Insert({Value::Int(1), Value::Varchar("longpayload")});
  ASSERT_TRUE(rid.ok());
  auto nrid = heap->Update(*rid, {Value::Int(2), Value::Varchar("short")});
  ASSERT_TRUE(nrid.ok());
  EXPECT_EQ(nrid->page_id, rid->page_id);
  EXPECT_EQ(nrid->slot, rid->slot);
  Row out;
  ASSERT_TRUE(heap->Get(*nrid, &out).ok());
  EXPECT_EQ(out[0].AsInt(), 2);
}

TEST_F(TableHeapTest, UpdateGrowingRelocates) {
  auto heap = TableHeap::Create(&pool_, &schema_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Insert({Value::Int(1), Value::Varchar("s")});
  ASSERT_TRUE(rid.ok());
  auto nrid = heap->Update(*rid, {Value::Int(1), Value::Varchar(std::string(100, 'z'))});
  ASSERT_TRUE(nrid.ok());
  Row out;
  ASSERT_TRUE(heap->Get(*nrid, &out).ok());
  EXPECT_EQ(out[1].AsString().size(), 100u);
  // Old rid must now be a deleted slot.
  EXPECT_FALSE(heap->Get(*rid, &out).ok());
}

TEST_F(TableHeapTest, SpillsAcrossPages) {
  auto heap = TableHeap::Create(&pool_, &schema_);
  ASSERT_TRUE(heap.ok());
  const int kRows = 2000;  // ~48 bytes each -> several pages
  for (int i = 0; i < kRows; ++i) {
    auto rid = heap->Insert({Value::Int(i), Value::Varchar("row-" + std::to_string(i))});
    ASSERT_TRUE(rid.ok());
  }
  EXPECT_GT(heap->NumPages(), 5u);
  // Scan sees every row exactly once, in insertion order per page chain.
  int count = 0;
  for (auto it = heap->Begin(); !it.AtEnd();) {
    EXPECT_EQ(it.row()[0].AsInt(), count);
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, kRows);
}

TEST_F(TableHeapTest, ScanSkipsDeleted) {
  auto heap = TableHeap::Create(&pool_, &schema_);
  ASSERT_TRUE(heap.ok());
  std::vector<Rid> rids;
  for (int i = 0; i < 10; ++i) {
    auto rid = heap->Insert({Value::Int(i), Value::Varchar("v")});
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  for (int i = 0; i < 10; i += 2) ASSERT_TRUE(heap->Delete(rids[i]).ok());
  std::vector<int64_t> seen;
  for (auto it = heap->Begin(); !it.AtEnd();) {
    seen.push_back(it.row()[0].AsInt());
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 3, 5, 7, 9}));
}

TEST_F(TableHeapTest, EmptyHeapScan) {
  auto heap = TableHeap::Create(&pool_, &schema_);
  ASSERT_TRUE(heap.ok());
  auto it = heap->Begin();
  EXPECT_TRUE(it.AtEnd());
}

TEST_F(TableHeapTest, OversizeTupleRejected) {
  auto heap = TableHeap::Create(&pool_, &schema_);
  ASSERT_TRUE(heap.ok());
  Row huge{Value::Int(1), Value::Varchar(std::string(kPageSize, 'x'))};
  EXPECT_FALSE(heap->Insert(huge).ok());
}

// Property test: a randomized workload of inserts/deletes/updates matches a
// reference std::unordered_map model.
class TableHeapProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableHeapProperty, MatchesReferenceModel) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 128);
  TableSchema schema("t", {Column("id", TypeId::kInt64), Column("v", TypeId::kVarchar, 24)});
  auto heap = TableHeap::Create(&pool, &schema);
  ASSERT_TRUE(heap.ok());
  Rng rng(GetParam());
  std::unordered_map<uint64_t, std::pair<int64_t, std::string>> model;  // packed rid -> value
  for (int step = 0; step < 3000; ++step) {
    double roll = rng.UniformDouble();
    if (roll < 0.6 || model.empty()) {
      int64_t id = rng.UniformInt(0, 1000000);
      std::string payload = rng.AlphaString(rng.Index(40));
      auto rid = heap->Insert({Value::Int(id), Value::Varchar(payload)});
      ASSERT_TRUE(rid.ok());
      model[rid->Pack()] = {id, payload};
    } else if (roll < 0.8) {
      auto it = model.begin();
      std::advance(it, rng.Index(model.size()));
      ASSERT_TRUE(heap->Delete(Rid::Unpack(it->first)).ok());
      model.erase(it);
    } else {
      auto it = model.begin();
      std::advance(it, rng.Index(model.size()));
      int64_t id = rng.UniformInt(0, 1000000);
      std::string payload = rng.AlphaString(rng.Index(60));
      auto nrid = heap->Update(Rid::Unpack(it->first), {Value::Int(id), Value::Varchar(payload)});
      ASSERT_TRUE(nrid.ok());
      model.erase(it);
      model[nrid->Pack()] = {id, payload};
    }
  }
  // Verify via point reads and full scan.
  size_t scanned = 0;
  for (auto it = heap->Begin(); !it.AtEnd();) {
    auto found = model.find(it.rid().Pack());
    ASSERT_NE(found, model.end());
    EXPECT_EQ(it.row()[0].AsInt(), found->second.first);
    EXPECT_EQ(it.row()[1].AsString(), found->second.second);
    ++scanned;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(scanned, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableHeapProperty, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace pse
