// Database::Open / Checkpoint: the catalog and data survive process
// restarts (simulated by destroying and reopening the Database).
#include <gtest/gtest.h>

#include <cstdio>

#include "storage/database.h"

namespace pse {
namespace {

TableSchema BookSchema() {
  return TableSchema("book",
                     {Column("book_id", TypeId::kInt64, 0, false),
                      Column("title", TypeId::kVarchar, 30),
                      Column("author_id", TypeId::kInt64)},
                     {"book_id"});
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/pse_persist_test.db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PersistenceTest, FreshOpenCreatesEmptyDatabase) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)->TableNames().empty());
}

TEST_F(PersistenceTest, CatalogSurvivesReopen) {
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(BookSchema()).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->HasTable("book"));
  auto t = (*db)->GetTable("book");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->schema->num_columns(), 3u);
  EXPECT_EQ((*t)->schema->column(1).name, "title");
  EXPECT_EQ((*t)->schema->column(1).avg_width, 30u);
  EXPECT_FALSE((*t)->schema->column(0).nullable);
  ASSERT_EQ((*t)->schema->key_columns().size(), 1u);
  EXPECT_EQ((*t)->schema->key_columns()[0], "book_id");
}

TEST_F(PersistenceTest, DataAndIndexesSurviveReopen) {
  const int kRows = 3000;  // several heap pages + a multi-level-ish index
  {
    auto db = Database::Open(path_, 64);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(BookSchema()).ok());
    ASSERT_TRUE((*db)->CreateIndex("book", "author_id").ok());
    for (int64_t i = 0; i < kRows; ++i) {
      ASSERT_TRUE((*db)->Insert("book", {Value::Int(i),
                                         Value::Varchar("title-" + std::to_string(i)),
                                         Value::Int(i % 50)})
                      .ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(path_, 64);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto t = (*db)->GetTable("book");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->row_count, static_cast<uint64_t>(kRows));
  // Scan sees every row.
  uint64_t scanned = 0;
  for (auto it = (*t)->heap->Begin(); !it.AtEnd();) {
    ++scanned;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(scanned, static_cast<uint64_t>(kRows));
  // Both indexes answer point queries.
  const IndexInfo* pk = (*t)->FindIndex("book_id");
  ASSERT_NE(pk, nullptr);
  std::vector<Rid> rids;
  ASSERT_TRUE(pk->tree->ScanEqual(1234, &rids).ok());
  ASSERT_EQ(rids.size(), 1u);
  Row row;
  ASSERT_TRUE((*t)->heap->Get(rids[0], &row).ok());
  EXPECT_EQ(row[1].AsString(), "title-1234");
  const IndexInfo* fk = (*t)->FindIndex("author_id");
  ASSERT_NE(fk, nullptr);
  rids.clear();
  ASSERT_TRUE(fk->tree->ScanEqual(7, &rids).ok());
  EXPECT_EQ(rids.size(), static_cast<size_t>(kRows / 50));
}

TEST_F(PersistenceTest, WritesAfterReopenWork) {
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(BookSchema()).ok());
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          (*db)->Insert("book", {Value::Int(i), Value::Varchar("x"), Value::Int(0)}).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    for (int64_t i = 100; i < 200; ++i) {
      ASSERT_TRUE(
          (*db)->Insert("book", {Value::Int(i), Value::Varchar("y"), Value::Int(1)}).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  auto t = (*db)->GetTable("book");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->row_count, 200u);
  std::vector<Rid> rids;
  ASSERT_TRUE((*t)->FindIndex("book_id")->tree->ScanEqual(150, &rids).ok());
  EXPECT_EQ(rids.size(), 1u);
}

TEST_F(PersistenceTest, UncheckpointedChangesAreNotPromised) {
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(BookSchema()).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    // Insert WITHOUT checkpoint: the catalog row count is stale on reopen.
    ASSERT_TRUE(
        (*db)->Insert("book", {Value::Int(1), Value::Varchar("x"), Value::Int(0)}).ok());
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  auto t = (*db)->GetTable("book");
  ASSERT_TRUE(t.ok());
  // The table exists (checkpointed); the un-checkpointed insert may or may
  // not be visible — the contract only promises checkpointed state.
  EXPECT_TRUE((*db)->HasTable("book"));
}

TEST_F(PersistenceTest, LargeCatalogSpansChainPages) {
  // ~200 tables x ~8 wide columns comfortably exceeds one 8 KiB page of
  // serialized catalog.
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    for (int t = 0; t < 200; ++t) {
      std::vector<Column> cols{Column("id", TypeId::kInt64, 0, false)};
      for (int c = 0; c < 8; ++c) {
        cols.emplace_back("column_with_a_rather_long_name_" + std::to_string(c),
                          TypeId::kVarchar, 32);
      }
      TableSchema schema("table_number_" + std::to_string(t), std::move(cols), {"id"});
      ASSERT_TRUE((*db)->CreateTable(schema).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->TableNames().size(), 200u);
  EXPECT_TRUE((*db)->HasTable("table_number_199"));
}

TEST_F(PersistenceTest, RepeatedCheckpointsReuseChain) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable(BookSchema()).ok());
  uint64_t pages_after_first = 0;
  ASSERT_TRUE((*db)->Checkpoint().ok());
  pages_after_first = (*db)->disk()->NumAllocatedPages();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  EXPECT_EQ((*db)->disk()->NumAllocatedPages(), pages_after_first);
}

}  // namespace
}  // namespace pse
