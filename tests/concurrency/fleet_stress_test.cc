// Fleet-wide serving stress: serve lanes drive mixed-version reads AND
// writes across every shard while migration lanes walk other shards along
// the shared schedule under the global I/O token budget. Built for the
// ThreadSanitizer and lockdep legs (scripts/check.sh --tsan / --lockdep):
// the whole run must finish with zero non-bind foreground errors, every
// tenant migrated, the I/O budget respected, and a clean lock-order report
// across the fleet's four new lock classes (fleet, shard:<id>,
// fleet:iobudget, fleet:plancache) interleaved with the catalog, router,
// and table latches.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "analysis/lockorder.h"
#include "analysis/writability.h"
#include "common/lock_registry.h"
#include "core/rewriter.h"
#include "fleet/plan_cache.h"
#include "fleet/schedule.h"
#include "fleet/scheduler.h"
#include "fleet/tenant_shard.h"
#include "tests/common/test_db_builder.h"

namespace pse {
namespace {

using testutil::Bookstore;

/// Same contract as the serving suite's scope: clear the registry, then at
/// scope end require zero violations and an acyclic rank-ordered graph.
class LockdepCleanScope {
 public:
  LockdepCleanScope() { LockRegistry::Instance().ClearEvents(); }
  ~LockdepCleanScope() {
    LockOrderGraph g = LockRegistry::Instance().Snapshot();
    for (const LockViolation& v : g.violations) {
      ADD_FAILURE() << "lockdep violation: " << v.ToString();
    }
    DiagnosticReport report = AnalyzeLockOrder(g);
    EXPECT_TRUE(report.ok()) << report.ToString();
#ifdef PSE_LOCKDEP
    EXPECT_GT(g.acquisitions, 0u) << "lockdep build recorded no acquisitions";
#endif
    LockRegistry::Instance().ClearEvents();
  }
};

class FleetStressTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    auto schedule = PlanFleetSchedule(bs_->source, bs_->object);
    ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
    schedule_ = std::make_unique<FleetSchedule>(std::move(*schedule));

    LogicalQuery book;
    book.name = "old-book-author";
    book.anchor = bs_->book;
    book.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    book.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
    queries_.emplace_back(std::move(book), /*is_old=*/true);
    LogicalQuery user;
    user.name = "old-user";
    user.anchor = bs_->user;
    user.select.emplace_back(Col("u_name"), AggFunc::kNone, "n");
    user.select.emplace_back(Col("u_addr"), AggFunc::kNone, "ad");
    queries_.emplace_back(std::move(user), /*is_old=*/true);
    LogicalQuery abstract_q;
    abstract_q.name = "new-abstract";
    abstract_q.anchor = bs_->book;
    abstract_q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    abstract_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "ab");
    queries_.emplace_back(std::move(abstract_q), /*is_old=*/false);

    // Mixed-version write targets: user-anchored tables of both eras (no
    // FKs, so any value mix keeps the instance covering for the reads).
    for (const VersionTable& vt : VersionTablesOf(bs_->source)) {
      if (vt.anchor == bs_->user) write_tables_.push_back(vt);
    }
    for (const VersionTable& vt : VersionTablesOf(bs_->object)) {
      if (vt.anchor == bs_->user) write_tables_.push_back(vt);
    }
    ASSERT_GE(write_tables_.size(), 3u);
  }

  /// Random user-era DML: INSERT/UPDATE/DELETE on a version table of either
  /// era, keys in a per-shard range so lanes collide on rows too.
  LogicalDml MakeWrite(size_t shard, std::mt19937_64& rng) {
    const VersionTable& vt = write_tables_[rng() % write_tables_.size()];
    LogicalDml dml;
    uint64_t roll = rng() % 10;
    dml.kind = roll < 5 ? DmlKind::kInsert : roll < 8 ? DmlKind::kUpdate : DmlKind::kDelete;
    dml.table = vt;
    dml.key = static_cast<int64_t>(1000 * shard + rng() % 40);
    if (dml.kind != DmlKind::kDelete) {
      for (AttrId a : vt.attrs) {
        if (rng() % 10 >= 6) continue;
        dml.set_attrs.push_back(a);
        const LogicalAttribute& attr = bs_->logical.attr(a);
        if (attr.type == TypeId::kInt64) {
          dml.set_values.push_back(Value::Int(static_cast<int64_t>(rng() % 1000)));
        } else {
          dml.set_values.push_back(Value::Varchar("w" + std::to_string(rng() % 100)));
        }
      }
    }
    return dml;
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<FleetSchedule> schedule_;
  std::vector<WorkloadQuery> queries_;
  std::vector<VersionTable> write_tables_;
  std::vector<std::unique_ptr<LogicalDatabase>> data_;
};

// Serve lanes hammer K shards with mixed-version reads and writes while
// migration lanes walk the fleet under every staggering policy. Nothing may
// fail with anything but BindError, the budget holds, and lockdep stays
// clean across the whole interleaving.
TEST_P(FleetStressTest, FleetServesCleanlyWhileMigrating) {
  constexpr size_t kTenants = 5;
  LockdepCleanScope lockdep;
  SharedPlanCache cache;

  for (FleetPolicy policy : {FleetPolicy::kRoundRobin, FleetPolicy::kLaggardFirst,
                             FleetPolicy::kHotTenantDeferred}) {
    SCOPED_TRACE(FleetPolicyName(policy));
    FleetScheduler fleet(*schedule_, &cache);
    for (size_t t = 0; t < kTenants; ++t) {
      data_.push_back(bs_->MakeData(3, 3, 20 + static_cast<int>(t)));
      auto shard = TenantShard::Create(t, bs_->source, data_.back().get());
      ASSERT_TRUE(shard.ok()) << shard.status().ToString();
      fleet.AddShard(std::move(*shard));
    }

    FleetOptions options;
    options.policy = policy;
    options.migration_lanes = 2;
    options.serve_lanes = 3;
    options.io_tokens = 2;
    options.min_queries_per_lane = 64;
    options.seed = 20260808 + static_cast<uint64_t>(policy);
    options.vectorized = GetParam();
    options.write_fraction = 0.3;
    options.make_write = [this](size_t shard, uint64_t, std::mt19937_64& rng) {
      return MakeWrite(shard, rng);
    };
    options.migration.batch_rows = 8;  // several batches per target: real frontiers
    options.hotness = {1.0, 2.0, 4.0, 1.0, 3.0};

    std::vector<double> freqs = {10, 10, 5};
    auto metrics = fleet.Run(queries_, freqs, options);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

    EXPECT_EQ(metrics->errors, 0u);
    EXPECT_EQ(metrics->tenants_migrated, kTenants);
    EXPECT_EQ(metrics->ops_applied, kTenants * schedule_->steps());
    EXPECT_LE(metrics->io_peak_outstanding, options.io_tokens);
    EXPECT_GT(metrics->queries, 0u);
    EXPECT_GT(metrics->writes, 0u);
    EXPECT_GT(metrics->plan_cache.hits, 0u);

    // Post-rollout, every shard serves every query on the object layout.
    for (size_t i = 0; i < fleet.size(); ++i) {
      TenantShard* shard = fleet.shard(i);
      EXPECT_TRUE(shard->done(*schedule_)) << "shard " << i;
      for (const WorkloadQuery& wq : queries_) {
        EXPECT_TRUE(RewriteQuery(wq.query, shard->CurrentSchema()).ok())
            << "shard " << i << " cannot serve " << wq.query.name << " post-migration";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, FleetStressTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "vectorized" : "row";
                         });

}  // namespace
}  // namespace pse
