// Concurrent multi-version serving under stress: N reader threads execute a
// mixed old/new-version query load through the Rewriter while the
// MigrationExecutor applies batched operators on another thread. Built for
// the ThreadSanitizer leg (scripts/check.sh --tsan) but meaningful under
// any sanitizer: every successful read must equal the serial oracle
// (the rewriter invariant says any valid intermediate schema answers
// identically), no reader may fail with anything but BindError, and the
// ServeDuringMigration harness must report clean metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <optional>
#include <random>
#include <shared_mutex>

#include "analysis/lockorder.h"
#include "common/lock_registry.h"
#include "common/thread_pool.h"
#include "core/mapping.h"
#include "core/migration_executor.h"
#include "core/rewriter.h"
#include "core/serving.h"
#include "engine/catalog_view.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tests/common/test_db_builder.h"

namespace pse {
namespace {

using testutil::Bookstore;
using testutil::SameRows;
using testutil::SortRows;

/// Clears the lock registry before a scenario; at scope end asserts a clean
/// lockdep report — zero recorded violations and an acyclic, rank-ordered
/// acquisition graph — plus that instrumentation actually observed latch
/// traffic. In a non-lockdep build the latch hooks compile out, so the
/// checks pass trivially; the check.sh --lockdep and --tsan legs build the
/// suite with PROGSCHEMA_LOCKDEP=ON, where they bite.
class LockdepCleanScope {
 public:
  LockdepCleanScope() { LockRegistry::Instance().ClearEvents(); }
  ~LockdepCleanScope() {
    LockOrderGraph g = LockRegistry::Instance().Snapshot();
    for (const LockViolation& v : g.violations) {
      ADD_FAILURE() << "lockdep violation: " << v.ToString();
    }
    DiagnosticReport report = AnalyzeLockOrder(g);
    EXPECT_TRUE(report.ok()) << report.ToString();
#ifdef PSE_LOCKDEP
    EXPECT_GT(g.acquisitions, 0u) << "lockdep build recorded no acquisitions";
#endif
    LockRegistry::Instance().ClearEvents();
  }
};

/// Rewrites + executes `query` on `schema` over `db` through the engine
/// `eo` selects. BindError (the query is not servable on this intermediate
/// schema) comes back as nullopt; any other failure sets `*hard_error`.
std::optional<std::vector<Row>> TryRun(Database* db, const LogicalQuery& query,
                                       const PhysicalSchema& schema, bool* hard_error,
                                       const ExecOptions& eo = ExecOptions{}) {
  Result<BoundQuery> bound = RewriteQuery(query, schema);
  if (!bound.ok()) {
    if (!bound.status().IsBindError()) *hard_error = true;
    return std::nullopt;
  }
  DatabaseCatalogView view(db);
  auto plan = PlanQuery(*bound, view);
  if (!plan.ok()) {
    *hard_error = true;
    return std::nullopt;
  }
  auto rows = ExecutePlan(**plan, db, eo);
  if (!rows.ok()) {
    *hard_error = true;
    return std::nullopt;
  }
  return SortRows(std::move(*rows));
}

/// Every scenario runs once per engine: param false = row iterators, true =
/// the vectorized batch engine (whose per-batch table latches must stay
/// clean under lockdep and TSAN while the migration latches the same
/// tables).
class ServingStressTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    data_ = bs_->MakeData(6, 9, 80);

    // Old-version queries over book x author and user; a new-version query
    // needing the not-yet-created b_abstract (unservable early on).
    LogicalQuery book;
    book.name = "old-book-author";
    book.anchor = bs_->book;
    book.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    book.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
    queries_.emplace_back(std::move(book), /*is_old=*/true);

    LogicalQuery user;
    user.name = "old-user";
    user.anchor = bs_->user;
    user.select.emplace_back(Col("u_name"), AggFunc::kNone, "n");
    user.select.emplace_back(Col("u_addr"), AggFunc::kNone, "ad");
    queries_.emplace_back(std::move(user), /*is_old=*/true);

    LogicalQuery abstract_q;
    abstract_q.name = "new-abstract";
    abstract_q.anchor = bs_->book;
    abstract_q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    abstract_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "ab");
    queries_.emplace_back(std::move(abstract_q), /*is_old=*/false);

    // Serial oracle: every query on the fully-migrated object schema.
    Database oracle_db(1024);
    ASSERT_TRUE(data_->Materialize(&oracle_db, bs_->object).ok());
    ASSERT_TRUE(oracle_db.AnalyzeAll().ok());
    for (const WorkloadQuery& wq : queries_) {
      bool hard = false;
      auto rows = TryRun(&oracle_db, wq.query, bs_->object, &hard);
      ASSERT_TRUE(rows.has_value() && !hard) << wq.query.name;
      oracle_.push_back(std::move(*rows));
    }

    auto opset = ComputeOperatorSet(bs_->source, bs_->object);
    ASSERT_TRUE(opset.ok()) << opset.status().ToString();
    opset_ = std::move(*opset);
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<LogicalDatabase> data_;
  std::vector<WorkloadQuery> queries_;
  std::vector<std::vector<Row>> oracle_;
  OperatorSet opset_;
};

TEST_P(ServingStressTest, ReadersMatchSerialOracleDuringMigration) {
  constexpr size_t kReaders = 4;
  LockdepCleanScope lockdep;
  ExecOptions eo;
  eo.vectorized = GetParam();

  Database db(1024);
  ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
  ASSERT_TRUE(db.AnalyzeAll().ok());
  PhysicalSchema current = bs_->source;
  ServingSchema serving(current);

  MigrationExecutor exec(&db, data_.get());
  MigrationOptions opts;
  opts.batch_rows = 8;  // many small batches -> many latch handoffs
  opts.on_publish = [&](const PhysicalSchema& s) { serving.Publish(s); };
  exec.set_options(std::move(opts));

  auto topo = opset_.TopologicalOrder();
  ASSERT_TRUE(topo.ok());

  std::atomic<bool> stop{false};
  Status migrate_status;
  // Per-lane tallies; gtest assertions are not thread-safe, so workers only
  // count and the main thread asserts after the join.
  struct Tally {
    uint64_t reads = 0, unservable = 0, mismatches = 0, hard_errors = 0;
  };
  std::vector<Tally> tallies(kReaders);

  ThreadPool pool(kReaders + 1);
  pool.ParallelFor(kReaders + 1, [&](size_t lane) {
    if (lane == kReaders) {  // migration lane
      for (int op : *topo) {
        auto io = exec.Apply(opset_.ops[static_cast<size_t>(op)], &current);
        if (!io.ok()) {
          migrate_status = io.status();
          break;
        }
      }
      stop.store(true, std::memory_order_release);
      return;
    }
    Tally& t = tallies[lane];
    std::mt19937_64 rng(1234 + lane);
    // Keep reading a little past the finish so post-migration reads are
    // exercised through the same path.
    while (!stop.load(std::memory_order_acquire) || t.reads + t.unservable < 8) {
      size_t q = rng() % queries_.size();
      std::shared_lock<SharedMutex> schema_lock(db.schema_latch());
      std::shared_ptr<const PhysicalSchema> snapshot = serving.Get();
      bool hard = false;
      auto rows = TryRun(&db, queries_[q].query, *snapshot, &hard, eo);
      if (hard) {
        ++t.hard_errors;
        continue;
      }
      if (!rows.has_value()) {
        ++t.unservable;
        continue;
      }
      ++t.reads;
      if (!SameRows(*rows, oracle_[q])) ++t.mismatches;
    }
  });

  ASSERT_TRUE(migrate_status.ok()) << migrate_status.ToString();
  uint64_t reads = 0;
  for (const Tally& t : tallies) {
    EXPECT_EQ(t.hard_errors, 0u);
    EXPECT_EQ(t.mismatches, 0u);
    reads += t.reads;
  }
  EXPECT_GT(reads, 0u);

  // The migrated database itself must now equal the oracle on every query.
  ASSERT_TRUE(db.AnalyzeAll().ok());
  for (size_t q = 0; q < queries_.size(); ++q) {
    bool hard = false;
    auto rows = TryRun(&db, queries_[q].query, current, &hard, eo);
    ASSERT_TRUE(rows.has_value() && !hard) << queries_[q].query.name;
    EXPECT_TRUE(SameRows(*rows, oracle_[q])) << queries_[q].query.name;
  }
}

TEST_P(ServingStressTest, ServeHarnessReportsCleanMetrics) {
  LockdepCleanScope lockdep;
  Database db(1024);
  ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
  ASSERT_TRUE(db.AnalyzeAll().ok());
  PhysicalSchema current = bs_->source;
  ServingSchema serving(current);

  MigrationExecutor exec(&db, data_.get());
  MigrationOptions opts;
  opts.batch_rows = 8;
  opts.on_publish = [&](const PhysicalSchema& s) { serving.Publish(s); };
  exec.set_options(std::move(opts));

  auto topo = opset_.TopologicalOrder();
  ASSERT_TRUE(topo.ok());

  ServeOptions serve;
  serve.sessions = 4;
  serve.min_queries_per_lane = 8;
  serve.vectorized = GetParam();
  std::vector<double> freqs = {10, 10, 5};
  auto metrics = ServeDuringMigration(&db, &serving, queries_, freqs, serve, [&]() -> Status {
    for (int op : *topo) {
      auto io = exec.Apply(opset_.ops[static_cast<size_t>(op)], &current);
      if (!io.ok()) return io.status();
    }
    return Status::OK();
  });
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->errors, 0u);
  EXPECT_GT(metrics->queries, 0u);
  EXPECT_GT(metrics->throughput_qps, 0.0);
  EXPECT_LE(metrics->p50_ms, metrics->p95_ms);
  EXPECT_LE(metrics->p95_ms, metrics->p99_ms);
}

TEST_P(ServingStressTest, WriterLanesStayCleanAcrossALiveMigration) {
  // The write half of the serve mix: lanes issue random DML from BOTH
  // application versions through the DmlRouter while the migration copies
  // and publishes underneath them (the router dual-applies whatever lands on
  // a live frontier). Unservable write windows — glossary DML before the
  // combine, by design — must drain into `unservable`, never `errors`, and
  // the whole scenario must leave lockdep clean.
  LockdepCleanScope lockdep;
  Database db(1024);
  ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
  ASSERT_TRUE(db.AnalyzeAll().ok());
  PhysicalSchema current = bs_->source;
  ServingSchema serving(current);
  DmlRouter router(&db);

  MigrationExecutor exec(&db, data_.get());
  MigrationOptions opts;
  opts.batch_rows = 8;
  opts.dml_router = &router;
  opts.on_publish = [&](const PhysicalSchema& s) { serving.Publish(s); };
  exec.set_options(std::move(opts));

  std::vector<VersionTable> tables = VersionTablesOf(bs_->source);
  {
    std::vector<VersionTable> object_tables = VersionTablesOf(bs_->object);
    tables.insert(tables.end(), object_tables.begin(), object_tables.end());
  }
  const LogicalSchema& lg = bs_->logical;
  auto make_write = [&tables, &lg](uint64_t i, std::mt19937_64& rng) {
    LogicalDml dml;
    dml.table = tables[rng() % tables.size()];
    uint64_t roll = rng() % 10;
    dml.kind = roll < 5 ? DmlKind::kInsert : roll < 8 ? DmlKind::kUpdate : DmlKind::kDelete;
    // Early writes hit seeded rows (both sides of a frontier); the tail of
    // each lane appends fresh keys.
    dml.key = static_cast<int64_t>(i < 8 ? rng() % 90 : 1000 + rng() % 500);
    if (dml.kind != DmlKind::kDelete) {
      for (AttrId a : dml.table.attrs) {
        if (rng() % 2 != 0) continue;
        dml.set_attrs.push_back(a);
        const LogicalAttribute& attr = lg.attr(a);
        if (attr.references.has_value() || attr.type == TypeId::kInt64) {
          dml.set_values.push_back(Value::Int(static_cast<int64_t>(rng() % 6)));
        } else if (attr.type == TypeId::kDouble) {
          dml.set_values.push_back(Value::Double(static_cast<double>(rng() % 100) / 4.0));
        } else {
          dml.set_values.push_back(Value::Varchar("w" + std::to_string(rng() % 1000)));
        }
      }
    }
    return dml;
  };

  auto topo = opset_.TopologicalOrder();
  ASSERT_TRUE(topo.ok());

  ServeOptions serve;
  serve.sessions = 4;
  serve.min_queries_per_lane = 12;
  serve.vectorized = GetParam();
  serve.router = &router;
  serve.write_fraction = 0.35;
  serve.make_write = make_write;
  std::vector<double> freqs = {10, 10, 5};
  auto metrics = ServeDuringMigration(&db, &serving, queries_, freqs, serve, [&]() -> Status {
    for (int op : *topo) {
      auto io = exec.Apply(opset_.ops[static_cast<size_t>(op)], &current);
      if (!io.ok()) return io.status();
    }
    return Status::OK();
  });
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->errors, 0u);
  EXPECT_GT(metrics->queries, 0u);
  EXPECT_GT(metrics->writes, 0u);
  EXPECT_LE(metrics->unservable_writes, metrics->unservable);
  EXPECT_GT(metrics->throughput_qps, 0.0);
  EXPECT_GT(router.stats().statements, 0u);
  EXPECT_FALSE(router.attached()) << "migration left the router attached";

  // Split integrity after the storm: whatever the writers did, the two
  // user-anchored fragments of the migrated schema (the executor names its
  // targets, so find them by anchor) must hold exactly the same key set —
  // the fan-out writes both fragments or neither.
  ASSERT_TRUE(db.AnalyzeAll().ok());
  std::vector<std::string> user_fragments;
  for (const PhysicalTable& t : current.tables()) {
    if (t.anchor == bs_->user) user_fragments.push_back(t.name);
  }
  ASSERT_EQ(user_fragments.size(), 2u);
  auto keys_of = [&](const std::string& table) {
    std::vector<Value> keys;
    for (const Row& r : testutil::TableRows(&db, table)) keys.push_back(r[0]);
    return keys;  // TableRows sorts; the anchor key is column 0
  };
  std::vector<Value> gen_keys = keys_of(user_fragments[0]);
  std::vector<Value> rest_keys = keys_of(user_fragments[1]);
  ASSERT_EQ(gen_keys.size(), rest_keys.size());
  for (size_t i = 0; i < gen_keys.size(); ++i) {
    EXPECT_EQ(gen_keys[i].Compare(rest_keys[i]), 0)
        << user_fragments[0] << "/" << user_fragments[1] << " key sets diverge at index " << i;
  }
  {
    std::shared_lock<SharedMutex> schema_lock(db.schema_latch());
    for (size_t i = 0; i < tables.size(); ++i) {
      LogicalDml probe;
      probe.kind = DmlKind::kInsert;
      probe.table = tables[i];
      probe.key = 20000 + static_cast<int64_t>(i);
      EXPECT_TRUE(router.Execute(probe, current).ok()) << tables[i].name;
    }
  }
}

TEST_P(ServingStressTest, WritersDoNotStarveBehindAReaderStream) {
  // Regression for the glibc shared_mutex starvation that motivated
  // common/rw_latch.h: a tight release/re-acquire reader loop must not keep
  // an exclusive acquisition (the migration's quiesce) waiting forever.
  LockdepCleanScope lockdep;
  Database db(256);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> exclusive_grants{0};
  ThreadPool pool(4);
  pool.ParallelFor(4, [&](size_t lane) {
    if (lane == 0) {
      for (int i = 0; i < 50; ++i) {
        std::unique_lock<SharedMutex> w(db.schema_latch());
        exclusive_grants.fetch_add(1, std::memory_order_relaxed);
      }
      stop.store(true, std::memory_order_release);
      return;
    }
    while (!stop.load(std::memory_order_acquire)) {
      std::shared_lock<SharedMutex> r(db.schema_latch());
    }
  });
  EXPECT_EQ(exclusive_grants.load(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Engines, ServingStressTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "vectorized" : "row";
                         });

}  // namespace
}  // namespace pse
