#include "engine/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "engine/executor.h"
#include "engine/planner.h"
#include "tests/engine/engine_test_util.h"

namespace pse {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testutil::MakeBookstore(/*pool_pages=*/8);  // tiny pool: real I/O
    ASSERT_NE(db_, nullptr);
    view_ = std::make_unique<DatabaseCatalogView>(db_.get());
    model_ = std::make_unique<CostModel>(view_.get());
  }

  CostEstimate MustEstimate(const BoundQuery& q) {
    auto plan = PlanQuery(q, *view_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto est = model_->Estimate(**plan);
    EXPECT_TRUE(est.ok()) << est.status().ToString();
    return *est;
  }

  /// Executes with a cold cache and returns physical page I/O.
  uint64_t MeasureIo(const BoundQuery& q) {
    auto plan = PlanQuery(q, *view_);
    EXPECT_TRUE(plan.ok());
    EXPECT_TRUE(db_->pool()->EvictAll().ok());
    db_->ResetIoStats();
    auto rows = ExecutePlan(**plan, db_.get());
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return db_->TotalIo();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<DatabaseCatalogView> view_;
  std::unique_ptr<CostModel> model_;
};

SelectItem Plain(const std::string& col, const std::string& name) {
  return SelectItem(Col(col), AggFunc::kNone, name);
}

TEST_F(CostModelTest, SeqScanCostEqualsPageCount) {
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"book_id"}));
  q.select_items.push_back(Plain("book.book_id", "id"));
  CostEstimate est = MustEstimate(q);
  auto t = db_->GetTable("book");
  EXPECT_EQ(est.io_pages, static_cast<double>((*t)->stats.page_count));
  EXPECT_EQ(est.rows, 100.0);
}

TEST_F(CostModelTest, EqualityFilterUsesNdv) {
  BoundQuery q;
  TableAccess t("book", {"book_id", "author_id"});
  t.filters.push_back(Eq("author_id", Value::Int(3)));
  q.tables.push_back(std::move(t));
  q.select_items.push_back(Plain("book.book_id", "id"));
  CostEstimate est = MustEstimate(q);
  EXPECT_NEAR(est.rows, 10.0, 0.5);  // 100 rows / 10 distinct authors
}

TEST_F(CostModelTest, IndexPointLookupCheaperThanScan) {
  BoundQuery scan_q;
  scan_q.tables.push_back(TableAccess("book", {"book_id"}));
  scan_q.select_items.push_back(Plain("book.book_id", "id"));

  BoundQuery point_q;
  TableAccess t("book", {"book_id"});
  t.filters.push_back(Eq("book_id", Value::Int(5)));
  point_q.tables.push_back(std::move(t));
  point_q.select_items.push_back(Plain("book.book_id", "id"));

  // The bookstore is small, so compare at the model level only: the point
  // lookup must not be costed above the full scan.
  EXPECT_LE(MustEstimate(point_q).io_pages, MustEstimate(scan_q).io_pages + 3.0);
  EXPECT_NEAR(MustEstimate(point_q).rows, 1.0, 0.1);
}

TEST_F(CostModelTest, JoinCardinalityFkPattern) {
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"book_id", "author_id"}));
  q.tables.push_back(TableAccess("author", {"author_id", "name"}));
  q.joins.push_back(EquiJoin{0, 1, "author_id", "author_id"});
  q.select_items.push_back(Plain("book.book_id", "id"));
  CostEstimate est = MustEstimate(q);
  // FK join: |book| x |author| / ndv(author_id) = 100*10/10 = 100.
  EXPECT_NEAR(est.rows, 100.0, 5.0);
}

TEST_F(CostModelTest, RangeSelectivityInterpolates) {
  BoundQuery q;
  TableAccess t("sale", {"sale_id"});
  t.filters.push_back(Cmp(CompareOp::kLt, Col("sale_id"), Const(Value::Int(150))));
  q.tables.push_back(std::move(t));
  q.select_items.push_back(Plain("sale.sale_id", "id"));
  CostEstimate est = MustEstimate(q);
  EXPECT_NEAR(est.rows, 150.0, 20.0);  // half the 0..299 domain
}

TEST_F(CostModelTest, GroupByCardinalityFromNdv) {
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"author_id", "price"}));
  q.group_by.push_back(Col("book.author_id"));
  q.select_items.push_back(Plain("book.author_id", "a"));
  q.select_items.emplace_back(Col("book.price"), AggFunc::kSum, "s");
  CostEstimate est = MustEstimate(q);
  EXPECT_NEAR(est.rows, 10.0, 1.0);
}

TEST_F(CostModelTest, ScalarAggregateIsOneRow) {
  BoundQuery q;
  q.tables.push_back(TableAccess("sale", {"qty"}));
  q.select_items.emplace_back(Col("sale.qty"), AggFunc::kSum, "s");
  EXPECT_EQ(MustEstimate(q).rows, 1.0);
}

TEST_F(CostModelTest, LimitScalesStreamingIo) {
  BoundQuery full;
  full.tables.push_back(TableAccess("sale", {"sale_id"}));
  full.select_items.push_back(Plain("sale.sale_id", "id"));
  BoundQuery limited = full.Clone();
  limited.limit = 3;
  EXPECT_LT(MustEstimate(limited).io_pages, MustEstimate(full).io_pages);
  EXPECT_EQ(MustEstimate(limited).rows, 3.0);
}

TEST_F(CostModelTest, LimitDoesNotScaleBlockingIo) {
  BoundQuery q;
  q.tables.push_back(TableAccess("sale", {"sale_id"}));
  q.select_items.push_back(Plain("sale.sale_id", "id"));
  q.order_by.push_back(OrderKey{0, true});
  BoundQuery limited = q.Clone();
  limited.limit = 3;
  EXPECT_EQ(MustEstimate(limited).io_pages, MustEstimate(q).io_pages);
}

TEST_F(CostModelTest, EstimateTracksActualIoOrdering) {
  // The estimator must rank plans the same way real execution does:
  // full 3-way join >= 2-way join >= single point lookup.
  BoundQuery join3;
  join3.tables.push_back(TableAccess("sale", {"sale_id", "book_id"}));
  join3.tables.push_back(TableAccess("book", {"book_id", "author_id"}));
  join3.tables.push_back(TableAccess("author", {"author_id", "name"}));
  join3.joins.push_back(EquiJoin{0, 1, "book_id", "book_id"});
  join3.joins.push_back(EquiJoin{1, 2, "author_id", "author_id"});
  join3.select_items.push_back(Plain("sale.sale_id", "id"));

  BoundQuery join2;
  join2.tables.push_back(TableAccess("book", {"book_id", "author_id"}));
  join2.tables.push_back(TableAccess("author", {"author_id", "name"}));
  join2.joins.push_back(EquiJoin{0, 1, "author_id", "author_id"});
  join2.select_items.push_back(Plain("book.book_id", "id"));

  BoundQuery point;
  TableAccess t("author", {"author_id", "name"});
  t.filters.push_back(Eq("author_id", Value::Int(2)));
  point.tables.push_back(std::move(t));
  point.select_items.push_back(Plain("author.name", "name"));

  double e3 = MustEstimate(join3).io_pages;
  double e2 = MustEstimate(join2).io_pages;
  double e1 = MustEstimate(point).io_pages;
  EXPECT_GE(e3, e2);
  // On these toy (single-page) tables an index descent legitimately costs a
  // few pages more than a scan; allow that fixed overhead.
  EXPECT_GE(e2 + 5.0, e1);

  uint64_t m3 = MeasureIo(join3);
  uint64_t m2 = MeasureIo(join2);
  uint64_t m1 = MeasureIo(point);
  EXPECT_GE(m3, m2);
  EXPECT_GE(m2 + 5, m1);
}

TEST_F(CostModelTest, TablePagesFallsBackToWidthMath) {
  TableStatistics stats;
  stats.row_count = 10000;
  stats.avg_tuple_width = 100;
  stats.page_count = 0;
  double pages = CostModel::TablePages(stats);
  EXPECT_NEAR(pages, std::ceil(1000000.0 / (8192.0 * 0.85)), 1.0);
  stats.page_count = 42;
  EXPECT_EQ(CostModel::TablePages(stats), 42.0);
}

TEST_F(CostModelTest, FilterSelectivityHelpers) {
  auto like = std::make_unique<LikeExpr>(Col("title"), "abc%");
  EXPECT_NEAR(model_->FilterSelectivity(*like, "book"), 0.05, 0.001);
  auto like_contains = std::make_unique<LikeExpr>(Col("title"), "%abc%");
  EXPECT_NEAR(model_->FilterSelectivity(*like_contains, "book"), 0.15, 0.001);
  auto eq = Eq("author_id", Value::Int(1));
  EXPECT_NEAR(model_->FilterSelectivity(*eq, "book"), 0.1, 0.01);  // 1/10 authors
}

}  // namespace
}  // namespace pse
