// Tests for the memoized query-cost cache: exact hit/miss accounting,
// collision resolution via stored canonical keys, epoch eviction, snapshot
// deltas, and a concurrent mixed-load stress (the TSAN leg's main target).
#include "engine/cost_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace pse {
namespace {

using Outcome = QueryCostCache::Outcome;

TEST(CostCacheTest, MissThenHit) {
  QueryCostCache cache;
  const std::string key = "q0|O1|s1|T0:1,2,;";
  uint64_t fp = QueryCostCache::Fingerprint(key);
  EXPECT_FALSE(cache.Lookup(fp, key).has_value());
  cache.Insert(fp, key, Outcome{42.5, false});
  auto hit = cache.Lookup(fp, key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->cost, 42.5);
  EXPECT_FALSE(hit->bind_error);
  CostCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.lookups(), 2u);
  EXPECT_DOUBLE_EQ(stats.hit_pct(), 50.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CostCacheTest, FingerprintCollisionsAreResolvedExactly) {
  QueryCostCache cache;
  // The fingerprint is caller-supplied, so a collision is easy to force:
  // two different canonical keys under one 64-bit hash.
  const uint64_t fp = 42;
  cache.Insert(fp, "alpha", Outcome{1.0, false});
  cache.Insert(fp, "beta", Outcome{2.0, false});
  EXPECT_EQ(cache.Snapshot().collisions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  auto a = cache.Lookup(fp, "alpha");
  auto b = cache.Lookup(fp, "beta");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(a->cost, 1.0);
  EXPECT_DOUBLE_EQ(b->cost, 2.0);
  // A third key sharing the fingerprint still misses (exact key compare).
  EXPECT_FALSE(cache.Lookup(fp, "gamma").has_value());
}

TEST(CostCacheTest, ReinsertingAnExistingKeyIsANoOp) {
  QueryCostCache cache;
  uint64_t fp = QueryCostCache::Fingerprint("k");
  cache.Insert(fp, "k", Outcome{7.0, false});
  cache.Insert(fp, "k", Outcome{9.0, false});  // outcomes are deterministic
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.Lookup(fp, "k")->cost, 7.0);
  EXPECT_EQ(cache.Snapshot().collisions, 0u);
}

TEST(CostCacheTest, BindErrorOutcomesRoundTrip) {
  QueryCostCache cache;
  uint64_t fp = QueryCostCache::Fingerprint("unservable");
  cache.Insert(fp, "unservable", Outcome{0.0, true});
  auto hit = cache.Lookup(fp, "unservable");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->bind_error);
}

TEST(CostCacheTest, EpochEvictionClearsWholesale) {
  QueryCostCache cache(/*max_entries=*/2);
  cache.Insert(QueryCostCache::Fingerprint("a"), "a", Outcome{1, false});
  cache.Insert(QueryCostCache::Fingerprint("b"), "b", Outcome{2, false});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Snapshot().evictions, 0u);
  cache.Insert(QueryCostCache::Fingerprint("c"), "c", Outcome{3, false});
  EXPECT_EQ(cache.size(), 1u);  // a and b were dropped in one epoch
  EXPECT_EQ(cache.Snapshot().evictions, 2u);
  EXPECT_FALSE(cache.Lookup(QueryCostCache::Fingerprint("a"), "a").has_value());
  EXPECT_TRUE(cache.Lookup(QueryCostCache::Fingerprint("c"), "c").has_value());
}

TEST(CostCacheTest, SnapshotDeltaIsolatesOneRun) {
  QueryCostCache cache;
  cache.Insert(QueryCostCache::Fingerprint("x"), "x", Outcome{1, false});
  (void)cache.Lookup(QueryCostCache::Fingerprint("x"), "x");
  CostCacheStats before = cache.Snapshot();
  (void)cache.Lookup(QueryCostCache::Fingerprint("x"), "x");
  (void)cache.Lookup(QueryCostCache::Fingerprint("y"), "y");
  CostCacheStats delta = cache.Snapshot() - before;
  EXPECT_EQ(delta.hits, 1u);
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(delta.evictions, 0u);
}

TEST(CostCacheTest, ToStringMentionsTheCounters) {
  QueryCostCache cache;
  (void)cache.Lookup(1, "k");
  std::string s = cache.Snapshot().ToString();
  EXPECT_NE(s.find("hits"), std::string::npos) << s;
  EXPECT_NE(s.find("collisions"), std::string::npos) << s;
}

TEST(CostCacheTest, FingerprintIsStableAndDiscriminating) {
  EXPECT_EQ(QueryCostCache::Fingerprint("abc"), QueryCostCache::Fingerprint("abc"));
  EXPECT_NE(QueryCostCache::Fingerprint("abc"), QueryCostCache::Fingerprint("abd"));
  EXPECT_NE(QueryCostCache::Fingerprint(""), QueryCostCache::Fingerprint("a"));
}

// Concurrent mixed load: many threads race lookups and inserts over an
// overlapping key population; every hit must return the key's one true
// outcome and the counters must stay consistent. Run under TSAN via
// scripts/check.sh --tsan.
TEST(CostCacheTest, ConcurrentMixedLoadKeepsExactOutcomes) {
  QueryCostCache cache;
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  std::atomic<int> wrong{0};
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &cache, &wrong]() {
      for (int i = 0; i < kIters; ++i) {
        int k = (t * 31 + i) % kKeys;
        std::string key = "key";
        key += std::to_string(k);
        uint64_t fp = QueryCostCache::Fingerprint(key);
        if (auto hit = cache.Lookup(fp, key)) {
          if (hit->cost != static_cast<double>(k)) wrong.fetch_add(1);
        } else {
          cache.Insert(fp, key, Outcome{static_cast<double>(k), false});
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_LE(cache.size(), static_cast<size_t>(kKeys));
  CostCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.lookups(), static_cast<uint64_t>(kThreads) * kIters);
  // Every key's outcome survived the race intact.
  for (int k = 0; k < kKeys; ++k) {
    std::string key = "key";
    key += std::to_string(k);
    auto hit = cache.Lookup(QueryCostCache::Fingerprint(key), key);
    ASSERT_TRUE(hit.has_value()) << key;
    EXPECT_DOUBLE_EQ(hit->cost, static_cast<double>(k));
  }
}

}  // namespace
}  // namespace pse
