// Differential testing: random single-table queries executed through the
// full parse->bind->plan->execute stack are checked against a naive
// reference evaluator applied directly to the raw rows. Catches planner/
// executor/expression bugs that hand-written cases miss.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "engine/catalog_view.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "sql/session.h"

namespace pse {
namespace {

struct RandomInstance {
  std::unique_ptr<Database> db;
  std::vector<Row> rows;  // ground truth copy
};

/// Builds a table t(id BIGINT, a BIGINT, b BIGINT, s VARCHAR) with random
/// data, including NULLs.
RandomInstance MakeInstance(Rng* rng, size_t num_rows) {
  RandomInstance inst;
  inst.db = std::make_unique<Database>(256);
  TableSchema schema("t",
                     {Column("id", TypeId::kInt64, 0, false), Column("a", TypeId::kInt64),
                      Column("b", TypeId::kInt64), Column("s", TypeId::kVarchar, 8)},
                     {"id"});
  EXPECT_TRUE(inst.db->CreateTable(schema).ok());
  for (size_t i = 0; i < num_rows; ++i) {
    Row row{Value::Int(static_cast<int64_t>(i)),
            rng->Bernoulli(0.1) ? Value::Null(TypeId::kInt64)
                                : Value::Int(rng->UniformInt(-20, 20)),
            rng->Bernoulli(0.1) ? Value::Null(TypeId::kInt64)
                                : Value::Int(rng->UniformInt(0, 5)),
            Value::Varchar(std::string(1, static_cast<char>('a' + rng->Index(4))))};
    EXPECT_TRUE(inst.db->Insert("t", row).ok());
    inst.rows.push_back(std::move(row));
  }
  EXPECT_TRUE(inst.db->AnalyzeAll().ok());
  return inst;
}

/// Random predicate over columns id/a/b/s. Depth-bounded.
ExprPtr RandomPredicate(Rng* rng, int depth = 0) {
  double roll = rng->UniformDouble();
  if (depth < 2 && roll < 0.3) {
    ExprPtr l = RandomPredicate(rng, depth + 1);
    ExprPtr r = RandomPredicate(rng, depth + 1);
    if (rng->Bernoulli(0.5)) return And(std::move(l), std::move(r));
    return std::make_unique<LogicExpr>(LogicOp::kOr, std::move(l), std::move(r));
  }
  if (roll < 0.4) {
    return std::make_unique<NotExpr>(RandomPredicate(rng, depth + 1));
  }
  if (roll < 0.5) {
    const char* cols[] = {"a", "b"};
    return std::make_unique<IsNullExpr>(Col(cols[rng->Index(2)]), rng->Bernoulli(0.5));
  }
  if (roll < 0.6) {
    return std::make_unique<LikeExpr>(Col("s"), rng->Bernoulli(0.5) ? "a%" : "%b%",
                                      rng->Bernoulli(0.3));
  }
  const char* cols[] = {"id", "a", "b"};
  CompareOp ops[] = {CompareOp::kEq,  CompareOp::kNe, CompareOp::kLt,
                     CompareOp::kLe,  CompareOp::kGt, CompareOp::kGe};
  return Cmp(ops[rng->Index(6)], Col(cols[rng->Index(3)]),
             Const(Value::Int(rng->UniformInt(-20, 20))));
}

std::vector<Row> SortRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    for (size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
      int c = x[i].Compare(y[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

class DifferentialProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialProperty, FilterQueriesMatchReference) {
  Rng rng(GetParam());
  RandomInstance inst = MakeInstance(&rng, 400);
  DatabaseCatalogView view(inst.db.get());

  for (int iter = 0; iter < 40; ++iter) {
    ExprPtr pred = RandomPredicate(&rng);

    // Engine path.
    BoundQuery q;
    TableAccess t("t", {"id", "a", "b", "s"});
    t.filters.push_back(pred->Clone());
    q.tables.push_back(std::move(t));
    q.select_items.emplace_back(Col("t.id"), AggFunc::kNone, "id");
    q.select_items.emplace_back(Col("t.a"), AggFunc::kNone, "a");
    auto plan = PlanQuery(q, view);
    ASSERT_TRUE(plan.ok()) << pred->ToString() << ": " << plan.status().ToString();
    auto got = ExecutePlan(**plan, inst.db.get());
    ASSERT_TRUE(got.ok()) << pred->ToString() << ": " << got.status().ToString();

    // Reference path: evaluate the predicate against the raw rows.
    ExprPtr ref = pred->Clone();
    ASSERT_TRUE(ref->Resolve([](const std::string& name) -> Result<size_t> {
                     if (name == "id") return 0;
                     if (name == "a") return 1;
                     if (name == "b") return 2;
                     if (name == "s") return 3;
                     return Status::BindError("?");
                   })
                    .ok());
    std::vector<Row> want;
    for (const auto& row : inst.rows) {
      auto pass = EvalPredicate(*ref, row);
      ASSERT_TRUE(pass.ok());
      if (*pass) want.push_back({row[0], row[1]});
    }

    std::vector<Row> got_sorted = SortRows(*got);
    std::vector<Row> want_sorted = SortRows(want);
    ASSERT_EQ(got_sorted.size(), want_sorted.size()) << pred->ToString();
    for (size_t i = 0; i < got_sorted.size(); ++i) {
      ASSERT_TRUE(RowEq()(got_sorted[i], want_sorted[i]))
          << pred->ToString() << ": " << RowToString(got_sorted[i]) << " vs "
          << RowToString(want_sorted[i]);
    }
  }
}

TEST_P(DifferentialProperty, AggregateQueriesMatchReference) {
  Rng rng(GetParam() * 31 + 7);
  RandomInstance inst = MakeInstance(&rng, 300);
  DatabaseCatalogView view(inst.db.get());

  for (int iter = 0; iter < 20; ++iter) {
    ExprPtr pred = RandomPredicate(&rng);

    // Engine: SELECT b, COUNT(*), SUM(a), MIN(a), MAX(a) GROUP BY b.
    BoundQuery q;
    TableAccess t("t", {"id", "a", "b", "s"});
    t.filters.push_back(pred->Clone());
    q.tables.push_back(std::move(t));
    q.group_by.push_back(Col("t.b"));
    q.select_items.emplace_back(Col("t.b"), AggFunc::kNone, "b");
    q.select_items.emplace_back(nullptr, AggFunc::kCountStar, "n");
    q.select_items.emplace_back(Col("t.a"), AggFunc::kSum, "sum_a");
    q.select_items.emplace_back(Col("t.a"), AggFunc::kMin, "min_a");
    q.select_items.emplace_back(Col("t.a"), AggFunc::kMax, "max_a");
    auto plan = PlanQuery(q, view);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto got = ExecutePlan(**plan, inst.db.get());
    ASSERT_TRUE(got.ok()) << got.status().ToString();

    // Reference.
    ExprPtr ref = pred->Clone();
    ASSERT_TRUE(ref->Resolve([](const std::string& name) -> Result<size_t> {
                     if (name == "id") return 0;
                     if (name == "a") return 1;
                     if (name == "b") return 2;
                     if (name == "s") return 3;
                     return Status::BindError("?");
                   })
                    .ok());
    struct Agg {
      int64_t count = 0;
      int64_t sum = 0;
      bool has = false;
      int64_t min = 0, max = 0;
    };
    std::map<std::string, Agg> groups;  // key = b's display (handles NULL)
    std::map<std::string, Value> key_of;
    for (const auto& row : inst.rows) {
      auto pass = EvalPredicate(*ref, row);
      ASSERT_TRUE(pass.ok());
      if (!*pass) continue;
      std::string key = row[2].ToString();
      key_of.emplace(key, row[2]);
      Agg& agg = groups[key];
      ++agg.count;
      if (!row[1].is_null()) {
        int64_t v = row[1].AsInt();
        agg.sum += v;
        if (!agg.has || v < agg.min) agg.min = v;
        if (!agg.has || v > agg.max) agg.max = v;
        agg.has = true;
      }
    }
    ASSERT_EQ(got->size(), groups.size()) << pred->ToString();
    for (const auto& row : *got) {
      std::string key = row[0].ToString();
      auto it = groups.find(key);
      ASSERT_NE(it, groups.end()) << pred->ToString() << " group " << key;
      const Agg& agg = it->second;
      EXPECT_EQ(row[1].AsInt(), agg.count) << key;
      if (agg.has) {
        EXPECT_EQ(row[2].AsInt(), agg.sum) << key;
        EXPECT_EQ(row[3].AsInt(), agg.min) << key;
        EXPECT_EQ(row[4].AsInt(), agg.max) << key;
      } else {
        EXPECT_TRUE(row[2].is_null()) << key;
        EXPECT_TRUE(row[3].is_null()) << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialProperty, ::testing::Values(1, 17, 23, 99));

}  // namespace
}  // namespace pse
