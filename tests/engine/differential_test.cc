// Differential testing: random single-table queries executed through the
// full parse->bind->plan->execute stack are checked against a naive
// reference evaluator applied directly to the raw rows. Catches planner/
// executor/expression bugs that hand-written cases miss.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/logical_database.h"
#include "core/mapping.h"
#include "core/migration_executor.h"
#include "core/migration_planner.h"
#include "core/rewriter.h"
#include "engine/catalog_view.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "fleet/schedule.h"
#include "fleet/tenant_shard.h"
#include "sql/session.h"
#include "tests/common/test_db_builder.h"
#include "tpcw/datagen.h"
#include "tpcw/queries.h"
#include "tpcw/schema.h"
#include "tpcw/workloads.h"

namespace pse {
namespace {

using testutil::MakeInstance;
using testutil::RandomInstance;
using testutil::SameRows;
using testutil::SortRows;

/// Random predicate over columns id/a/b/s. Depth-bounded.
ExprPtr RandomPredicate(Rng* rng, int depth = 0) {
  double roll = rng->UniformDouble();
  if (depth < 2 && roll < 0.3) {
    ExprPtr l = RandomPredicate(rng, depth + 1);
    ExprPtr r = RandomPredicate(rng, depth + 1);
    if (rng->Bernoulli(0.5)) return And(std::move(l), std::move(r));
    return std::make_unique<LogicExpr>(LogicOp::kOr, std::move(l), std::move(r));
  }
  if (roll < 0.4) {
    return std::make_unique<NotExpr>(RandomPredicate(rng, depth + 1));
  }
  if (roll < 0.5) {
    const char* cols[] = {"a", "b"};
    return std::make_unique<IsNullExpr>(Col(cols[rng->Index(2)]), rng->Bernoulli(0.5));
  }
  if (roll < 0.6) {
    return std::make_unique<LikeExpr>(Col("s"), rng->Bernoulli(0.5) ? "a%" : "%b%",
                                      rng->Bernoulli(0.3));
  }
  const char* cols[] = {"id", "a", "b"};
  CompareOp ops[] = {CompareOp::kEq,  CompareOp::kNe, CompareOp::kLt,
                     CompareOp::kLe,  CompareOp::kGt, CompareOp::kGe};
  return Cmp(ops[rng->Index(6)], Col(cols[rng->Index(3)]),
             Const(Value::Int(rng->UniformInt(-20, 20))));
}

class DifferentialProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialProperty, FilterQueriesMatchReference) {
  Rng rng(GetParam());
  RandomInstance inst = MakeInstance(&rng, 400);
  DatabaseCatalogView view(inst.db.get());

  for (int iter = 0; iter < 40; ++iter) {
    ExprPtr pred = RandomPredicate(&rng);

    // Engine path.
    BoundQuery q;
    TableAccess t("t", {"id", "a", "b", "s"});
    t.filters.push_back(pred->Clone());
    q.tables.push_back(std::move(t));
    q.select_items.emplace_back(Col("t.id"), AggFunc::kNone, "id");
    q.select_items.emplace_back(Col("t.a"), AggFunc::kNone, "a");
    auto plan = PlanQuery(q, view);
    ASSERT_TRUE(plan.ok()) << pred->ToString() << ": " << plan.status().ToString();
    auto got = ExecutePlan(**plan, inst.db.get());
    ASSERT_TRUE(got.ok()) << pred->ToString() << ": " << got.status().ToString();

    // Reference path: evaluate the predicate against the raw rows.
    ExprPtr ref = pred->Clone();
    ASSERT_TRUE(ref->Resolve([](const std::string& name) -> Result<size_t> {
                     if (name == "id") return 0;
                     if (name == "a") return 1;
                     if (name == "b") return 2;
                     if (name == "s") return 3;
                     return Status::BindError("?");
                   })
                    .ok());
    std::vector<Row> want;
    for (const auto& row : inst.rows) {
      auto pass = EvalPredicate(*ref, row);
      ASSERT_TRUE(pass.ok());
      if (*pass) want.push_back({row[0], row[1]});
    }

    std::vector<Row> got_sorted = SortRows(*got);
    std::vector<Row> want_sorted = SortRows(want);
    ASSERT_EQ(got_sorted.size(), want_sorted.size()) << pred->ToString();
    for (size_t i = 0; i < got_sorted.size(); ++i) {
      ASSERT_TRUE(RowEq()(got_sorted[i], want_sorted[i]))
          << pred->ToString() << ": " << RowToString(got_sorted[i]) << " vs "
          << RowToString(want_sorted[i]);
    }
  }
}

TEST_P(DifferentialProperty, AggregateQueriesMatchReference) {
  Rng rng(GetParam() * 31 + 7);
  RandomInstance inst = MakeInstance(&rng, 300);
  DatabaseCatalogView view(inst.db.get());

  for (int iter = 0; iter < 20; ++iter) {
    ExprPtr pred = RandomPredicate(&rng);

    // Engine: SELECT b, COUNT(*), SUM(a), MIN(a), MAX(a) GROUP BY b.
    BoundQuery q;
    TableAccess t("t", {"id", "a", "b", "s"});
    t.filters.push_back(pred->Clone());
    q.tables.push_back(std::move(t));
    q.group_by.push_back(Col("t.b"));
    q.select_items.emplace_back(Col("t.b"), AggFunc::kNone, "b");
    q.select_items.emplace_back(nullptr, AggFunc::kCountStar, "n");
    q.select_items.emplace_back(Col("t.a"), AggFunc::kSum, "sum_a");
    q.select_items.emplace_back(Col("t.a"), AggFunc::kMin, "min_a");
    q.select_items.emplace_back(Col("t.a"), AggFunc::kMax, "max_a");
    auto plan = PlanQuery(q, view);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto got = ExecutePlan(**plan, inst.db.get());
    ASSERT_TRUE(got.ok()) << got.status().ToString();

    // Reference.
    ExprPtr ref = pred->Clone();
    ASSERT_TRUE(ref->Resolve([](const std::string& name) -> Result<size_t> {
                     if (name == "id") return 0;
                     if (name == "a") return 1;
                     if (name == "b") return 2;
                     if (name == "s") return 3;
                     return Status::BindError("?");
                   })
                    .ok());
    struct Agg {
      int64_t count = 0;
      int64_t sum = 0;
      bool has = false;
      int64_t min = 0, max = 0;
    };
    std::map<std::string, Agg> groups;  // key = b's display (handles NULL)
    std::map<std::string, Value> key_of;
    for (const auto& row : inst.rows) {
      auto pass = EvalPredicate(*ref, row);
      ASSERT_TRUE(pass.ok());
      if (!*pass) continue;
      std::string key = row[2].ToString();
      key_of.emplace(key, row[2]);
      Agg& agg = groups[key];
      ++agg.count;
      if (!row[1].is_null()) {
        int64_t v = row[1].AsInt();
        agg.sum += v;
        if (!agg.has || v < agg.min) agg.min = v;
        if (!agg.has || v > agg.max) agg.max = v;
        agg.has = true;
      }
    }
    ASSERT_EQ(got->size(), groups.size()) << pred->ToString();
    for (const auto& row : *got) {
      std::string key = row[0].ToString();
      auto it = groups.find(key);
      ASSERT_NE(it, groups.end()) << pred->ToString() << " group " << key;
      const Agg& agg = it->second;
      EXPECT_EQ(row[1].AsInt(), agg.count) << key;
      if (agg.has) {
        EXPECT_EQ(row[2].AsInt(), agg.sum) << key;
        EXPECT_EQ(row[3].AsInt(), agg.min) << key;
        EXPECT_EQ(row[4].AsInt(), agg.max) << key;
      } else {
        EXPECT_TRUE(row[2].is_null()) << key;
        EXPECT_TRUE(row[3].is_null()) << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialProperty, ::testing::Values(1, 17, 23, 99));

// --- cross-schema differential oracle ---
//
// The rewriter's correctness invariant (core/rewriter.h) says a query
// answers identically on every valid intermediate schema. This test checks
// it end to end on the paper's own trajectory: ground truth is the full
// TPC-W workload executed on the fully-migrated object schema; then the
// Fig-7-style LAA trajectory is replayed operator by operator with the
// MigrationExecutor, and after every single operator each servable query is
// rewritten onto the current intermediate schema, executed, and compared
// row for row.

/// Rewrites + executes `query` on `schema` over `db` through BOTH engines
/// (row iterators and the vectorized batch engine), asserting they agree row
/// for row before returning the result; unservable (BindError) comes back as
/// std::nullopt, any other failure is a test failure.
std::optional<std::vector<Row>> RunOnSchema(Database* db, const LogicalQuery& query,
                                            const PhysicalSchema& schema) {
  Result<BoundQuery> bound = RewriteQuery(query, schema);
  if (!bound.ok()) {
    EXPECT_TRUE(bound.status().IsBindError())
        << query.name << ": " << bound.status().ToString();
    return std::nullopt;
  }
  DatabaseCatalogView view(db);
  auto plan = PlanQuery(*bound, view);
  EXPECT_TRUE(plan.ok()) << query.name << ": " << plan.status().ToString();
  if (!plan.ok()) return std::nullopt;
  ExecOptions row_engine;
  row_engine.vectorized = false;
  auto rows = ExecutePlan(**plan, db, row_engine);
  EXPECT_TRUE(rows.ok()) << query.name << ": " << rows.status().ToString();
  if (!rows.ok()) return std::nullopt;
  ExecOptions vec_engine;
  vec_engine.vectorized = true;
  auto vec_rows = ExecutePlan(**plan, db, vec_engine);
  EXPECT_TRUE(vec_rows.ok()) << query.name << " (vectorized): "
                             << vec_rows.status().ToString();
  if (!vec_rows.ok()) return std::nullopt;
  std::vector<Row> sorted = SortRows(std::move(*rows));
  std::vector<Row> vec_sorted = SortRows(std::move(*vec_rows));
  EXPECT_TRUE(SameRows(sorted, vec_sorted))
      << query.name << ": vectorized engine diverges from the row engine ("
      << vec_sorted.size() << " vs " << sorted.size() << " rows)";
  return sorted;
}

TEST(CrossSchemaOracle, TpcwWorkloadRowEqualOnEveryLaaIntermediate) {
  std::unique_ptr<TpcwSchema> schema = BuildTpcwSchema();
  auto queries = BuildTpcwWorkload(*schema);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  std::vector<std::vector<double>> phase_freqs = Fig9IrregularFrequencies();
  std::unique_ptr<LogicalDatabase> data = GenerateTpcwData(*schema, ScaleTiny());
  std::vector<LogicalStats> phase_stats = {data->ComputeStats()};

  // Ground truth: every query on the fully-migrated object schema.
  std::vector<std::vector<Row>> oracle(queries->size());
  {
    Database db(4096);
    ASSERT_TRUE(data->Materialize(&db, schema->object).ok());
    ASSERT_TRUE(db.AnalyzeAll().ok());
    for (size_t q = 0; q < queries->size(); ++q) {
      auto rows = RunOnSchema(&db, (*queries)[q].query, schema->object);
      ASSERT_TRUE(rows.has_value()) << "query " << (*queries)[q].query.name
                                    << " must be servable on the object schema";
      oracle[q] = std::move(*rows);
    }
  }

  auto opset = ComputeOperatorSet(schema->source, schema->object);
  ASSERT_TRUE(opset.ok()) << opset.status().ToString();

  Database db(4096);
  ASSERT_TRUE(data->Materialize(&db, schema->source).ok());
  ASSERT_TRUE(db.AnalyzeAll().ok());
  PhysicalSchema current = schema->source;
  MigrationExecutor exec(&db, data.get());

  MigrationContext ctx;
  ctx.object = &schema->object;
  ctx.opset = &*opset;
  ctx.applied.assign(opset->size(), false);
  ctx.phase_freqs = &phase_freqs;
  ctx.phase_stats = &phase_stats;
  ctx.queries = &*queries;

  size_t intermediates = 0;
  auto check_all = [&](const std::string& where) {
    for (size_t q = 0; q < queries->size(); ++q) {
      auto rows = RunOnSchema(&db, (*queries)[q].query, current);
      if (!rows.has_value()) continue;  // unservable here: allowed
      EXPECT_TRUE(SameRows(*rows, oracle[q]))
          << (*queries)[q].query.name << " diverges from the object-schema oracle "
          << where << " (" << rows->size() << " vs " << oracle[q].size() << " rows)";
    }
    ++intermediates;
  };

  check_all("on the source schema");
  for (size_t p = 0; p < phase_freqs.size(); ++p) {
    ctx.current = &current;
    auto laa = SelectOpsLaa(ctx, p);
    ASSERT_TRUE(laa.ok()) << laa.status().ToString();
    for (int op : laa->ops_to_apply) {
      auto io = exec.Apply(opset->ops[static_cast<size_t>(op)], &current);
      ASSERT_TRUE(io.ok()) << "op#" << opset->ops[static_cast<size_t>(op)].id << ": "
                           << io.status().ToString();
      ctx.applied[static_cast<size_t>(op)] = true;
      ASSERT_TRUE(db.AnalyzeAll().ok());
      check_all("after op#" + std::to_string(opset->ops[static_cast<size_t>(op)].id));
    }
  }

  // Final migration: ops LAA never found cost-beneficial are applied at the
  // end of the last phase (what MigrationSimulation does), still checking
  // every intermediate.
  auto topo = opset->TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  for (int op : *topo) {
    if (ctx.applied[static_cast<size_t>(op)]) continue;
    auto io = exec.Apply(opset->ops[static_cast<size_t>(op)], &current);
    ASSERT_TRUE(io.ok()) << io.status().ToString();
    ctx.applied[static_cast<size_t>(op)] = true;
    ASSERT_TRUE(db.AnalyzeAll().ok());
    check_all("after final-migration op#" + std::to_string(opset->ops[static_cast<size_t>(op)].id));
  }

  // The trajectory must have moved through several distinct intermediates.
  EXPECT_GT(intermediates, 2u);
  for (size_t q = 0; q < queries->size(); ++q) {
    EXPECT_TRUE(RewriteQuery((*queries)[q].query, current).ok())
        << (*queries)[q].query.name << " must be servable once migration completes";
  }
}

// --- mixed read/write differential oracle ---
//
// The write-side extension of the invariant above: random DML from BOTH
// application versions flows through the DmlRouter on every LAA
// intermediate — including mid-copy, on both sides of a live frontier — and
// is mirrored on the entity-level LogicalDatabase. After every burst the
// physical tables must equal a fresh materialization of the mirror, and
// every servable read (executed through BOTH engines) must equal the same
// query answered on the fully-migrated object schema built from the mirror.

TEST(MixedRwCrossSchemaOracle, DmlFromBothVersionsAgreesOnEveryLaaIntermediate) {
  auto bs = testutil::Bookstore::Make();
  const LogicalSchema& lg = bs->logical;
  // The mirror doubles as the executor's entity source (kCreateTable rows),
  // which is exactly the shared-truth semantics: rows written before the
  // create op must appear in the created fragment too. DML therefore pauses
  // while an entity-sourced copy is in flight (the row vector must not move
  // under the scan); scan/join-sourced ops take live writes every batch.
  auto mirror = bs->MakeData(5, 4, 40);

  std::vector<VersionTable> tables = VersionTablesOf(bs->source);
  {
    std::vector<VersionTable> object_tables = VersionTablesOf(bs->object);
    tables.insert(tables.end(), object_tables.begin(), object_tables.end());
  }

  // Read workload: one query per version era (the new one needs b_abstract,
  // unservable until its create op lands), reused as the LAA's predicted
  // workload.
  std::vector<WorkloadQuery> queries;
  {
    LogicalQuery book;
    book.name = "old-book-author";
    book.anchor = bs->book;
    book.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    book.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
    queries.emplace_back(std::move(book), /*is_old=*/true);
    LogicalQuery user;
    user.name = "old-user";
    user.anchor = bs->user;
    user.select.emplace_back(Col("u_name"), AggFunc::kNone, "n");
    user.select.emplace_back(Col("u_addr"), AggFunc::kNone, "ad");
    queries.emplace_back(std::move(user), /*is_old=*/true);
    LogicalQuery abstract_q;
    abstract_q.name = "new-abstract";
    abstract_q.anchor = bs->book;
    abstract_q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    abstract_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "ab");
    queries.emplace_back(std::move(abstract_q), /*is_old=*/false);
  }

  Database db(4096);
  ASSERT_TRUE(mirror->Materialize(&db, bs->source).ok());
  ASSERT_TRUE(db.AnalyzeAll().ok());
  PhysicalSchema current = bs->source;
  DmlRouter router(&db);
  Rng rng(20260808);

  // The workload keeps the instance COVERING (every FK names a live author):
  // FKs always reference a seed author, INSERTs must provide them, and
  // author rows are never deleted. Reads rewrite parent joins as inner
  // joins, so the join layout and the denormalized layout only answer alike
  // on covering data — the uncovered cases (dangling/NULL FK) are state-
  // checked by the RewriteDmlOracle suite instead.
  auto random_statement = [&]() {
    const VersionTable& vt = tables[rng.Index(tables.size())];
    LogicalDml dml;
    double roll = rng.UniformDouble();
    dml.kind = roll < 0.5 ? DmlKind::kInsert : roll < 0.8 ? DmlKind::kUpdate : DmlKind::kDelete;
    if (dml.kind == DmlKind::kDelete && vt.anchor == bs->author) dml.kind = DmlKind::kUpdate;
    dml.table = vt;
    // Keys straddle the MakeData ranges so hits, misses, and rows on both
    // sides of a mid-copy frontier all occur.
    dml.key = rng.UniformInt(0, 45);
    if (dml.kind != DmlKind::kDelete) {
      for (AttrId a : vt.attrs) {
        const LogicalAttribute& attr = lg.attr(a);
        if (attr.references.has_value()) {
          if (dml.kind == DmlKind::kInsert || rng.Bernoulli(0.6)) {
            dml.set_attrs.push_back(a);
            dml.set_values.push_back(Value::Int(rng.UniformInt(0, 4)));
          }
          continue;
        }
        if (!rng.Bernoulli(0.6)) continue;
        dml.set_attrs.push_back(a);
        if (attr.type == TypeId::kInt64) {
          dml.set_values.push_back(Value::Int(rng.UniformInt(-5, 40)));
        } else if (attr.type == TypeId::kDouble) {
          dml.set_values.push_back(Value::Double(static_cast<double>(rng.UniformInt(0, 99)) / 4.0));
        } else {
          dml.set_values.push_back(Value::Varchar("w" + std::to_string(rng.UniformInt(0, 999))));
        }
      }
    }
    return dml;
  };

  uint64_t applied_writes = 0;
  auto write_one = [&]() -> Status {
    LogicalDml dml = random_statement();
    Status s = router.Execute(dml, current);
    if (s.IsBindError()) return Status::OK();  // unservable here: skipped
    if (!s.ok()) return s;
    testutil::MirrorApply(mirror.get(), dml);
    ++applied_writes;
    return Status::OK();
  };

  size_t checked_intermediates = 0;
  auto check_all = [&](const std::string& where) {
    ++checked_intermediates;
    ASSERT_TRUE(db.AnalyzeAll().ok());
    testutil::ExpectStateMatchesMirror(&db, *mirror, current, where);
    // Read side: the object-schema answer from the mirror is the oracle.
    Database scratch(4096);
    ASSERT_TRUE(mirror->Materialize(&scratch, bs->object).ok());
    ASSERT_TRUE(scratch.AnalyzeAll().ok());
    for (const WorkloadQuery& wq : queries) {
      auto want = RunOnSchema(&scratch, wq.query, bs->object);
      ASSERT_TRUE(want.has_value()) << wq.query.name << " " << where;
      auto got = RunOnSchema(&db, wq.query, current);
      if (!got.has_value()) continue;  // unservable on this intermediate
      EXPECT_TRUE(SameRows(*got, *want))
          << wq.query.name << " diverges from the mirror oracle " << where << " ("
          << got->size() << " vs " << want->size() << " rows)";
    }
  };

  auto opset = ComputeOperatorSet(bs->source, bs->object);
  ASSERT_TRUE(opset.ok()) << opset.status().ToString();
  MigrationExecutor exec(&db, mirror.get());

  auto apply_with_live_writes = [&](const MigrationOperator& op) {
    MigrationOptions opts;
    opts.batch_rows = 8;  // several batches per target: a real frontier
    opts.dml_router = &router;
    // Entity-sourced creates read the mirror's row vectors directly; live
    // statements would mutate them mid-scan. Scan/join ops write every batch.
    if (op.kind != OperatorKind::kCreateTable) {
      opts.on_batch = [&](const MigrationBatchEvent&) -> Status {
        PSE_RETURN_NOT_OK(write_one());
        return write_one();
      };
    }
    exec.set_options(std::move(opts));
    auto io = exec.Apply(op, &current);
    ASSERT_TRUE(io.ok()) << "op#" << op.id << ": " << io.status().ToString();
    ASSERT_FALSE(router.attached()) << "op#" << op.id << " left the router attached";
  };

  std::vector<std::vector<double>> phase_freqs = {{10, 10, 5}};
  std::vector<LogicalStats> phase_stats = {mirror->ComputeStats()};
  MigrationContext ctx;
  ctx.object = &bs->object;
  ctx.opset = &*opset;
  ctx.applied.assign(opset->size(), false);
  ctx.phase_freqs = &phase_freqs;
  ctx.phase_stats = &phase_stats;
  ctx.queries = &queries;

  // Burst on the source schema first, then after every operator the LAA
  // trajectory publishes (cost-picked ops first, the remainder in topo
  // order — the same walk MigrationSimulation takes).
  for (int i = 0; i < 25; ++i) ASSERT_TRUE(write_one().ok());
  check_all("on the source schema");

  auto run_op = [&](int op) {
    apply_with_live_writes(opset->ops[static_cast<size_t>(op)]);
    ctx.applied[static_cast<size_t>(op)] = true;
    for (int i = 0; i < 15; ++i) ASSERT_TRUE(write_one().ok());
    check_all("after op#" + std::to_string(opset->ops[static_cast<size_t>(op)].id));
  };
  ctx.current = &current;
  auto laa = SelectOpsLaa(ctx, 0);
  ASSERT_TRUE(laa.ok()) << laa.status().ToString();
  for (int op : laa->ops_to_apply) run_op(op);
  auto topo = opset->TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  for (int op : *topo) {
    if (!ctx.applied[static_cast<size_t>(op)]) run_op(op);
  }

  EXPECT_GT(checked_intermediates, 2u);
  EXPECT_GT(applied_writes, 0u);
  EXPECT_GT(router.stats().dual_applied, 0u) << "no write ever landed on a live frontier";
  // Post-migration, every version table of both eras must accept writes.
  for (const VersionTable& vt : tables) {
    LogicalDml probe;
    probe.kind = DmlKind::kInsert;
    probe.table = vt;
    probe.key = 9000 + static_cast<int64_t>(&vt - tables.data());
    EXPECT_TRUE(router.Execute(probe, current).ok()) << vt.name;
    testutil::MirrorApply(mirror.get(), probe);
  }
  testutil::ExpectStateMatchesMirror(&db, *mirror, current, "after the post-migration probes");
}

// --- multi-tenant mixed R/W differential oracle ---
//
// The fleet-wide extension: three tenant shards with distinct data walk the
// SAME FleetSchedule but stop at DIFFERENT positions, with random DML from
// both application versions flowing through every shard's own DmlRouter
// between operators. Each tenant must keep matching its OWN single-tenant
// oracle (its entity-level mirror materialized fresh), proving tenants are
// truly shared-nothing: a neighbor's writes, provenance, or trajectory
// position never bleed into another shard's answers.

TEST(FleetDifferentialOracle, TenantsAtDifferentStepsEachMatchTheirOwnOracle) {
  auto bs = testutil::Bookstore::Make();
  const LogicalSchema& lg = bs->logical;
  auto schedule = PlanFleetSchedule(bs->source, bs->object);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  const size_t steps = schedule->steps();
  ASSERT_GE(steps, 3u) << "the bookstore trajectory must have several steps";
  // Tenant 0 barely starts, tenant 1 parks mid-trajectory, tenant 2
  // finishes — three different serving schemas under one schedule.
  const size_t positions[3] = {1, 2, steps};

  std::vector<VersionTable> tables = VersionTablesOf(bs->source);
  {
    std::vector<VersionTable> object_tables = VersionTablesOf(bs->object);
    tables.insert(tables.end(), object_tables.begin(), object_tables.end());
  }

  std::vector<WorkloadQuery> queries;
  {
    LogicalQuery book;
    book.name = "old-book-author";
    book.anchor = bs->book;
    book.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    book.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
    queries.emplace_back(std::move(book), /*is_old=*/true);
    LogicalQuery user;
    user.name = "old-user";
    user.anchor = bs->user;
    user.select.emplace_back(Col("u_name"), AggFunc::kNone, "n");
    user.select.emplace_back(Col("u_addr"), AggFunc::kNone, "ad");
    queries.emplace_back(std::move(user), /*is_old=*/true);
    LogicalQuery abstract_q;
    abstract_q.name = "new-abstract";
    abstract_q.anchor = bs->book;
    abstract_q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    abstract_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "ab");
    queries.emplace_back(std::move(abstract_q), /*is_old=*/false);
  }

  // Per-tenant mirror + shard. The mirror doubles as the shard's entity
  // source (the MixedRwCrossSchemaOracle shared-truth semantics); writes
  // happen only between operators here, so entity-sourced creates never
  // scan a mirror mid-mutation.
  std::unique_ptr<LogicalDatabase> mirrors[3];
  std::unique_ptr<TenantShard> shards[3];
  for (size_t t = 0; t < 3; ++t) {
    mirrors[t] = bs->MakeData(4 + static_cast<int>(t), 3, 25 + 5 * static_cast<int>(t));
    auto shard = TenantShard::Create(t, bs->source, mirrors[t].get());
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    shards[t] = std::move(*shard);
  }

  Rng rng(20260808);
  // Covering-data discipline as in MixedRwCrossSchemaOracle: FKs always
  // reference a seed author (every tenant has >= 4), authors never deleted.
  auto random_statement = [&]() {
    const VersionTable& vt = tables[rng.Index(tables.size())];
    LogicalDml dml;
    double roll = rng.UniformDouble();
    dml.kind = roll < 0.5 ? DmlKind::kInsert : roll < 0.8 ? DmlKind::kUpdate : DmlKind::kDelete;
    if (dml.kind == DmlKind::kDelete && vt.anchor == bs->author) dml.kind = DmlKind::kUpdate;
    dml.table = vt;
    dml.key = rng.UniformInt(0, 40);
    if (dml.kind != DmlKind::kDelete) {
      for (AttrId a : vt.attrs) {
        const LogicalAttribute& attr = lg.attr(a);
        if (attr.references.has_value()) {
          if (dml.kind == DmlKind::kInsert || rng.Bernoulli(0.6)) {
            dml.set_attrs.push_back(a);
            dml.set_values.push_back(Value::Int(rng.UniformInt(0, 3)));
          }
          continue;
        }
        if (!rng.Bernoulli(0.6)) continue;
        dml.set_attrs.push_back(a);
        if (attr.type == TypeId::kInt64) {
          dml.set_values.push_back(Value::Int(rng.UniformInt(-5, 40)));
        } else if (attr.type == TypeId::kDouble) {
          dml.set_values.push_back(Value::Double(static_cast<double>(rng.UniformInt(0, 99)) / 4.0));
        } else {
          dml.set_values.push_back(Value::Varchar("w" + std::to_string(rng.UniformInt(0, 999))));
        }
      }
    }
    return dml;
  };

  uint64_t applied_writes = 0;
  auto write_one = [&](size_t t) -> Status {
    LogicalDml dml = random_statement();
    Status s = shards[t]->router()->Execute(dml, shards[t]->CurrentSchema());
    if (s.IsBindError()) return Status::OK();  // unservable on this tenant's step
    if (!s.ok()) return s;
    testutil::MirrorApply(mirrors[t].get(), dml);
    ++applied_writes;
    return Status::OK();
  };

  // Each tenant's oracle is its OWN mirror: physical state must equal a
  // fresh materialization, and every servable read must equal the same
  // query answered on the object schema built from that mirror alone.
  auto check_tenant = [&](size_t t, const std::string& where) {
    ASSERT_TRUE(shards[t]->db()->AnalyzeAll().ok());
    PhysicalSchema current = shards[t]->CurrentSchema();
    testutil::ExpectStateMatchesMirror(shards[t]->db(), *mirrors[t], current,
                                       "tenant " + std::to_string(t) + " " + where);
    Database scratch(4096);
    ASSERT_TRUE(mirrors[t]->Materialize(&scratch, bs->object).ok());
    ASSERT_TRUE(scratch.AnalyzeAll().ok());
    for (const WorkloadQuery& wq : queries) {
      auto want = RunOnSchema(&scratch, wq.query, bs->object);
      ASSERT_TRUE(want.has_value()) << wq.query.name;
      auto got = RunOnSchema(shards[t]->db(), wq.query, current);
      if (!got.has_value()) continue;  // unservable at this tenant's step
      EXPECT_TRUE(SameRows(*got, *want))
          << "tenant " << t << ": " << wq.query.name << " diverges from its own oracle "
          << where << " (" << got->size() << " vs " << want->size() << " rows)";
    }
  };

  MigrationOptions options;
  options.batch_rows = 8;  // several batches per target: a real frontier
  for (size_t s = 1; s <= steps; ++s) {
    // Writes land on EVERY tenant before each rollout wave, so a migrating
    // tenant's neighbors are mid-write exactly when cross-shard state could
    // bleed.
    for (size_t t = 0; t < 3; ++t) {
      for (int i = 0; i < 6; ++i) ASSERT_TRUE(write_one(t).ok());
    }
    for (size_t t = 0; t < 3; ++t) {
      if (positions[t] < s) continue;  // this tenant parked earlier
      ASSERT_EQ(shards[t]->step(), s - 1);
      Status st = shards[t]->AdvanceOneOp(*schedule, options);
      ASSERT_TRUE(st.ok()) << "tenant " << t << " step " << s << ": " << st.ToString();
    }
    for (size_t t = 0; t < 3; ++t) {
      check_tenant(t, "after rollout wave " + std::to_string(s));
    }
  }

  for (size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(shards[t]->step(), positions[t]) << "tenant " << t;
    EXPECT_TRUE(shards[t]->CurrentSchema().EquivalentTo(schedule->at(positions[t])));
  }
  EXPECT_GT(applied_writes, 0u);
  // A final burst on the parked tenants: intermediate schemas keep taking
  // writes after the fleet's rollout wave has passed them by.
  for (size_t t = 0; t < 3; ++t) {
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(write_one(t).ok());
    check_tenant(t, "after the post-rollout burst");
  }
}

}  // namespace
}  // namespace pse
