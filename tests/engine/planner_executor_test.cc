#include <gtest/gtest.h>

#include <algorithm>

#include "engine/catalog_view.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tests/engine/engine_test_util.h"

namespace pse {
namespace {

class PlannerExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testutil::MakeBookstore();
    ASSERT_NE(db_, nullptr);
    view_ = std::make_unique<DatabaseCatalogView>(db_.get());
  }

  Result<std::vector<Row>> Run(const BoundQuery& q) {
    PSE_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(q, *view_));
    return ExecutePlan(*plan, db_.get());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<DatabaseCatalogView> view_;
};

SelectItem Plain(const std::string& col, const std::string& name) {
  return SelectItem(Col(col), AggFunc::kNone, name);
}

TEST_F(PlannerExecutorTest, SingleTableScan) {
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"book_id", "title"}));
  q.select_items.push_back(Plain("book.book_id", "id"));
  q.select_items.push_back(Plain("book.title", "title"));
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 100u);
}

TEST_F(PlannerExecutorTest, FilterPushdown) {
  BoundQuery q;
  TableAccess t("book", {"book_id", "price"});
  t.filters.push_back(Cmp(CompareOp::kGt, Col("price"), Const(Value::Double(40.0))));
  q.tables.push_back(std::move(t));
  q.select_items.push_back(Plain("book.book_id", "id"));
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // price = 5 + (b % 40); price > 40 needs b % 40 >= 36: b in {36..39, 76..79}.
  EXPECT_EQ(rows->size(), 8u);
}

TEST_F(PlannerExecutorTest, IndexScanChosenForKeyEquality) {
  BoundQuery q;
  TableAccess t("book", {"book_id", "title"});
  t.filters.push_back(Eq("book_id", Value::Int(42)));
  q.tables.push_back(std::move(t));
  q.select_items.push_back(Plain("book.title", "title"));
  auto plan = PlanQuery(q, *view_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Root is Project; the scan below must be an index scan with [42, 42].
  const PlanNode* scan = plan->get();
  while (!scan->children.empty()) scan = scan->children[0].get();
  EXPECT_EQ(scan->kind, PlanNode::Kind::kIndexScan);
  EXPECT_EQ(scan->lo, 42);
  EXPECT_EQ(scan->hi, 42);
  auto rows = ExecutePlan(**plan, db_.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsString(), "title-42");
}

TEST_F(PlannerExecutorTest, IndexScanRangeBounds) {
  BoundQuery q;
  TableAccess t("book", {"book_id"});
  t.filters.push_back(Cmp(CompareOp::kGe, Col("book_id"), Const(Value::Int(10))));
  t.filters.push_back(Cmp(CompareOp::kLt, Col("book_id"), Const(Value::Int(20))));
  q.tables.push_back(std::move(t));
  q.select_items.push_back(Plain("book.book_id", "id"));
  auto plan = PlanQuery(q, *view_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const PlanNode* scan = plan->get();
  while (!scan->children.empty()) scan = scan->children[0].get();
  ASSERT_EQ(scan->kind, PlanNode::Kind::kIndexScan);
  EXPECT_EQ(scan->lo, 10);
  EXPECT_EQ(scan->hi, 19);
  auto rows = ExecutePlan(**plan, db_.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(PlannerExecutorTest, TwoWayJoin) {
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"book_id", "title", "author_id"}));
  q.tables.push_back(TableAccess("author", {"author_id", "name"}));
  q.joins.push_back(EquiJoin{0, 1, "author_id", "author_id"});
  q.select_items.push_back(Plain("book.title", "title"));
  q.select_items.push_back(Plain("author.name", "name"));
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 100u);  // every book joins exactly one author
}

TEST_F(PlannerExecutorTest, ThreeWayJoinWithFilter) {
  BoundQuery q;
  q.tables.push_back(TableAccess("sale", {"sale_id", "book_id", "qty"}));
  q.tables.push_back(TableAccess("book", {"book_id", "author_id"}));
  q.tables.push_back(TableAccess("author", {"author_id", "name"}));
  q.joins.push_back(EquiJoin{0, 1, "book_id", "book_id"});
  q.joins.push_back(EquiJoin{1, 2, "author_id", "author_id"});
  q.global_filters.push_back(Eq("author.name", Value::Varchar("author-3")));
  q.select_items.push_back(Plain("sale.sale_id", "sale_id"));
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // author-3 wrote books 3, 13, ..., 93 (10 books), each with 3 sales.
  EXPECT_EQ(rows->size(), 30u);
}

TEST_F(PlannerExecutorTest, DisconnectedJoinGraphRejected) {
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"book_id"}));
  q.tables.push_back(TableAccess("author", {"author_id"}));
  q.select_items.push_back(Plain("book.book_id", "id"));
  auto rows = Run(q);
  EXPECT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsBindError());
}

TEST_F(PlannerExecutorTest, GroupByWithAggregates) {
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"book_id", "author_id", "price"}));
  q.group_by.push_back(Col("book.author_id"));
  q.select_items.push_back(Plain("book.author_id", "author_id"));
  q.select_items.emplace_back(nullptr, AggFunc::kCountStar, "n");
  q.select_items.emplace_back(Col("book.price"), AggFunc::kSum, "total");
  q.select_items.emplace_back(Col("book.price"), AggFunc::kMax, "max_price");
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 10u);
  for (const auto& r : *rows) {
    EXPECT_EQ(r[1].AsInt(), 10);  // 10 books per author
    EXPECT_GT(r[2].AsDouble(), 0.0);
    EXPECT_GE(r[3].AsDouble(), 5.0);
  }
}

TEST_F(PlannerExecutorTest, ScalarAggregateOnEmptyInput) {
  BoundQuery q;
  TableAccess t("book", {"book_id", "price"});
  t.filters.push_back(Eq("book_id", Value::Int(-5)));
  q.tables.push_back(std::move(t));
  q.select_items.emplace_back(nullptr, AggFunc::kCountStar, "n");
  q.select_items.emplace_back(Col("book.price"), AggFunc::kSum, "total");
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 0);
  EXPECT_TRUE((*rows)[0][1].is_null());
}

TEST_F(PlannerExecutorTest, UngroupedSelectItemRejected) {
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"book_id", "author_id"}));
  q.group_by.push_back(Col("book.author_id"));
  q.select_items.push_back(Plain("book.book_id", "id"));  // not grouped!
  auto rows = Run(q);
  EXPECT_FALSE(rows.ok());
}

TEST_F(PlannerExecutorTest, OrderByAndLimit) {
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"book_id", "price"}));
  q.select_items.push_back(Plain("book.book_id", "id"));
  q.select_items.push_back(Plain("book.price", "price"));
  q.order_by.push_back(OrderKey{1, /*desc=*/true});
  q.order_by.push_back(OrderKey{0, /*desc=*/false});
  q.limit = 5;
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 5u);
  // Max price is 5 + 39 = 44 at book ids 36, 76 (b % 40 == 39).
  EXPECT_EQ((*rows)[0][1].AsDouble(), 44.0);
  EXPECT_LE((*rows)[0][0].AsInt(), (*rows)[1][0].AsInt());
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_GE((*rows)[i - 1][1].AsDouble(), (*rows)[i][1].AsDouble());
  }
}

TEST_F(PlannerExecutorTest, SelectDistinct) {
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"author_id"}));
  q.select_items.push_back(Plain("book.author_id", "author_id"));
  q.select_distinct = true;
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(PlannerExecutorTest, DistinctTableAccessDeduplicates) {
  // Reading author_id out of book with distinct access = the 10 authors.
  BoundQuery q;
  TableAccess t("book", {"author_id"});
  t.distinct = true;
  t.distinct_key = "author_id";
  q.tables.push_back(std::move(t));
  q.select_items.push_back(Plain("book.author_id", "author_id"));
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(PlannerExecutorTest, JoinCycleBecomesResidualFilter) {
  // Redundant second join condition between the same tables.
  BoundQuery q;
  q.tables.push_back(TableAccess("book", {"book_id", "author_id"}));
  q.tables.push_back(TableAccess("author", {"author_id", "country_id", "name"}));
  q.joins.push_back(EquiJoin{0, 1, "author_id", "author_id"});
  q.joins.push_back(EquiJoin{0, 1, "author_id", "author_id"});
  q.select_items.push_back(Plain("book.book_id", "id"));
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 100u);
}

TEST_F(PlannerExecutorTest, ArithmeticProjection) {
  BoundQuery q;
  q.tables.push_back(TableAccess("sale", {"sale_id", "qty"}));
  q.select_items.emplace_back(
      std::make_unique<ArithExpr>(ArithOp::kMul, Col("sale.qty"), Const(Value::Int(100))),
      AggFunc::kNone, "cents");
  q.limit = 3;
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  for (const auto& r : *rows) {
    EXPECT_EQ(r[0].AsInt() % 100, 0);
    EXPECT_GE(r[0].AsInt(), 100);
  }
}

TEST_F(PlannerExecutorTest, AvgAndMinAggregates) {
  BoundQuery q;
  q.tables.push_back(TableAccess("sale", {"book_id", "qty"}));
  q.group_by.push_back(Col("sale.book_id"));
  q.select_items.push_back(Plain("sale.book_id", "book_id"));
  q.select_items.emplace_back(Col("sale.qty"), AggFunc::kAvg, "avg_qty");
  q.select_items.emplace_back(Col("sale.qty"), AggFunc::kMin, "min_qty");
  auto rows = Run(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 100u);
  for (const auto& r : *rows) {
    EXPECT_GE(r[1].AsDouble(), 1.0);
    EXPECT_LE(r[1].AsDouble(), 5.0);
    EXPECT_GE(r[2].AsInt(), 1);
  }
}

}  // namespace
}  // namespace pse
