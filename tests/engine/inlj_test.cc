// Index-nested-loop join: plan selection, correctness vs hash join.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/catalog_view.h"
#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tests/engine/engine_test_util.h"

namespace pse {
namespace {

/// Finds the first node of `kind` in the plan tree (pre-order).
const PlanNode* FindNode(const PlanNode* plan, PlanNode::Kind kind) {
  if (plan->kind == kind) return plan;
  for (const auto& c : plan->children) {
    const PlanNode* found = FindNode(c.get(), kind);
    if (found != nullptr) return found;
  }
  return nullptr;
}

class InljTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testutil::MakeBookstore(1024);
    // INLJ pays when the inner table is large AND the per-probe fanout is
    // small. Grow the catalog to 2000 books and the sale table to ~20k rows
    // (~100 pages) with sale s referencing book s % 2000 (fanout ~10).
    for (int64_t b = 100; b < 2000; ++b) {
      ASSERT_TRUE(db_->Insert("book", {Value::Int(b), Value::Varchar("title-" + std::to_string(b)),
                                       Value::Int(b % 10), Value::Double(5.0 + (b % 40))})
                      .ok());
    }
    for (int64_t s = 300; s < 20000; ++s) {
      ASSERT_TRUE(
          db_->Insert("sale", {Value::Int(s), Value::Int(s % 2000), Value::Int(1 + s % 5)}).ok());
    }
    // Secondary index on the FK so the planner can probe it.
    ASSERT_TRUE(db_->CreateIndex("sale", "book_id").ok());
    ASSERT_TRUE(db_->AnalyzeAll().ok());
    view_ = std::make_unique<DatabaseCatalogView>(db_.get());
  }

  /// Point query on book joined to its sales: tiny outer, big indexed inner.
  BoundQuery PointJoin() {
    BoundQuery q;
    TableAccess book("book", {"book_id", "title"});
    book.filters.push_back(Eq("book_id", Value::Int(42)));
    q.tables.push_back(std::move(book));
    q.tables.push_back(TableAccess("sale", {"sale_id", "book_id"}));
    q.joins.push_back(EquiJoin{0, 1, "book_id", "book_id"});
    q.select_items.emplace_back(Col("sale.sale_id"), AggFunc::kNone, "id");
    q.select_items.emplace_back(Col("book.title"), AggFunc::kNone, "title");
    return q;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<DatabaseCatalogView> view_;
};

TEST_F(InljTest, PlannerChoosesInljForSelectiveOuter) {
  auto plan = PlanQuery(PointJoin(), *view_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const PlanNode* inlj = FindNode(plan->get(), PlanNode::Kind::kIndexNLJoin);
  ASSERT_NE(inlj, nullptr) << (*plan)->ToString();
  EXPECT_EQ(inlj->table, "sale");
  EXPECT_EQ(inlj->index_column, "book_id");
}

TEST_F(InljTest, PlannerKeepsHashJoinForFullScanOuter) {
  // No filter: the outer produces every sale row; probing per row would
  // cost more than scanning the inner.
  BoundQuery q;
  q.tables.push_back(TableAccess("sale", {"sale_id", "book_id"}));
  q.tables.push_back(TableAccess("book", {"book_id", "title"}));
  q.joins.push_back(EquiJoin{0, 1, "book_id", "book_id"});
  q.select_items.emplace_back(Col("sale.sale_id"), AggFunc::kNone, "id");
  auto plan = PlanQuery(q, *view_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(FindNode(plan->get(), PlanNode::Kind::kIndexNLJoin), nullptr);
  EXPECT_NE(FindNode(plan->get(), PlanNode::Kind::kHashJoin), nullptr);
}

TEST_F(InljTest, InljAndHashJoinAgree) {
  // Ground truth for book 42: the 3 original sales (42, 142, 242 with
  // s % 100 == 42) plus the 9 added ones with s % 2000 == 42.
  auto plan = PlanQuery(PointJoin(), *view_);
  ASSERT_TRUE(plan.ok());
  auto rows = ExecutePlan(**plan, db_.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 12u);
  for (const auto& r : *rows) {
    EXPECT_TRUE(r[0].AsInt() % 100 == 42 || r[0].AsInt() % 2000 == 42);
    EXPECT_EQ(r[1].AsString(), "title-42");
  }
}

TEST_F(InljTest, InnerFilterApplies) {
  BoundQuery q = PointJoin();
  q.tables[1].filters.push_back(Cmp(CompareOp::kLt, Col("sale_id"), Const(Value::Int(1000))));
  auto plan = PlanQuery(q, *view_);
  ASSERT_TRUE(plan.ok());
  auto rows = ExecutePlan(**plan, db_.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // sales 42, 142, 242 (added ones are >= 2042)
}

TEST_F(InljTest, NullJoinKeysProduceNoMatches) {
  // A book with NULL author joins nothing in either join flavor.
  ASSERT_TRUE(db_->Insert("book", {Value::Int(5000), Value::Varchar("orphan"),
                                   Value::Null(TypeId::kInt64), Value::Double(1.0)})
                  .ok());
  ASSERT_TRUE(db_->AnalyzeAll().ok());
  BoundQuery q;
  TableAccess book("book", {"book_id", "author_id"});
  book.filters.push_back(Eq("book_id", Value::Int(5000)));
  q.tables.push_back(std::move(book));
  q.tables.push_back(TableAccess("author", {"author_id", "name"}));
  q.joins.push_back(EquiJoin{0, 1, "author_id", "author_id"});
  q.select_items.emplace_back(Col("author.name"), AggFunc::kNone, "name");
  auto plan = PlanQuery(q, *view_);
  ASSERT_TRUE(plan.ok());
  auto rows = ExecutePlan(**plan, db_.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(InljTest, CostModelCoversInlj) {
  auto plan = PlanQuery(PointJoin(), *view_);
  ASSERT_TRUE(plan.ok());
  ASSERT_NE(FindNode(plan->get(), PlanNode::Kind::kIndexNLJoin), nullptr);
  CostModel model(view_.get());
  auto est = model.Estimate(**plan);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_GT(est->io_pages, 0.0);
  EXPECT_NEAR(est->rows, 10.0, 8.0);
  // The whole point: the INLJ plan must be priced well below a full scan of
  // the sale table.
  auto sale_stats = view_->GetStats("sale");
  ASSERT_TRUE(sale_stats.ok());
  EXPECT_LT(est->io_pages, CostModel::TablePages(**sale_stats));
}

TEST_F(InljTest, ExplainShowsJoinKind) {
  auto plan = PlanQuery(PointJoin(), *view_);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE((*plan)->ToString().find("IndexNLJoin"), std::string::npos);
}

}  // namespace
}  // namespace pse
