// Shared fixtures for engine tests: a small bookstore database.
#pragma once

#include <memory>

#include "storage/database.h"

namespace pse {
namespace testutil {

/// Builds a database with:
///   author(author_id KEY, name, country_id)        -- 10 rows
///   book(book_id KEY, title, author_id, price)     -- 100 rows, 10 per author
///   sale(sale_id KEY, book_id, qty)                -- 300 rows, 3 per book
/// and ANALYZEd statistics. Every author has books; every book has sales.
inline std::unique_ptr<Database> MakeBookstore(size_t pool_pages = 256) {
  auto db = std::make_unique<Database>(pool_pages);
  TableSchema author("author",
                     {Column("author_id", TypeId::kInt64, 0, false),
                      Column("name", TypeId::kVarchar, 16),
                      Column("country_id", TypeId::kInt64)},
                     {"author_id"});
  TableSchema book("book",
                   {Column("book_id", TypeId::kInt64, 0, false),
                    Column("title", TypeId::kVarchar, 20),
                    Column("author_id", TypeId::kInt64),
                    Column("price", TypeId::kDouble)},
                   {"book_id"});
  TableSchema sale("sale",
                   {Column("sale_id", TypeId::kInt64, 0, false),
                    Column("book_id", TypeId::kInt64),
                    Column("qty", TypeId::kInt64)},
                   {"sale_id"});
  if (!db->CreateTable(author).ok() || !db->CreateTable(book).ok() ||
      !db->CreateTable(sale).ok()) {
    return nullptr;
  }
  for (int64_t a = 0; a < 10; ++a) {
    auto s = db->Insert("author", {Value::Int(a), Value::Varchar("author-" + std::to_string(a)),
                                   Value::Int(a % 3)});
    if (!s.ok()) return nullptr;
  }
  for (int64_t b = 0; b < 100; ++b) {
    auto s = db->Insert("book", {Value::Int(b), Value::Varchar("title-" + std::to_string(b)),
                                 Value::Int(b % 10), Value::Double(5.0 + (b % 40))});
    if (!s.ok()) return nullptr;
  }
  for (int64_t s_id = 0; s_id < 300; ++s_id) {
    auto s = db->Insert("sale",
                        {Value::Int(s_id), Value::Int(s_id % 100), Value::Int(1 + s_id % 5)});
    if (!s.ok()) return nullptr;
  }
  if (!db->AnalyzeAll().ok()) return nullptr;
  return db;
}

}  // namespace testutil
}  // namespace pse
