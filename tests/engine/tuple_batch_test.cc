// TupleBatch and vector-evaluator unit tests: selection-vector edge cases
// (empty batches, all-filtered batches), NULL handling in the vector
// expression evaluators (seeded property test against the scalar Expr
// evaluator), and a batch scan spanning the migration copy frontier
// mid-operator (via MigrationOptions::on_batch).
#include <gtest/gtest.h>

#include <optional>

#include "common/rng.h"
#include "core/migration_executor.h"
#include "engine/catalog_view.h"
#include "engine/executor.h"
#include "engine/expr.h"
#include "engine/expr_vec.h"
#include "engine/planner.h"
#include "engine/tuple_batch.h"
#include "tests/common/test_db_builder.h"

namespace pse {
namespace {

using testutil::Bookstore;
using testutil::MakeInstance;
using testutil::RandomInstance;
using testutil::SameRows;
using testutil::SortRows;
using testutil::TableRows;

// --- TupleBatch mechanics ---

TEST(TupleBatchTest, EmptyBatch) {
  TupleBatch b;
  EXPECT_EQ(b.num_cols(), 0u);
  EXPECT_EQ(b.num_rows(), 0u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());

  b.Reset(3);
  EXPECT_EQ(b.num_cols(), 3u);
  EXPECT_TRUE(b.empty());
  std::vector<Row> out;
  b.EmitRows(&out);
  EXPECT_TRUE(out.empty());
  b.Compact();  // compacting an empty batch is a no-op
  EXPECT_EQ(b.num_rows(), 0u);
}

TEST(TupleBatchTest, AppendAndSelect) {
  TupleBatch b;
  b.Reset(2);
  for (int64_t i = 0; i < 5; ++i) {
    b.AppendRow(Row{Value::Int(i), Value::Varchar("r" + std::to_string(i))});
  }
  EXPECT_EQ(b.num_rows(), 5u);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.At(0, 3).AsInt(), 3);
  EXPECT_EQ(b.SelIndex(3), 3u);

  b.SetSel({1, 4});
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.num_rows(), 5u);
  EXPECT_EQ(b.SelIndex(1), 4u);
  std::vector<Row> out;
  b.EmitRows(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0].AsInt(), 1);
  EXPECT_EQ(out[1][0].AsInt(), 4);

  b.Compact();
  EXPECT_FALSE(b.has_sel());
  EXPECT_EQ(b.num_rows(), 2u);
  EXPECT_EQ(b.At(0, 0).AsInt(), 1);
  EXPECT_EQ(b.At(0, 1).AsInt(), 4);
  EXPECT_EQ(b.At(1, 1).AsString(), "r4");
}

TEST(TupleBatchTest, AllFilteredBatch) {
  TupleBatch b;
  b.Reset(1);
  for (int64_t i = 0; i < 4; ++i) b.AppendRow(Row{Value::Int(i)});
  b.SetSel({});
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.num_rows(), 4u);  // physical rows survive until Compact
  std::vector<Row> out;
  b.EmitRows(&out);
  EXPECT_TRUE(out.empty());
  b.Compact();
  EXPECT_EQ(b.num_rows(), 0u);
  EXPECT_TRUE(b.empty());
}

TEST(TupleBatchTest, NullValuesRoundTrip) {
  TupleBatch b;
  b.Reset(2);
  b.AppendRow(Row{Value::Null(TypeId::kInt64), Value::Varchar("x")});
  b.AppendRow(Row{Value::Int(7), Value::Null(TypeId::kVarchar)});
  Row r = b.RowAt(0);
  EXPECT_TRUE(r[0].is_null());
  EXPECT_EQ(r[1].AsString(), "x");
  Row moved;
  b.MoveRowOut(1, &moved);
  EXPECT_EQ(moved[0].AsInt(), 7);
  EXPECT_TRUE(moved[1].is_null());
}

// --- vector evaluator vs scalar evaluator ---

TEST(ExprVecTest, EvalSelectOnEmptyBatch) {
  ExprPtr e = Eq("c0", Value::Int(1));
  ASSERT_TRUE(e->Resolve([](const std::string&) -> Result<size_t> { return size_t{0}; }).ok());
  auto vec = ExprVecExecutor::Create(*e);
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  TupleBatch b;
  b.Reset(1);
  std::vector<uint32_t> sel{99};
  ASSERT_TRUE(vec->EvalSelect(b, &sel).ok());
  EXPECT_TRUE(sel.empty());
}

TEST(ExprVecTest, NonBooleanPredicateRejected) {
  // ArithExpr result is numeric; EvalSelect must reject it the same way
  // EvalPredicate does.
  ExprPtr e = std::make_unique<ArithExpr>(ArithOp::kAdd, Col("c0"), Const(Value::Int(1)));
  ASSERT_TRUE(e->Resolve([](const std::string&) -> Result<size_t> { return size_t{0}; }).ok());
  auto vec = ExprVecExecutor::Create(*e);
  ASSERT_TRUE(vec.ok());
  TupleBatch b;
  b.Reset(1);
  b.AppendRow(Row{Value::Int(2)});
  std::vector<uint32_t> sel;
  Status s = vec->EvalSelect(b, &sel);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

/// Random expression over columns id/a/b/s mixing comparisons, three-valued
/// logic, arithmetic (including division by zero), LIKE, IS NULL, and IN —
/// the full surface both evaluators implement.
ExprPtr RandomExpr(Rng* rng, int depth = 0) {
  double roll = rng->UniformDouble();
  const char* int_cols[] = {"id", "a", "b"};
  if (depth < 3 && roll < 0.25) {
    LogicOp op = rng->Bernoulli(0.5) ? LogicOp::kAnd : LogicOp::kOr;
    return std::make_unique<LogicExpr>(op, RandomExpr(rng, depth + 1),
                                       RandomExpr(rng, depth + 1));
  }
  if (depth < 3 && roll < 0.35) {
    return std::make_unique<NotExpr>(RandomExpr(rng, depth + 1));
  }
  if (roll < 0.5) {
    // Comparison over arithmetic: exercises NULL propagation and
    // div-by-zero => NULL inside the compare.
    ArithOp aops[] = {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul, ArithOp::kDiv};
    ExprPtr lhs = std::make_unique<ArithExpr>(
        aops[rng->Index(4)], Col(int_cols[rng->Index(3)]),
        rng->Bernoulli(0.5) ? Col(int_cols[rng->Index(3)])
                            : Const(Value::Int(rng->UniformInt(-3, 3))));
    CompareOp cops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                        CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
    return Cmp(cops[rng->Index(6)], std::move(lhs),
               Const(Value::Int(rng->UniformInt(-20, 20))));
  }
  if (roll < 0.65) {
    return std::make_unique<IsNullExpr>(Col(int_cols[rng->Index(3)]), rng->Bernoulli(0.5));
  }
  if (roll < 0.8) {
    return std::make_unique<LikeExpr>(Col("s"), rng->Bernoulli(0.5) ? "a%" : "%b%",
                                      rng->Bernoulli(0.3));
  }
  std::vector<Value> in_vals;
  for (int i = 0; i < 3; ++i) in_vals.push_back(Value::Int(rng->UniformInt(-10, 10)));
  if (rng->Bernoulli(0.2)) in_vals.push_back(Value::Null(TypeId::kInt64));
  return std::make_unique<InListExpr>(Col(int_cols[rng->Index(3)]), std::move(in_vals),
                                      rng->Bernoulli(0.3));
}

class VectorScalarProperty : public ::testing::TestWithParam<uint64_t> {};

// Seeded property test: for random expressions over random NULL-bearing
// rows, the compiled vector evaluator must agree with the scalar Expr
// evaluator value for value (including the NULL's type), and EvalSelect
// must keep exactly the rows EvalPredicate keeps.
TEST_P(VectorScalarProperty, VectorEvaluatorMatchesScalar) {
  Rng rng(GetParam());
  RandomInstance inst = MakeInstance(&rng, 200);

  // Load the raw rows into one batch, with a random selection vector so
  // dead rows are present (their lanes must not disturb live lanes).
  TupleBatch batch;
  batch.Reset(4, inst.rows.size());
  for (const Row& r : inst.rows) batch.AppendRow(r);
  std::vector<uint32_t> live;
  for (uint32_t i = 0; i < inst.rows.size(); ++i) {
    if (rng.Bernoulli(0.8)) live.push_back(i);
  }
  batch.SetSel(live);

  auto resolver = [](const std::string& name) -> Result<size_t> {
    if (name == "id") return size_t{0};
    if (name == "a") return size_t{1};
    if (name == "b") return size_t{2};
    if (name == "s") return size_t{3};
    return Status::BindError("?");
  };

  for (int iter = 0; iter < 60; ++iter) {
    ExprPtr e = RandomExpr(&rng);
    ASSERT_TRUE(e->Resolve(resolver).ok());
    auto vec = ExprVecExecutor::Create(*e);
    ASSERT_TRUE(vec.ok()) << e->ToString() << ": " << vec.status().ToString();

    const std::vector<Value>* got = nullptr;
    ASSERT_TRUE(vec->Eval(batch, &got).ok()) << e->ToString();
    ASSERT_GE(got->size(), batch.num_rows());
    for (size_t i = 0; i < batch.size(); ++i) {
      size_t p = batch.SelIndex(i);
      auto want = e->Eval(inst.rows[p]);
      ASSERT_TRUE(want.ok()) << e->ToString();
      const Value& gv = (*got)[p];
      EXPECT_EQ(gv.is_null(), want->is_null()) << e->ToString() << " row " << p;
      EXPECT_EQ(gv.type(), want->type()) << e->ToString() << " row " << p;
      if (!gv.is_null()) {
        EXPECT_EQ(gv.Compare(*want), 0)
            << e->ToString() << " row " << p << ": " << gv.ToString() << " vs "
            << want->ToString();
      }
    }

    std::vector<uint32_t> sel;
    ASSERT_TRUE(vec->EvalSelect(batch, &sel).ok()) << e->ToString();
    std::vector<uint32_t> want_sel;
    for (size_t i = 0; i < batch.size(); ++i) {
      size_t p = batch.SelIndex(i);
      auto pass = EvalPredicate(*e, inst.rows[p]);
      ASSERT_TRUE(pass.ok()) << e->ToString();
      if (*pass) want_sel.push_back(static_cast<uint32_t>(p));
    }
    EXPECT_EQ(sel, want_sel) << e->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorScalarProperty, ::testing::Values(3, 41, 77, 123));

// --- vectorized plans against the row engine ---

std::vector<Row> RunBoth(Database* db, const BoundQuery& q) {
  DatabaseCatalogView view(db);
  auto plan = PlanQuery(q, view);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  if (!plan.ok()) return {};
  ExecOptions row_eo;
  row_eo.vectorized = false;
  auto rows = ExecutePlan(**plan, db, row_eo);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  ExecOptions vec_eo;
  vec_eo.vectorized = true;
  auto vec_rows = ExecutePlan(**plan, db, vec_eo);
  EXPECT_TRUE(vec_rows.ok()) << vec_rows.status().ToString();
  if (!rows.ok() || !vec_rows.ok()) return {};
  std::vector<Row> a = SortRows(std::move(*rows));
  std::vector<Row> b = SortRows(std::move(*vec_rows));
  EXPECT_TRUE(SameRows(a, b)) << "vectorized engine diverges (" << b.size() << " vs "
                              << a.size() << " rows)";
  return a;
}

TEST(VectorizedEngineTest, EmptyTableScan) {
  Database db(64);
  TableSchema t("t", {Column("id", TypeId::kInt64, 0, false), Column("v", TypeId::kInt64)},
                {"id"});
  ASSERT_TRUE(db.CreateTable(t).ok());
  BoundQuery q;
  q.tables.emplace_back("t", std::vector<std::string>{"id", "v"});
  q.select_items.emplace_back(Col("t.id"), AggFunc::kNone, "id");
  std::vector<Row> rows = RunBoth(&db, q);
  EXPECT_TRUE(rows.empty());
}

TEST(VectorizedEngineTest, AllFilteredScan) {
  Rng rng(5);
  RandomInstance inst = MakeInstance(&rng, 500);
  BoundQuery q;
  TableAccess t("t", {"id", "a", "b", "s"});
  t.filters.push_back(Cmp(CompareOp::kLt, Col("id"), Const(Value::Int(-1))));
  q.tables.push_back(std::move(t));
  q.select_items.emplace_back(Col("t.id"), AggFunc::kNone, "id");
  std::vector<Row> rows = RunBoth(inst.db.get(), q);
  EXPECT_TRUE(rows.empty());  // every batch is fully filtered out
}

// --- batch scan spanning the migration copy frontier ---

// While a split operator copies `user` in small batches, the on_batch hook
// (which runs with no latches held, against the still-live source schema)
// scans the source table through both engines. A vectorized batch scan that
// spans the copy frontier mid-operator must see exactly the rows the row
// engine sees — the copy takes its per-batch shared latch at the same rank,
// and the source stays immutable until the quiesce window drops it.
TEST(VectorizedEngineTest, BatchScanSpansMigrationCopyFrontier) {
  std::unique_ptr<Bookstore> bs = Bookstore::Make();
  std::unique_ptr<LogicalDatabase> data = bs->MakeData(5, 8, 120);
  Database db(512);
  ASSERT_TRUE(data->Materialize(&db, bs->source).ok());
  ASSERT_TRUE(db.AnalyzeAll().ok());
  PhysicalSchema schema = bs->source;
  MigrationExecutor exec(&db, data.get());

  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 7;
  op.split_moved = {bs->u_addr};
  op.split_moved_anchor = bs->user;

  std::vector<Row> user_before = TableRows(&db, "user");
  ASSERT_FALSE(user_before.empty());

  size_t hook_scans = 0;
  MigrationOptions opts;
  opts.batch_rows = 16;  // many batches => many frontier positions
  opts.on_batch = [&](const MigrationBatchEvent&) -> Status {
    BoundQuery q;
    q.tables.emplace_back("user",
                          std::vector<std::string>{"u_id", "u_name", "u_bday", "u_addr"});
    q.select_items.emplace_back(Col("user.u_id"), AggFunc::kNone, "u_id");
    q.select_items.emplace_back(Col("user.u_addr"), AggFunc::kNone, "u_addr");
    std::vector<Row> got = RunBoth(&db, q);
    EXPECT_EQ(got.size(), user_before.size());
    ++hook_scans;
    return Status::OK();
  };
  exec.set_options(std::move(opts));

  auto io = exec.Apply(op, &schema);
  ASSERT_TRUE(io.ok()) << io.status().ToString();
  EXPECT_GT(hook_scans, 3u);  // the scan really did straddle several frontiers
}

}  // namespace
}  // namespace pse
