#include "engine/expr.h"

#include <gtest/gtest.h>

namespace pse {
namespace {

/// Resolves names "c0", "c1", ... to positions 0, 1, ...
ColumnResolver TestResolver() {
  return [](const std::string& name) -> Result<size_t> {
    if (name.size() >= 2 && name[0] == 'c') {
      return static_cast<size_t>(std::stoul(name.substr(1)));
    }
    return Status::BindError("unknown column " + name);
  };
}

Row TestRow() {
  return {Value::Int(10), Value::Varchar("hello"), Value::Double(2.5),
          Value::Null(TypeId::kInt64), Value::Bool(true)};
}

Value MustEval(const ExprPtr& e, const Row& row) {
  auto r = e->Eval(row);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : Value();
}

TEST(ExprTest, ColumnRefRequiresResolution) {
  auto e = Col("c0");
  EXPECT_FALSE(e->Eval(TestRow()).ok());
  ASSERT_TRUE(e->Resolve(TestResolver()).ok());
  EXPECT_EQ(MustEval(e, TestRow()).AsInt(), 10);
}

TEST(ExprTest, ConstantEval) {
  auto e = Const(Value::Varchar("k"));
  EXPECT_EQ(MustEval(e, TestRow()).AsString(), "k");
}

TEST(ExprTest, CompareOperators) {
  struct Case {
    CompareOp op;
    int64_t rhs;
    bool expect;
  };
  for (const auto& c : std::initializer_list<Case>{{CompareOp::kEq, 10, true},
                                                   {CompareOp::kEq, 9, false},
                                                   {CompareOp::kNe, 9, true},
                                                   {CompareOp::kLt, 11, true},
                                                   {CompareOp::kLe, 10, true},
                                                   {CompareOp::kGt, 10, false},
                                                   {CompareOp::kGe, 10, true}}) {
    auto e = Cmp(c.op, Col("c0"), Const(Value::Int(c.rhs)));
    ASSERT_TRUE(e->Resolve(TestResolver()).ok());
    EXPECT_EQ(MustEval(e, TestRow()).AsBool(), c.expect)
        << CompareOpToString(c.op) << " " << c.rhs;
  }
}

TEST(ExprTest, CompareWithNullYieldsNull) {
  auto e = Cmp(CompareOp::kEq, Col("c3"), Const(Value::Int(1)));
  ASSERT_TRUE(e->Resolve(TestResolver()).ok());
  EXPECT_TRUE(MustEval(e, TestRow()).is_null());
}

TEST(ExprTest, ThreeValuedAnd) {
  // false AND NULL = false; true AND NULL = NULL.
  auto f_and_null = And(Cmp(CompareOp::kEq, Col("c0"), Const(Value::Int(0))),
                        Cmp(CompareOp::kEq, Col("c3"), Const(Value::Int(1))));
  ASSERT_TRUE(f_and_null->Resolve(TestResolver()).ok());
  Value v = MustEval(f_and_null, TestRow());
  ASSERT_FALSE(v.is_null());
  EXPECT_FALSE(v.AsBool());

  auto t_and_null = And(Cmp(CompareOp::kEq, Col("c0"), Const(Value::Int(10))),
                        Cmp(CompareOp::kEq, Col("c3"), Const(Value::Int(1))));
  ASSERT_TRUE(t_and_null->Resolve(TestResolver()).ok());
  EXPECT_TRUE(MustEval(t_and_null, TestRow()).is_null());
}

TEST(ExprTest, ThreeValuedOr) {
  // true OR NULL = true; false OR NULL = NULL.
  auto t_or_null = std::make_unique<LogicExpr>(
      LogicOp::kOr, Cmp(CompareOp::kEq, Col("c0"), Const(Value::Int(10))),
      Cmp(CompareOp::kEq, Col("c3"), Const(Value::Int(1))));
  ExprPtr e1 = std::move(t_or_null);
  ASSERT_TRUE(e1->Resolve(TestResolver()).ok());
  Value v = MustEval(e1, TestRow());
  ASSERT_FALSE(v.is_null());
  EXPECT_TRUE(v.AsBool());

  ExprPtr e2 = std::make_unique<LogicExpr>(
      LogicOp::kOr, Cmp(CompareOp::kEq, Col("c0"), Const(Value::Int(0))),
      Cmp(CompareOp::kEq, Col("c3"), Const(Value::Int(1))));
  ASSERT_TRUE(e2->Resolve(TestResolver()).ok());
  EXPECT_TRUE(MustEval(e2, TestRow()).is_null());
}

TEST(ExprTest, NotSemantics) {
  ExprPtr e = std::make_unique<NotExpr>(Cmp(CompareOp::kEq, Col("c0"), Const(Value::Int(10))));
  ASSERT_TRUE(e->Resolve(TestResolver()).ok());
  EXPECT_FALSE(MustEval(e, TestRow()).AsBool());
  ExprPtr n = std::make_unique<NotExpr>(Cmp(CompareOp::kEq, Col("c3"), Const(Value::Int(1))));
  ASSERT_TRUE(n->Resolve(TestResolver()).ok());
  EXPECT_TRUE(MustEval(n, TestRow()).is_null());
}

TEST(ExprTest, Arithmetic) {
  ExprPtr add = std::make_unique<ArithExpr>(ArithOp::kAdd, Col("c0"), Const(Value::Int(5)));
  ASSERT_TRUE(add->Resolve(TestResolver()).ok());
  EXPECT_EQ(MustEval(add, TestRow()).AsInt(), 15);

  ExprPtr mul = std::make_unique<ArithExpr>(ArithOp::kMul, Col("c2"), Const(Value::Int(4)));
  ASSERT_TRUE(mul->Resolve(TestResolver()).ok());
  EXPECT_EQ(MustEval(mul, TestRow()).AsDouble(), 10.0);

  ExprPtr div = std::make_unique<ArithExpr>(ArithOp::kDiv, Col("c0"), Const(Value::Int(4)));
  ASSERT_TRUE(div->Resolve(TestResolver()).ok());
  EXPECT_EQ(MustEval(div, TestRow()).AsDouble(), 2.5);

  ExprPtr div0 = std::make_unique<ArithExpr>(ArithOp::kDiv, Col("c0"), Const(Value::Int(0)));
  ASSERT_TRUE(div0->Resolve(TestResolver()).ok());
  EXPECT_TRUE(MustEval(div0, TestRow()).is_null());
}

TEST(ExprTest, LikeEval) {
  ExprPtr e = std::make_unique<LikeExpr>(Col("c1"), "hel%");
  ASSERT_TRUE(e->Resolve(TestResolver()).ok());
  EXPECT_TRUE(MustEval(e, TestRow()).AsBool());
  ExprPtr n = std::make_unique<LikeExpr>(Col("c1"), "hel%", /*negated=*/true);
  ASSERT_TRUE(n->Resolve(TestResolver()).ok());
  EXPECT_FALSE(MustEval(n, TestRow()).AsBool());
}

TEST(ExprTest, IsNullEval) {
  ExprPtr is_null = std::make_unique<IsNullExpr>(Col("c3"), false);
  ASSERT_TRUE(is_null->Resolve(TestResolver()).ok());
  EXPECT_TRUE(MustEval(is_null, TestRow()).AsBool());
  ExprPtr not_null = std::make_unique<IsNullExpr>(Col("c0"), true);
  ASSERT_TRUE(not_null->Resolve(TestResolver()).ok());
  EXPECT_TRUE(MustEval(not_null, TestRow()).AsBool());
}

TEST(ExprTest, InListEval) {
  ExprPtr e = std::make_unique<InListExpr>(
      Col("c0"), std::vector<Value>{Value::Int(1), Value::Int(10)});
  ASSERT_TRUE(e->Resolve(TestResolver()).ok());
  EXPECT_TRUE(MustEval(e, TestRow()).AsBool());
  ExprPtr miss = std::make_unique<InListExpr>(Col("c0"), std::vector<Value>{Value::Int(2)});
  ASSERT_TRUE(miss->Resolve(TestResolver()).ok());
  EXPECT_FALSE(MustEval(miss, TestRow()).AsBool());
}

TEST(ExprTest, CloneIsDeepAndKeepsResolution) {
  auto e = Cmp(CompareOp::kLt, Col("c0"), Const(Value::Int(100)));
  ASSERT_TRUE(e->Resolve(TestResolver()).ok());
  auto c = e->Clone();
  e.reset();
  EXPECT_TRUE(MustEval(c, TestRow()).AsBool());
}

TEST(ExprTest, CollectColumns) {
  auto e = And(Eq("a", Value::Int(1)),
               Cmp(CompareOp::kGt, Col("b"), Col("c")));
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], "a");
  EXPECT_EQ(cols[1], "b");
  EXPECT_EQ(cols[2], "c");
}

TEST(ExprTest, AndAllHelpers) {
  EXPECT_EQ(AndAll({}), nullptr);
  std::vector<ExprPtr> one;
  one.push_back(Eq("c0", Value::Int(10)));
  auto e = AndAll(std::move(one));
  ASSERT_TRUE(e->Resolve(TestResolver()).ok());
  EXPECT_TRUE(MustEval(e, TestRow()).AsBool());
}

TEST(ExprTest, EvalPredicateTreatsNullAsFalse) {
  auto e = Cmp(CompareOp::kEq, Col("c3"), Const(Value::Int(1)));
  ASSERT_TRUE(e->Resolve(TestResolver()).ok());
  auto r = EvalPredicate(*e, TestRow());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(ExprTest, ToStringRoundTrips) {
  auto e = And(Eq("x", Value::Int(3)), Cmp(CompareOp::kGe, Col("y"), Const(Value::Double(1.5))));
  EXPECT_EQ(e->ToString(), "(x = 3 AND y >= 1.5)");
}

}  // namespace
}  // namespace pse
