// Heavyweight end-to-end tests: the full TPC-W migration at tiny scale,
// asserting (a) the paper's cost ordering, (b) byte-identical query results
// on every intermediate schema the planner actually visits, and (c) growth
// bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/mapping.h"
#include "core/migration_executor.h"
#include "core/rewriter.h"
#include "core/simulation.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tpcw/datagen.h"
#include "tpcw/queries.h"
#include "tpcw/schema.h"
#include "tpcw/workloads.h"

namespace pse {
namespace {

std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

Result<std::vector<Row>> RunQuery(Database* db, const PhysicalSchema& schema,
                                  const LogicalQuery& q) {
  PSE_ASSIGN_OR_RETURN(BoundQuery bound, RewriteQuery(q, schema));
  DatabaseCatalogView view(db);
  PSE_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(bound, view));
  PSE_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecutePlan(*plan, db));
  return SortedRows(std::move(rows));
}

class TpcwIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = BuildTpcwSchema();
    data_ = GenerateTpcwData(*schema_, ScaleTiny(), 11);
    auto workload = BuildTpcwWorkload(*schema_);
    ASSERT_TRUE(workload.ok());
    queries_ = std::move(*workload);
  }

  SimulationConfig Config(PlannerKind planner) {
    SimulationConfig config;
    config.planner = planner;
    config.buffer_pool_pages = 256;
    config.gaa.ga.population_size = 16;
    config.gaa.ga.generations = 20;
    return config;
  }

  std::unique_ptr<TpcwSchema> schema_;
  std::unique_ptr<LogicalDatabase> data_;
  std::vector<WorkloadQuery> queries_;
};

TEST_F(TpcwIntegrationTest, ThreeSituationOrdering) {
  auto freqs = IrregularFrequencies(3);
  MigrationSimulation sim(&schema_->source, &schema_->object, &queries_, freqs, data_.get(),
                          Config(PlannerKind::kLaa));
  auto opt = sim.Run(Situation::kOptSchema);
  auto pro = sim.Run(Situation::kProSchema);
  auto obj = sim.Run(Situation::kObjSchema);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  ASSERT_TRUE(pro.ok()) << pro.status().ToString();
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  // The paper's bounds at the overall level (small tolerance for the
  // intermediate-beats-endpoints effect documented in DESIGN.md §10).
  EXPECT_LE(opt->OverallCost(), pro->OverallCost() * 1.10);
  EXPECT_LT(pro->OverallCost(), obj->OverallCost());
  EXPECT_GT(pro->TotalMigrationIo(), 0.0);
}

TEST_F(TpcwIntegrationTest, EveryVisitedSchemaPreservesOldQueryResults) {
  // Drive the migration manually with LAA, checking every OLD query against
  // its source-schema baseline on every intermediate schema. (New queries
  // are checked once servable, against the object baseline.)
  auto opset = ComputeOperatorSet(schema_->source, schema_->object);
  ASSERT_TRUE(opset.ok());

  Database db(512);
  ASSERT_TRUE(data_->Materialize(&db, schema_->source).ok());
  Database object_db(512);
  ASSERT_TRUE(data_->Materialize(&object_db, schema_->object).ok());

  // Baselines.
  std::vector<std::vector<Row>> baseline(queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    Database* base_db = queries_[q].is_old ? &db : &object_db;
    const PhysicalSchema& base_schema = queries_[q].is_old ? schema_->source : schema_->object;
    auto rows = RunQuery(base_db, base_schema, queries_[q].query);
    ASSERT_TRUE(rows.ok()) << queries_[q].query.name << ": " << rows.status().ToString();
    baseline[q] = *rows;
  }

  auto freqs = IrregularFrequencies(5);
  std::vector<LogicalStats> stats{data_->ComputeStats()};
  PhysicalSchema current = schema_->source;
  std::vector<bool> applied(opset->size(), false);
  MigrationExecutor executor(&db, data_.get());

  for (size_t p = 0; p < 5; ++p) {
    MigrationContext ctx;
    ctx.current = &current;
    ctx.object = &schema_->object;
    ctx.opset = &*opset;
    ctx.applied = applied;
    ctx.phase_freqs = &freqs;
    ctx.phase_stats = &stats;
    ctx.queries = &queries_;
    auto laa = SelectOpsLaa(ctx, p, p == 0 ? 0 : p - 1);
    ASSERT_TRUE(laa.ok()) << laa.status().ToString();
    for (int op : laa->ops_to_apply) {
      ASSERT_TRUE(executor.Apply(opset->ops[static_cast<size_t>(op)], &current).ok());
      applied[static_cast<size_t>(op)] = true;
    }
    for (size_t q = 0; q < queries_.size(); ++q) {
      auto rows = RunQuery(&db, current, queries_[q].query);
      if (!rows.ok()) {
        // Only acceptable reason: a new attribute that does not exist yet.
        ASSERT_TRUE(rows.status().IsBindError())
            << queries_[q].query.name << ": " << rows.status().ToString();
        ASSERT_FALSE(queries_[q].is_old) << queries_[q].query.name;
        continue;
      }
      ASSERT_EQ(rows->size(), baseline[q].size())
          << queries_[q].query.name << " at phase " << p << "\n"
          << current.ToString();
      for (size_t r = 0; r < rows->size(); ++r) {
        ASSERT_TRUE(RowEq()((*rows)[r], baseline[q][r]))
            << queries_[q].query.name << " row " << r << ": " << RowToString((*rows)[r])
            << " vs " << RowToString(baseline[q][r]);
      }
    }
  }
  // Complete and re-verify everything on the final (object) schema.
  auto topo = opset->TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  for (int i : *topo) {
    if (!applied[static_cast<size_t>(i)]) {
      ASSERT_TRUE(executor.Apply(opset->ops[static_cast<size_t>(i)], &current).ok());
    }
  }
  ASSERT_TRUE(current.EquivalentTo(schema_->object));
  for (size_t q = 0; q < queries_.size(); ++q) {
    auto rows = RunQuery(&db, current, queries_[q].query);
    ASSERT_TRUE(rows.ok()) << queries_[q].query.name;
    ASSERT_EQ(rows->size(), baseline[q].size()) << queries_[q].query.name;
  }
}

TEST_F(TpcwIntegrationTest, GrowthChangesPhaseStatsAndData) {
  auto freqs = IrregularFrequencies(3);
  SimulationConfig config = Config(PlannerKind::kLaa);
  config.visible_rows = TpcwGrowthPlan(*schema_, ScaleTiny(), 3, 0.5);
  MigrationSimulation sim(&schema_->source, &schema_->object, &queries_, freqs, data_.get(),
                          config);
  // Growing stats: orders double from first to last phase.
  EXPECT_NEAR(static_cast<double>(sim.StatsAt(0).entity_rows[schema_->orders]),
              0.5 * static_cast<double>(sim.StatsAt(2).entity_rows[schema_->orders]), 2.0);
  auto pro = sim.Run(Situation::kProSchema);
  ASSERT_TRUE(pro.ok()) << pro.status().ToString();
  auto obj = sim.Run(Situation::kObjSchema);
  ASSERT_TRUE(obj.ok());
  EXPECT_LT(pro->OverallCost(), obj->OverallCost());
}

TEST_F(TpcwIntegrationTest, GaaSimulationReachesObject) {
  auto freqs = RegularFrequencies(3);
  MigrationSimulation sim(&schema_->source, &schema_->object, &queries_, freqs, data_.get(),
                          Config(PlannerKind::kGaa));
  auto pro = sim.Run(Situation::kProSchema);
  ASSERT_TRUE(pro.ok()) << pro.status().ToString();
  EXPECT_GT(sim.last_planner_evaluations(), 0u);
}

TEST_F(TpcwIntegrationTest, ForecastDrivenGaaStaysClose) {
  // With the regular (linear) trend, planning from collector forecasts must
  // land within a few percent of planning with the true schedule.
  auto freqs = RegularFrequencies(4);
  SimulationConfig truth_config = Config(PlannerKind::kGaa);
  MigrationSimulation truth_sim(&schema_->source, &schema_->object, &queries_, freqs,
                                data_.get(), truth_config);
  auto truth = truth_sim.Run(Situation::kProSchema);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();

  SimulationConfig forecast_config = Config(PlannerKind::kGaa);
  forecast_config.forecast_from_observations = true;
  MigrationSimulation forecast_sim(&schema_->source, &schema_->object, &queries_, freqs,
                                   data_.get(), forecast_config);
  auto forecast = forecast_sim.Run(Situation::kProSchema);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  EXPECT_LT(forecast->OverallCost(), truth->OverallCost() * 1.10);
  EXPECT_GT(forecast->OverallCost(), truth->OverallCost() * 0.90);
}

TEST_F(TpcwIntegrationTest, CommittedGaaPlanWithoutReplanning) {
  auto freqs = RegularFrequencies(3);
  SimulationConfig config = Config(PlannerKind::kGaa);
  config.replan_each_point = false;
  MigrationSimulation sim(&schema_->source, &schema_->object, &queries_, freqs, data_.get(),
                          config);
  auto pro = sim.Run(Situation::kProSchema);
  ASSERT_TRUE(pro.ok()) << pro.status().ToString();
}

}  // namespace
}  // namespace pse
