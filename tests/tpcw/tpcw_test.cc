// TPC-W schema / datagen / workload tests.
#include <gtest/gtest.h>

#include "core/mapping.h"
#include "core/rewriter.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tpcw/datagen.h"
#include "tpcw/queries.h"
#include "tpcw/schema.h"
#include "tpcw/workloads.h"

namespace pse {
namespace {

TEST(TpcwSchemaTest, BothSchemasValid) {
  auto schema = BuildTpcwSchema();
  EXPECT_TRUE(schema->source.Validate().ok());
  EXPECT_TRUE(schema->object.Validate().ok());
  EXPECT_EQ(schema->source.tables().size(), 8u);
  EXPECT_EQ(schema->object.tables().size(), 6u);
}

TEST(TpcwSchemaTest, OperatorSetShape) {
  auto schema = BuildTpcwSchema();
  auto opset = ComputeOperatorSet(schema->source, schema->object);
  ASSERT_TRUE(opset.ok()) << opset.status().ToString();
  size_t creates = 0, splits = 0, combines = 0;
  for (const auto& op : opset->ops) {
    switch (op.kind) {
      case OperatorKind::kCreateTable:
        ++creates;
        break;
      case OperatorKind::kSplitTable:
        ++splits;
        break;
      case OperatorKind::kCombineTable:
        ++combines;
        break;
    }
  }
  // i_abstract + c_tier; customer split; item+author, item+abstract,
  // profile+tier, address+country, cc+orders.
  EXPECT_EQ(creates, 2u);
  EXPECT_EQ(splits, 1u);
  EXPECT_EQ(combines, 5u);
  // Applying everything reaches the object schema (also asserted inside
  // ComputeOperatorSet, re-checked here).
  PhysicalSchema check = schema->source;
  auto order = opset->TopologicalOrder();
  ASSERT_TRUE(order.ok());
  for (int i : *order) {
    ASSERT_TRUE(ApplyOperator(opset->ops[static_cast<size_t>(i)], &check).ok());
  }
  EXPECT_TRUE(check.EquivalentTo(schema->object));
}

TEST(TpcwDatagenTest, CardinalitiesFollowScale) {
  auto schema = BuildTpcwSchema();
  TpcwScale scale = ScaleTiny();
  auto data = GenerateTpcwData(*schema, scale, 7);
  EXPECT_EQ(data->NumRows(schema->item), scale.num_items);
  EXPECT_EQ(data->NumRows(schema->customer), scale.num_customers);
  EXPECT_EQ(data->NumRows(schema->orders), scale.num_orders());
  EXPECT_EQ(data->NumRows(schema->order_line), scale.num_order_lines());
  EXPECT_EQ(data->NumRows(schema->cc_xacts), scale.num_orders());
  EXPECT_EQ(data->NumRows(schema->country), 92u);
}

TEST(TpcwDatagenTest, DeterministicForSeed) {
  auto schema = BuildTpcwSchema();
  auto d1 = GenerateTpcwData(*schema, ScaleTiny(), 7);
  auto d2 = GenerateTpcwData(*schema, ScaleTiny(), 7);
  const Row* r1 = d1->FindByKey(schema->item, 5);
  const Row* r2 = d2->FindByKey(schema->item, 5);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_TRUE(RowEq()(*r1, *r2));
}

TEST(TpcwDatagenTest, CoverageInvariants) {
  auto schema = BuildTpcwSchema();
  TpcwScale scale = ScaleTiny();
  auto data = GenerateTpcwData(*schema, scale, 7);
  // Every author has at least one item.
  std::vector<bool> author_has_item(scale.num_authors(), false);
  for (const Row& r : data->Rows(schema->item)) {
    auto v = data->AttrOfRow(schema->item, r, *schema->logical.AttrByName("i_a_id"));
    ASSERT_TRUE(v.ok());
    author_has_item[static_cast<size_t>(v->AsInt())] = true;
  }
  for (bool has : author_has_item) EXPECT_TRUE(has);
  // Exactly one cc_xact per order (keys align by construction).
  EXPECT_EQ(data->NumRows(schema->cc_xacts), data->NumRows(schema->orders));
}

TEST(TpcwDatagenTest, ScalePresets) {
  EXPECT_GT(Scale1GB().num_items, Scale100MB().num_items);
  EXPECT_EQ(Scale100MB().num_items / Scaled100MB().num_items, 20u);
  EXPECT_EQ(Scale1GB().num_items / Scaled1GB().num_items, 20u);
  EXPECT_EQ(ResolveScale("100mb").num_items, Scaled100MB().num_items);
  EXPECT_EQ(ResolveScale("1gb").num_items, Scaled1GB().num_items);
}

TEST(TpcwQueriesTest, AllTwentyQueriesLift) {
  auto schema = BuildTpcwSchema();
  auto workload = BuildTpcwWorkload(*schema);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  ASSERT_EQ(workload->size(), 20u);
  for (size_t i = 0; i < 10; ++i) EXPECT_TRUE((*workload)[i].is_old);
  for (size_t i = 10; i < 20; ++i) EXPECT_FALSE((*workload)[i].is_old);
}

TEST(TpcwQueriesTest, EveryQueryRewritesOnBothEndpoints) {
  auto schema = BuildTpcwSchema();
  auto workload = BuildTpcwWorkload(*schema);
  ASSERT_TRUE(workload.ok());
  for (const auto& wq : *workload) {
    // Every query must run on the object schema (it has everything).
    auto on_object = RewriteQuery(wq.query, schema->object);
    EXPECT_TRUE(on_object.ok()) << wq.query.name << ": " << on_object.status().ToString();
    // Old queries must run on the source schema; new queries touching new
    // attributes must NOT (BindError -> penalty pricing).
    auto on_source = RewriteQuery(wq.query, schema->source);
    if (wq.is_old) {
      EXPECT_TRUE(on_source.ok()) << wq.query.name << ": " << on_source.status().ToString();
    }
  }
}

TEST(TpcwQueriesTest, QueriesProduceRowsOnMaterializedData) {
  auto schema = BuildTpcwSchema();
  auto data = GenerateTpcwData(*schema, ScaleTiny(), 7);
  Database db(1024);
  ASSERT_TRUE(data->Materialize(&db, schema->object).ok());
  auto workload = BuildTpcwWorkload(*schema);
  ASSERT_TRUE(workload.ok());
  DatabaseCatalogView view(&db);
  size_t nonempty = 0;
  for (const auto& wq : *workload) {
    auto bound = RewriteQuery(wq.query, schema->object);
    ASSERT_TRUE(bound.ok()) << wq.query.name;
    auto plan = PlanQuery(*bound, view);
    ASSERT_TRUE(plan.ok()) << wq.query.name << ": " << plan.status().ToString();
    auto rows = ExecutePlan(**plan, &db);
    ASSERT_TRUE(rows.ok()) << wq.query.name << ": " << rows.status().ToString();
    if (!rows->empty()) ++nonempty;
  }
  // Every query should find data at this scale.
  EXPECT_EQ(nonempty, workload->size());
}

TEST(TpcwWorkloadsTest, Fig9MatrixMatchesPaper) {
  auto freqs = Fig9IrregularFrequencies();
  ASSERT_EQ(freqs.size(), 5u);
  ASSERT_EQ(freqs[0].size(), 20u);
  // Spot checks against the printed table.
  EXPECT_EQ(freqs[0][0], 50);   // O1 @ P0-P1
  EXPECT_EQ(freqs[4][0], 10);   // O1 @ P4-P5
  EXPECT_EQ(freqs[3][8], 40);   // O9 @ P3-P4
  EXPECT_EQ(freqs[0][10], 10);  // N1 @ P0-P1
  EXPECT_EQ(freqs[4][10], 50);  // N1 @ P4-P5
  EXPECT_EQ(freqs[4][16], 70);  // N7 @ P4-P5
}

TEST(TpcwWorkloadsTest, OldDecreasesNewIncreases) {
  for (size_t points : {2u, 3u, 4u, 5u, 7u}) {
    auto freqs = IrregularFrequencies(points);
    ASSERT_EQ(freqs.size(), points);
    for (size_t q = 0; q < 10; ++q) {
      EXPECT_GE(freqs[0][q], freqs[points - 1][q]) << "O" << q + 1;
      EXPECT_LE(freqs[0][q + 10], freqs[points - 1][q + 10]) << "N" << q + 1;
    }
  }
}

TEST(TpcwWorkloadsTest, RegularIsLinear) {
  auto freqs = RegularFrequencies(5);
  // O1's stream drifts 50 -> 10; midpoint-sampled phases: 46, 38, 30, 22, 14.
  for (size_t p = 0; p < 5; ++p) EXPECT_NEAR(freqs[p][0], 46.0 - 8.0 * p, 1e-9);
  // Monotone for every query.
  for (size_t q = 0; q < 20; ++q) {
    for (size_t p = 1; p < 5; ++p) {
      if (q < 10) {
        EXPECT_LE(freqs[p][q], freqs[p - 1][q]);
      } else {
        EXPECT_GE(freqs[p][q], freqs[p - 1][q]);
      }
    }
  }
}

TEST(TpcwWorkloadsTest, VolumeConservedAcrossPointCounts) {
  // Every schedule redistributes the same total stream per query.
  auto five = Fig9IrregularFrequencies();
  std::vector<double> totals(20, 0);
  for (const auto& phase : five) {
    for (size_t q = 0; q < 20; ++q) totals[q] += phase[q];
  }
  for (size_t points : {2u, 3u, 4u, 5u, 6u}) {
    for (auto* make : {&RegularFrequencies}) {
      auto freqs = (*make)(points);
      for (size_t q = 0; q < 20; ++q) {
        double sum = 0;
        for (const auto& phase : freqs) sum += phase[q];
        EXPECT_NEAR(sum, totals[q], 1e-6) << "regular points=" << points << " q=" << q;
      }
    }
    auto irr = IrregularFrequencies(points);
    for (size_t q = 0; q < 20; ++q) {
      double sum = 0;
      for (const auto& phase : irr) sum += phase[q];
      EXPECT_NEAR(sum, totals[q], 1e-6) << "irregular points=" << points << " q=" << q;
    }
  }
}

TEST(TpcwWorkloadsTest, TableRendering) {
  std::string table = FrequenciesToTable(Fig9IrregularFrequencies());
  EXPECT_NE(table.find("O1"), std::string::npos);
  EXPECT_NE(table.find("N10"), std::string::npos);
  EXPECT_NE(table.find("P4-P5"), std::string::npos);
}

}  // namespace
}  // namespace pse
