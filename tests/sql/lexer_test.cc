#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace pse {
namespace {

TEST(LexerTest, BasicTokens) {
  auto r = Tokenize("SELECT a, b FROM t WHERE a = 1;");
  ASSERT_TRUE(r.ok());
  const auto& toks = *r;
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[2].type, TokenType::kComma);
  EXPECT_EQ(toks.back().type, TokenType::kEnd);
}

TEST(LexerTest, Numbers) {
  auto r = Tokenize("42 3.14");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kInteger);
  EXPECT_EQ((*r)[0].int_value, 42);
  EXPECT_EQ((*r)[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*r)[1].float_value, 3.14);
}

TEST(LexerTest, StringsWithEscapedQuote) {
  auto r = Tokenize("'it''s'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kString);
  EXPECT_EQ((*r)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, Operators) {
  auto r = Tokenize("= <> != < <= > >= + - * / . ( )");
  ASSERT_TRUE(r.ok());
  std::vector<TokenType> want{TokenType::kEq, TokenType::kNe, TokenType::kNe,
                              TokenType::kLt, TokenType::kLe, TokenType::kGt,
                              TokenType::kGe, TokenType::kPlus, TokenType::kMinus,
                              TokenType::kStar, TokenType::kSlash, TokenType::kDot,
                              TokenType::kLParen, TokenType::kRParen, TokenType::kEnd};
  ASSERT_EQ(r->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ((*r)[i].type, want[i]) << i;
}

TEST(LexerTest, CommentsSkipped) {
  auto r = Tokenize("SELECT -- comment here\n 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);  // SELECT, 1, END
  EXPECT_EQ((*r)[1].int_value, 1);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Tokenize("SELECT @x").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(LexerTest, QualifiedName) {
  auto r = Tokenize("t.col");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].text, "t");
  EXPECT_EQ((*r)[1].type, TokenType::kDot);
  EXPECT_EQ((*r)[2].text, "col");
}

}  // namespace
}  // namespace pse
