#include "sql/parser.h"

#include <gtest/gtest.h>

namespace pse {
namespace {

Statement MustParse(const std::string& sql) {
  auto r = ParseSql(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? std::move(*r) : Statement{};
}

TEST(ParserTest, SimpleSelect) {
  Statement s = MustParse("SELECT a, b FROM t");
  ASSERT_EQ(s.kind, Statement::Kind::kSelect);
  ASSERT_EQ(s.select->items.size(), 2u);
  EXPECT_EQ(s.select->items[0].expr->ToString(), "a");
  ASSERT_EQ(s.select->from.size(), 1u);
  EXPECT_EQ(s.select->from[0].table, "t");
}

TEST(ParserTest, SelectStar) {
  Statement s = MustParse("SELECT * FROM t");
  ASSERT_EQ(s.select->items.size(), 1u);
  EXPECT_TRUE(s.select->items[0].star);
}

TEST(ParserTest, DistinctAndAliases) {
  Statement s = MustParse("SELECT DISTINCT a AS x, b y FROM t u");
  EXPECT_TRUE(s.select->distinct);
  EXPECT_EQ(s.select->items[0].alias, "x");
  EXPECT_EQ(s.select->items[1].alias, "y");
  EXPECT_EQ(s.select->from[0].alias, "u");
}

TEST(ParserTest, Aggregates) {
  Statement s = MustParse("SELECT COUNT(*), SUM(a), AVG(b), MIN(c), MAX(d) FROM t");
  ASSERT_EQ(s.select->items.size(), 5u);
  EXPECT_EQ(s.select->items[0].agg, AggFunc::kCountStar);
  EXPECT_EQ(s.select->items[1].agg, AggFunc::kSum);
  EXPECT_EQ(s.select->items[2].agg, AggFunc::kAvg);
  EXPECT_EQ(s.select->items[3].agg, AggFunc::kMin);
  EXPECT_EQ(s.select->items[4].agg, AggFunc::kMax);
}

TEST(ParserTest, JoinOn) {
  Statement s = MustParse(
      "SELECT t1.a FROM t1 JOIN t2 ON t1.id = t2.id INNER JOIN t3 ON t2.x = t3.x");
  ASSERT_EQ(s.select->from.size(), 3u);
  ASSERT_EQ(s.select->conjuncts.size(), 2u);
  EXPECT_EQ(s.select->conjuncts[0]->ToString(), "t1.id = t2.id");
}

TEST(ParserTest, CommaJoinWithWhere) {
  Statement s = MustParse("SELECT a FROM t1, t2 WHERE t1.id = t2.id AND t1.v > 3");
  ASSERT_EQ(s.select->from.size(), 2u);
  ASSERT_EQ(s.select->conjuncts.size(), 1u);
}

TEST(ParserTest, WhereOperatorsPrecedence) {
  Statement s = MustParse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  // AND binds tighter: a=1 OR (b=2 AND c=3).
  EXPECT_EQ(s.select->conjuncts[0]->ToString(), "(a = 1 OR (b = 2 AND c = 3))");
}

TEST(ParserTest, ArithmeticPrecedence) {
  Statement s = MustParse("SELECT a + b * 2 FROM t");
  EXPECT_EQ(s.select->items[0].expr->ToString(), "(a + (b * 2))");
}

TEST(ParserTest, BetweenDesugars) {
  Statement s = MustParse("SELECT a FROM t WHERE a BETWEEN 1 AND 5");
  EXPECT_EQ(s.select->conjuncts[0]->ToString(), "(a >= 1 AND a <= 5)");
}

TEST(ParserTest, LikeInIsNull) {
  Statement s = MustParse(
      "SELECT a FROM t WHERE a LIKE 'x%' AND b NOT LIKE '%y' AND c IN (1, 2) AND d IS NOT NULL");
  std::string str = s.select->conjuncts[0]->ToString();
  EXPECT_NE(str.find("a LIKE 'x%'"), std::string::npos);
  EXPECT_NE(str.find("b NOT LIKE '%y'"), std::string::npos);
  EXPECT_NE(str.find("c IN (1, 2)"), std::string::npos);
  EXPECT_NE(str.find("d IS NOT NULL"), std::string::npos);
}

TEST(ParserTest, GroupByOrderByLimit) {
  Statement s = MustParse(
      "SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY n DESC, 1 ASC LIMIT 10");
  ASSERT_EQ(s.select->group_by.size(), 1u);
  ASSERT_EQ(s.select->order_by.size(), 2u);
  EXPECT_TRUE(s.select->order_by[0].desc);
  EXPECT_FALSE(s.select->order_by[0].position.has_value());
  ASSERT_TRUE(s.select->order_by[1].position.has_value());
  EXPECT_EQ(*s.select->order_by[1].position, 1);
  EXPECT_EQ(s.select->limit, 10);
}

TEST(ParserTest, HavingClause) {
  Statement s = MustParse(
      "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING n > 5 ORDER BY 1");
  ASSERT_NE(s.select->having, nullptr);
  EXPECT_EQ(s.select->having->ToString(), "n > 5");
  Statement no_having = MustParse("SELECT a FROM t GROUP BY a");
  EXPECT_EQ(no_having.select->having, nullptr);
}

TEST(ParserTest, NegativeNumbersAndNull) {
  Statement s = MustParse("SELECT a FROM t WHERE a > -5 AND b IS NULL");
  std::string str = s.select->conjuncts[0]->ToString();
  EXPECT_NE(str.find("a > -5"), std::string::npos);
}

TEST(ParserTest, Insert) {
  Statement s = MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)");
  ASSERT_EQ(s.kind, Statement::Kind::kInsert);
  EXPECT_EQ(s.insert->table, "t");
  ASSERT_EQ(s.insert->columns.size(), 2u);
  ASSERT_EQ(s.insert->rows.size(), 2u);
  EXPECT_EQ(s.insert->rows[0][0].AsInt(), 1);
  EXPECT_EQ(s.insert->rows[0][1].AsString(), "x");
  EXPECT_TRUE(s.insert->rows[1][1].is_null());
}

TEST(ParserTest, InsertPositional) {
  Statement s = MustParse("INSERT INTO t VALUES (1, 2.5, 'z')");
  EXPECT_TRUE(s.insert->columns.empty());
  ASSERT_EQ(s.insert->rows[0].size(), 3u);
}

TEST(ParserTest, Update) {
  Statement s = MustParse("UPDATE t SET a = a + 1, b = 'v' WHERE id = 3");
  ASSERT_EQ(s.kind, Statement::Kind::kUpdate);
  ASSERT_EQ(s.update->assignments.size(), 2u);
  EXPECT_EQ(s.update->assignments[0].first, "a");
  ASSERT_NE(s.update->where, nullptr);
}

TEST(ParserTest, Delete) {
  Statement s = MustParse("DELETE FROM t WHERE a < 5");
  ASSERT_EQ(s.kind, Statement::Kind::kDelete);
  EXPECT_EQ(s.del->table, "t");
  ASSERT_NE(s.del->where, nullptr);
  Statement all = MustParse("DELETE FROM t");
  EXPECT_EQ(all.del->where, nullptr);
}

TEST(ParserTest, CreateTable) {
  Statement s = MustParse(
      "CREATE TABLE book (book_id BIGINT NOT NULL, title VARCHAR(60), price DOUBLE, "
      "in_print BOOLEAN, PRIMARY KEY (book_id))");
  ASSERT_EQ(s.kind, Statement::Kind::kCreateTable);
  const TableSchema& schema = s.create_table->schema;
  EXPECT_EQ(schema.name(), "book");
  ASSERT_EQ(schema.num_columns(), 4u);
  EXPECT_EQ(schema.column(0).type, TypeId::kInt64);
  EXPECT_FALSE(schema.column(0).nullable);
  EXPECT_EQ(schema.column(1).type, TypeId::kVarchar);
  EXPECT_EQ(schema.column(1).avg_width, 60u);
  EXPECT_EQ(schema.column(2).type, TypeId::kDouble);
  EXPECT_EQ(schema.column(3).type, TypeId::kBoolean);
  ASSERT_EQ(schema.key_columns().size(), 1u);
  EXPECT_EQ(schema.key_columns()[0], "book_id");
}

TEST(ParserTest, CreateIndex) {
  Statement s = MustParse("CREATE INDEX idx ON t (col)");
  ASSERT_EQ(s.kind, Statement::Kind::kCreateIndex);
  EXPECT_EQ(s.create_index->table, "t");
  EXPECT_EQ(s.create_index->column, "col");
  Statement anon = MustParse("CREATE INDEX ON t (col)");
  EXPECT_EQ(anon.create_index->column, "col");
}

TEST(ParserTest, Analyze) {
  Statement s = MustParse("ANALYZE book");
  ASSERT_EQ(s.kind, Statement::Kind::kAnalyze);
  EXPECT_EQ(s.analyze->table, "book");
  Statement all = MustParse("ANALYZE");
  EXPECT_EQ(all.analyze->table, "");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a t").ok());               // missing FROM
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());    // dangling WHERE
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES 1").ok());   // missing parens
  EXPECT_FALSE(ParseSql("SELECT a FROM t LIMIT x").ok());  // non-int limit
  EXPECT_FALSE(ParseSql("SELECT a FROM t; garbage").ok()); // trailing junk
  EXPECT_FALSE(ParseSql("UPDATE t SET").ok());
  EXPECT_FALSE(ParseSql("CREATE TABLE t (a FANCYTYPE)").ok());
}

TEST(ParserTest, DdlRoundTrip) {
  TableSchema schema("book",
                     {Column("book_id", TypeId::kInt64, 0, false),
                      Column("title", TypeId::kVarchar, 60),
                      Column("price", TypeId::kDouble)},
                     {"book_id"});
  Statement s = MustParse(schema.ToDdl());
  ASSERT_EQ(s.kind, Statement::Kind::kCreateTable);
  const TableSchema& back = s.create_table->schema;
  EXPECT_EQ(back.name(), "book");
  ASSERT_EQ(back.num_columns(), 3u);
  EXPECT_EQ(back.column(0).type, TypeId::kInt64);
  EXPECT_FALSE(back.column(0).nullable);
  EXPECT_EQ(back.column(1).avg_width, 60u);
  EXPECT_EQ(back.key_columns()[0], "book_id");
}

TEST(ParserTest, TrailingSemicolonOk) {
  EXPECT_TRUE(ParseSql("SELECT a FROM t;").ok());
}

}  // namespace
}  // namespace pse
