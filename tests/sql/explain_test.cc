// EXPLAIN output: the plan text names the operators users should expect.
#include <gtest/gtest.h>

#include "sql/session.h"

namespace pse {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(256);
    session_ = std::make_unique<Session>(db_.get());
    auto must = [&](const std::string& sql) {
      auto r = session_->Execute(sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    };
    must(
        "CREATE TABLE item (i_id BIGINT NOT NULL, name VARCHAR(20), cat BIGINT, "
        "PRIMARY KEY (i_id))");
    must(
        "CREATE TABLE sale (s_id BIGINT NOT NULL, i_id BIGINT, qty BIGINT, "
        "PRIMARY KEY (s_id))");
    // Bulk-load through the API (12k SQL round-trips would dominate the
    // test); 2000 items x 5 sales each makes the fanout low enough that the
    // planner's INLJ choice pays off.
    for (int64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(db_->Insert("item", {Value::Int(i), Value::Varchar("n" + std::to_string(i)),
                                       Value::Int(i % 5)})
                      .ok());
    }
    for (int64_t s = 0; s < 10000; ++s) {
      ASSERT_TRUE(
          db_->Insert("sale", {Value::Int(s), Value::Int(s % 2000), Value::Int(1)}).ok());
    }
    must("CREATE INDEX ON sale (i_id)");
    must("ANALYZE");
  }

  std::string Plan(const std::string& sql) {
    auto p = session_->Explain(sql);
    EXPECT_TRUE(p.ok()) << sql << ": " << p.status().ToString();
    return p.ok() ? *p : "";
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(ExplainTest, SeqScanForUnindexedFilter) {
  std::string plan = Plan("SELECT i_id FROM item WHERE cat = 3");
  EXPECT_NE(plan.find("SeqScan(item"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Project"), std::string::npos);
}

TEST_F(ExplainTest, IndexScanForKeyPredicate) {
  std::string plan = Plan("SELECT name FROM item WHERE i_id BETWEEN 10 AND 30");
  EXPECT_NE(plan.find("IndexScan(item.i_id in [10, 30]"), std::string::npos) << plan;
}

TEST_F(ExplainTest, InljForSelectiveJoin) {
  std::string plan =
      Plan("SELECT s.s_id FROM item i JOIN sale s ON i.i_id = s.i_id WHERE i.i_id = 7");
  EXPECT_NE(plan.find("IndexNLJoin"), std::string::npos) << plan;
}

TEST_F(ExplainTest, HashJoinForFullJoin) {
  std::string plan = Plan("SELECT s.s_id FROM item i JOIN sale s ON i.i_id = s.i_id");
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
}

TEST_F(ExplainTest, AggregateAndSortShown) {
  std::string plan = Plan(
      "SELECT cat, COUNT(*) AS n FROM item GROUP BY cat HAVING n > 1 ORDER BY 2 DESC LIMIT 3");
  EXPECT_NE(plan.find("Aggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Sort"), std::string::npos);
  EXPECT_NE(plan.find("Limit(3)"), std::string::npos);
  EXPECT_NE(plan.find("Filter(n > 1)"), std::string::npos);
}

TEST_F(ExplainTest, DistinctShown) {
  std::string plan = Plan("SELECT DISTINCT cat FROM item");
  EXPECT_NE(plan.find("Distinct"), std::string::npos) << plan;
}

TEST_F(ExplainTest, ExplainOfNonSelectFails) {
  EXPECT_FALSE(session_->Explain("DELETE FROM item").ok());
}

}  // namespace
}  // namespace pse
