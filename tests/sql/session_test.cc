// End-to-end SQL tests: parse -> bind -> plan -> execute.
#include "sql/session.h"

#include <gtest/gtest.h>

namespace pse {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(256);
    session_ = std::make_unique<Session>(db_.get());
    Must(
        "CREATE TABLE author (author_id BIGINT NOT NULL, name VARCHAR(24), country VARCHAR(16),"
        " PRIMARY KEY (author_id))");
    Must(
        "CREATE TABLE book (book_id BIGINT NOT NULL, title VARCHAR(40), author_id BIGINT,"
        " price DOUBLE, PRIMARY KEY (book_id))");
    for (int a = 0; a < 5; ++a) {
      Must("INSERT INTO author VALUES (" + std::to_string(a) + ", 'author-" + std::to_string(a) +
           "', 'country-" + std::to_string(a % 2) + "')");
    }
    for (int b = 0; b < 40; ++b) {
      Must("INSERT INTO book VALUES (" + std::to_string(b) + ", 'title-" + std::to_string(b) +
           "', " + std::to_string(b % 5) + ", " + std::to_string(1.5 * (b % 8)) + ")");
    }
    Must("ANALYZE");
  }

  ExecResult Must(const std::string& sql) {
    auto r = session_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : ExecResult{};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionTest, SelectAll) {
  ExecResult r = Must("SELECT * FROM author");
  EXPECT_EQ(r.rows.size(), 5u);
  ASSERT_EQ(r.columns.size(), 3u);
  EXPECT_EQ(r.columns[0], "author_id");
}

TEST_F(SessionTest, WhereFilter) {
  ExecResult r = Must("SELECT book_id FROM book WHERE price > 9.0");
  EXPECT_EQ(r.rows.size(), 5u);  // price=10.5 when b%8==7: books 7,15,23,31,39
}

TEST_F(SessionTest, PointLookupViaIndex) {
  ExecResult r = Must("SELECT title FROM book WHERE book_id = 17");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "title-17");
  // EXPLAIN confirms the index is used.
  auto plan = session_->Explain("SELECT title FROM book WHERE book_id = 17");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos);
}

TEST_F(SessionTest, JoinQuery) {
  ExecResult r = Must(
      "SELECT b.title, a.name FROM book b JOIN author a ON b.author_id = a.author_id "
      "WHERE a.name = 'author-2'");
  EXPECT_EQ(r.rows.size(), 8u);  // books 2,7,12,...,37
  for (const auto& row : r.rows) EXPECT_EQ(row[1].AsString(), "author-2");
}

TEST_F(SessionTest, CommaJoinSameResult) {
  ExecResult r = Must(
      "SELECT b.title FROM book b, author a WHERE b.author_id = a.author_id AND "
      "a.name = 'author-2'");
  EXPECT_EQ(r.rows.size(), 8u);
}

TEST_F(SessionTest, GroupByHaving) {
  ExecResult r = Must(
      "SELECT a.country, COUNT(*) AS n, AVG(b.price) AS avg_price FROM book b "
      "JOIN author a ON b.author_id = a.author_id GROUP BY a.country ORDER BY 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "country-0");
  // country-0 has authors 0,2,4 -> 24 books; country-1 has 1,3 -> 16.
  EXPECT_EQ(r.rows[0][1].AsInt(), 24);
  EXPECT_EQ(r.rows[1][1].AsInt(), 16);
}

TEST_F(SessionTest, OrderByAliasAndLimit) {
  ExecResult r = Must("SELECT book_id, price FROM book ORDER BY price DESC, book_id LIMIT 3");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 10.5);
  EXPECT_EQ(r.rows[0][0].AsInt(), 7);
}

TEST_F(SessionTest, SelectDistinct) {
  ExecResult r = Must("SELECT DISTINCT author_id FROM book");
  EXPECT_EQ(r.rows.size(), 5u);
}

TEST_F(SessionTest, BetweenAndIn) {
  ExecResult r1 = Must("SELECT book_id FROM book WHERE book_id BETWEEN 10 AND 14");
  EXPECT_EQ(r1.rows.size(), 5u);
  ExecResult r2 = Must("SELECT book_id FROM book WHERE author_id IN (0, 1)");
  EXPECT_EQ(r2.rows.size(), 16u);
}

TEST_F(SessionTest, LikePatterns) {
  ExecResult r = Must("SELECT name FROM author WHERE name LIKE 'author-%'");
  EXPECT_EQ(r.rows.size(), 5u);
  ExecResult r2 = Must("SELECT name FROM author WHERE name LIKE '%-3'");
  EXPECT_EQ(r2.rows.size(), 1u);
}

TEST_F(SessionTest, InsertThenQuery) {
  Must("INSERT INTO book (book_id, title, author_id, price) VALUES (100, 'new book', 0, 9.99)");
  ExecResult r = Must("SELECT title FROM book WHERE book_id = 100");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "new book");
}

TEST_F(SessionTest, InsertNotNullViolation) {
  auto r = session_->Execute("INSERT INTO book (title) VALUES ('orphan')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(SessionTest, UpdateRows) {
  ExecResult r = Must("UPDATE book SET price = price * 2 WHERE author_id = 1");
  EXPECT_EQ(r.affected, 8u);
  ExecResult check = Must("SELECT MAX(price) AS m FROM book WHERE author_id = 1");
  EXPECT_DOUBLE_EQ(check.rows[0][0].AsDouble(), 21.0);
}

TEST_F(SessionTest, UpdateKeyMaintainsIndex) {
  Must("UPDATE book SET book_id = 999 WHERE book_id = 5");
  ExecResult gone = Must("SELECT * FROM book WHERE book_id = 5");
  EXPECT_TRUE(gone.rows.empty());
  ExecResult found = Must("SELECT title FROM book WHERE book_id = 999");
  ASSERT_EQ(found.rows.size(), 1u);
  EXPECT_EQ(found.rows[0][0].AsString(), "title-5");
}

TEST_F(SessionTest, DeleteRows) {
  ExecResult r = Must("DELETE FROM book WHERE price = 0.0");
  EXPECT_EQ(r.affected, 5u);  // b%8==0: books 0,8,16,24,32
  ExecResult left = Must("SELECT COUNT(*) AS n FROM book");
  EXPECT_EQ(left.rows[0][0].AsInt(), 35);
}

TEST_F(SessionTest, DeleteAll) {
  Must("DELETE FROM author");
  ExecResult r = Must("SELECT COUNT(*) AS n FROM author");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

TEST_F(SessionTest, CreateIndexAndUseIt) {
  Must("CREATE INDEX ON book (author_id)");
  auto plan = session_->Explain("SELECT title FROM book WHERE author_id = 3");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos);
  ExecResult r = Must("SELECT title FROM book WHERE author_id = 3");
  EXPECT_EQ(r.rows.size(), 8u);
}

TEST_F(SessionTest, BindErrors) {
  EXPECT_FALSE(session_->Execute("SELECT nope FROM book").ok());
  EXPECT_FALSE(session_->Execute("SELECT title FROM missing_table").ok());
  EXPECT_FALSE(session_->Execute("SELECT b.title FROM book b, book b").ok());
  // Ambiguous unqualified column across two tables.
  EXPECT_FALSE(
      session_->Execute("SELECT author_id FROM book b, author a WHERE b.author_id = a.author_id")
          .ok());
}

TEST_F(SessionTest, AggregatesWithNulls) {
  Must("INSERT INTO book (book_id, title, author_id) VALUES (200, 'no price', 0)");
  ExecResult r = Must("SELECT COUNT(*) AS all_rows, COUNT(price) AS priced FROM book");
  EXPECT_EQ(r.rows[0][0].AsInt(), 41);
  EXPECT_EQ(r.rows[0][1].AsInt(), 40);
}

TEST_F(SessionTest, HavingFiltersGroups) {
  ExecResult r = Must(
      "SELECT author_id, COUNT(*) AS n FROM book GROUP BY author_id "
      "HAVING n > 0 ORDER BY 1");
  EXPECT_EQ(r.rows.size(), 5u);
  ExecResult none = Must(
      "SELECT author_id, COUNT(*) AS n FROM book GROUP BY author_id "
      "HAVING n > 100");
  EXPECT_TRUE(none.rows.empty());
  // Group columns are addressable too.
  ExecResult some = Must(
      "SELECT author_id, SUM(price) AS total FROM book GROUP BY author_id "
      "HAVING author_id < 2 ORDER BY 1");
  ASSERT_EQ(some.rows.size(), 2u);
  EXPECT_EQ(some.rows[0][0].AsInt(), 0);
}

TEST_F(SessionTest, CountDistinct) {
  ExecResult r = Must("SELECT COUNT(DISTINCT author_id) AS a, COUNT(*) AS n FROM book");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  EXPECT_EQ(r.rows[0][1].AsInt(), 40);
  // Grouped, and NULLs are ignored.
  Must("INSERT INTO book (book_id, title) VALUES (900, 'no author')");
  ExecResult g = Must(
      "SELECT author_id, COUNT(DISTINCT price) AS p FROM book GROUP BY author_id ORDER BY 1");
  ASSERT_EQ(g.rows.size(), 6u);  // 5 authors + the NULL group
  // Each author has books with 8 distinct prices? b%5 fixes author; prices
  // cycle b%8 -> per author 8 distinct.
  EXPECT_EQ(g.rows[1][1].AsInt(), 8);
}

TEST_F(SessionTest, HavingWithoutAggregationRejected) {
  auto r = session_->Execute("SELECT book_id FROM book HAVING book_id > 3");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBindError());
}

TEST_F(SessionTest, DropTable) {
  Must("DROP TABLE author");
  EXPECT_FALSE(db_->HasTable("author"));
  EXPECT_FALSE(session_->Execute("SELECT * FROM author").ok());
  EXPECT_FALSE(session_->Execute("DROP TABLE author").ok());  // already gone
  // Re-creation under the same name works.
  Must("CREATE TABLE author (author_id BIGINT NOT NULL, PRIMARY KEY (author_id))");
  EXPECT_TRUE(db_->HasTable("author"));
}

TEST_F(SessionTest, ScalarExpressionProjection) {
  ExecResult r = Must("SELECT book_id * 10 + 1 AS x FROM book WHERE book_id = 3");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 31);
}

}  // namespace
}  // namespace pse
