// Fleet property tests: a fleet of randomized tenant shards, each crashed
// and resumed at a random batch mid-schedule, must converge row-for-row to
// uninterrupted single-tenant reference runs; per-shard ProvenanceStores
// must never cross-contaminate; and TenantShard::Open must re-position a
// durable shard anywhere on the shared trajectory.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/writability.h"
#include "common/rng.h"
#include "fleet/schedule.h"
#include "fleet/tenant_shard.h"
#include "storage/disk_manager.h"
#include "tests/common/test_db_builder.h"

namespace pse {
namespace {

using testutil::Bookstore;
using testutil::SameRows;
using testutil::TableRows;

/// Per-tenant data sizes differ so convergence is checked on genuinely
/// distinct instances, not one instance copied N times.
std::unique_ptr<LogicalDatabase> TenantData(const Bookstore& bs, size_t tenant) {
  return bs.MakeData(3 + static_cast<int>(tenant % 3), 2 + static_cast<int>(tenant % 4),
                     18 + 5 * static_cast<int>(tenant));
}

/// Drains `shard` to the end of `schedule` with small batches.
void DrainShard(TenantShard* shard, const FleetSchedule& schedule) {
  MigrationOptions options;
  options.batch_rows = 16;
  while (!shard->done(schedule)) {
    Status s = shard->AdvanceOneOp(schedule, options);
    ASSERT_TRUE(s.ok()) << shard->name() << " step " << shard->step() << ": " << s.ToString();
  }
}

/// Sorted dump of every table of `schema` in `db`.
std::vector<std::vector<Row>> DumpTables(Database* db, const PhysicalSchema& schema) {
  std::vector<std::vector<Row>> out;
  for (const PhysicalTable& t : schema.tables()) out.push_back(TableRows(db, t.name));
  return out;
}

class FleetPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    auto schedule = PlanFleetSchedule(bs_->source, bs_->object);
    ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
    schedule_ = std::make_unique<FleetSchedule>(std::move(*schedule));
    ASSERT_GT(schedule_->steps(), 2u) << "the bookstore trajectory must have several steps";
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<FleetSchedule> schedule_;
};

// The tentpole property: every tenant of a fleet is killed at a random
// (step, batch) of the shared schedule — mid-copy, torn state on disk —
// reopened from its file, resumed, and drained. The final contents must be
// row-for-row identical to the same tenant's uninterrupted in-memory run.
TEST_F(FleetPropertyTest, CrashedAndResumedFleetConvergesToUninterruptedRuns) {
  constexpr size_t kTenants = 6;
  Rng rng(20260808);
  const PhysicalSchema& final_schema = schedule_->at(schedule_->steps());

  for (size_t t = 0; t < kTenants; ++t) {
    SCOPED_TRACE("tenant " + std::to_string(t));
    std::unique_ptr<LogicalDatabase> data = TenantData(*bs_, t);

    // Reference: the same tenant migrated in one uninterrupted run.
    std::vector<std::vector<Row>> want;
    {
      ShardOptions options;
      options.pool_pages = 256;
      auto ref = TenantShard::Create(1000 + t, bs_->source, data.get(), std::move(options));
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      DrainShard(ref->get(), *schedule_);
      want = DumpTables((*ref)->db(), final_schema);
    }

    // Crash run: file-backed, killed after a random batch of a random step.
    const std::string path =
        testing::TempDir() + "/pse_fleet_shard_" + std::to_string(t) + ".db";
    std::remove(path.c_str());
    const size_t kill_step = rng.Index(schedule_->steps());
    const uint64_t kill_batch = static_cast<uint64_t>(rng.UniformInt(0, 4));
    SCOPED_TRACE("kill at step " + std::to_string(kill_step) + " batch " +
                 std::to_string(kill_batch));
    {
      auto file = FileDiskManager::Open(path);
      ASSERT_TRUE(file.ok()) << file.status().ToString();
      ShardOptions options;
      options.pool_pages = 256;
      options.disk = std::move(*file);
      auto created = TenantShard::Create(t, bs_->source, data.get(), std::move(options));
      ASSERT_TRUE(created.ok()) << created.status().ToString();
      std::unique_ptr<TenantShard> shard = std::move(*created);

      MigrationOptions clean;
      clean.batch_rows = 16;
      for (size_t s = 0; s < kill_step; ++s) {
        ASSERT_TRUE(shard->AdvanceOneOp(*schedule_, clean).ok());
      }
      MigrationOptions crash;
      crash.batch_rows = 16;
      crash.rollback_on_error = false;  // leave the torn state on disk
      crash.on_batch = [kill_batch](const MigrationBatchEvent& event) -> Status {
        if (event.batch_index >= kill_batch) return Status::Internal("simulated crash");
        return Status::OK();
      };
      Status s = shard->AdvanceOneOp(*schedule_, crash);
      // kill_batch past the operator's batch count: the op completed; the
      // shard still "crashes" (is dropped) between operators.
      if (s.ok()) {
        EXPECT_EQ(shard->step(), kill_step + 1);
      } else {
        EXPECT_EQ(shard->step(), kill_step);
      }
    }  // the crash: the Database (and every unflushed page) dies here

    auto file = FileDiskManager::Open(path);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    auto reopened = TenantShard::Open(t, *schedule_, data.get(), std::move(*file), 256);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<TenantShard> shard = std::move(*reopened);
    // Open either rolled the journaled operator forward (step == kill_step+1)
    // or re-positioned between operators; never behind the last clean op.
    EXPECT_GE(shard->step(), kill_step);
    EXPECT_LE(shard->step(), kill_step + 1);

    DrainShard(shard.get(), *schedule_);
    EXPECT_TRUE(shard->done(*schedule_));
    EXPECT_FALSE(shard->db()->HasPendingMigration());

    std::vector<std::vector<Row>> got = DumpTables(shard->db(), final_schema);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_TRUE(SameRows(got[i], want[i]))
          << final_schema.tables()[i].name << " diverges after crash/resume (" << got[i].size()
          << " vs " << want[i].size() << " rows)";
    }
    std::remove(path.c_str());
  }
}

// A crashed-and-resumed shard reopened a second time with no operator in
// flight must land on the exact schedule step it had reached (the table-set
// match path of TenantShard::Open), for every step of the trajectory.
TEST_F(FleetPropertyTest, OpenRepositionsShardAtEveryTrajectoryStep) {
  std::unique_ptr<LogicalDatabase> data = TenantData(*bs_, 0);
  const std::string path = testing::TempDir() + "/pse_fleet_reposition.db";

  for (size_t stop_at = 0; stop_at <= schedule_->steps(); ++stop_at) {
    SCOPED_TRACE("stop at step " + std::to_string(stop_at));
    std::remove(path.c_str());
    {
      auto file = FileDiskManager::Open(path);
      ASSERT_TRUE(file.ok()) << file.status().ToString();
      ShardOptions options;
      options.disk = std::move(*file);
      auto created = TenantShard::Create(7, bs_->source, data.get(), std::move(options));
      ASSERT_TRUE(created.ok()) << created.status().ToString();
      MigrationOptions clean;
      clean.batch_rows = 16;
      for (size_t s = 0; s < stop_at; ++s) {
        ASSERT_TRUE((*created)->AdvanceOneOp(*schedule_, clean).ok());
      }
    }
    auto file = FileDiskManager::Open(path);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    auto reopened = TenantShard::Open(7, *schedule_, data.get(), std::move(*file));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ((*reopened)->step(), stop_at);
    EXPECT_EQ((*reopened)->published_step(), stop_at);
    EXPECT_TRUE((*reopened)->CurrentSchema().EquivalentTo(schedule_->at(stop_at)));
  }
  std::remove(path.c_str());
}

// Regression for the per-shard ProvenanceStore contract: DELETE snapshots
// taken on one shard must never surface on a neighbor shard. Both shards
// rename author 0 to a shard-distinct value, migrate to the object layout
// (author values now live only denormalized in glossary rows), delete every
// book — pushing the author values into provenance — then INSERT a fresh
// book without providing them. The resolution ladder must recover each
// shard's OWN value from its OWN store.
TEST_F(FleetPropertyTest, DeleteProvenanceNeverCrossesShards) {
  auto data_a = bs_->MakeData(2, 2, 6);
  auto data_b = bs_->MakeData(2, 2, 6);
  auto shard_a = TenantShard::Create(0, bs_->source, data_a.get());
  auto shard_b = TenantShard::Create(1, bs_->source, data_b.get());
  ASSERT_TRUE(shard_a.ok() && shard_b.ok());
  TenantShard* a = shard_a->get();
  TenantShard* b = shard_b->get();

  // The store the router writes is the shard's own, not a router-private one.
  ASSERT_EQ(a->router()->provenance(), a->provenance());
  ASSERT_EQ(b->router()->provenance(), b->provenance());
  ASSERT_NE(a->provenance(), b->provenance());

  std::vector<VersionTable> source_tables = VersionTablesOf(bs_->source);
  std::vector<VersionTable> object_tables = VersionTablesOf(bs_->object);
  const VersionTable* author_vt = nullptr;
  const VersionTable* book_vt = nullptr;
  for (const VersionTable& vt : source_tables) {
    if (vt.anchor == bs_->author) author_vt = &vt;
  }
  for (const VersionTable& vt : object_tables) {
    if (vt.anchor == bs_->book) book_vt = &vt;
  }
  ASSERT_NE(author_vt, nullptr);
  ASSERT_NE(book_vt, nullptr);

  auto rename_author = [&](TenantShard* shard, const std::string& name) {
    LogicalDml dml;
    dml.kind = DmlKind::kUpdate;
    dml.table = *author_vt;
    dml.key = 0;
    dml.set_attrs = {bs_->a_name};
    dml.set_values = {Value::Varchar(name)};
    ASSERT_TRUE(shard->router()->Execute(dml, shard->CurrentSchema()).ok());
  };
  rename_author(a, "alice-shard-a");
  rename_author(b, "alice-shard-b");

  DrainShard(a, *schedule_);
  DrainShard(b, *schedule_);

  // Delete every book on both shards: each author's values survive only in
  // that shard's provenance store.
  auto delete_books = [&](TenantShard* shard) {
    for (int64_t key = 0; key < 4; ++key) {
      LogicalDml dml;
      dml.kind = DmlKind::kDelete;
      dml.table = *book_vt;
      dml.key = key;
      ASSERT_TRUE(shard->router()->Execute(dml, shard->CurrentSchema()).ok());
    }
  };
  delete_books(a);
  delete_books(b);
  EXPECT_GT(a->router()->stats().provenance_rows, 0u);

  std::optional<Value> got_a = a->provenance()->Get(bs_->author, 0, bs_->a_name);
  std::optional<Value> got_b = b->provenance()->Get(bs_->author, 0, bs_->a_name);
  ASSERT_TRUE(got_a.has_value() && got_b.has_value());
  EXPECT_EQ(got_a->AsString(), "alice-shard-a");
  EXPECT_EQ(got_b->AsString(), "alice-shard-b");

  // End to end: a fresh book for author 0 (a_name not provided) must be
  // denormalized from the shard's own snapshot.
  auto insert_book = [&](TenantShard* shard) {
    LogicalDml dml;
    dml.kind = DmlKind::kInsert;
    dml.table = *book_vt;
    dml.key = 100;
    dml.set_attrs = {bs_->b_title, bs_->b_a_id};
    dml.set_values = {Value::Varchar("postmortem"), Value::Int(0)};
    ASSERT_TRUE(shard->router()->Execute(dml, shard->CurrentSchema()).ok());
  };
  insert_book(a);
  insert_book(b);

  auto table_mentions = [&](TenantShard* shard, const std::string& needle) {
    const PhysicalSchema schema = shard->CurrentSchema();
    for (const PhysicalTable& t : schema.tables()) {
      for (const Row& row : TableRows(shard->db(), t.name)) {
        for (const Value& v : row) {
          if (!v.is_null() && v.type() == TypeId::kVarchar && v.AsString() == needle) {
            return true;
          }
        }
      }
    }
    return false;
  };
  EXPECT_TRUE(table_mentions(a, "alice-shard-a"));
  EXPECT_TRUE(table_mentions(b, "alice-shard-b"));
  // The regression bite: neither shard ever sees the other's snapshot.
  EXPECT_FALSE(table_mentions(a, "alice-shard-b"));
  EXPECT_FALSE(table_mentions(b, "alice-shard-a"));
}

}  // namespace
}  // namespace pse
