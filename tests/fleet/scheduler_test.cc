// FleetScheduler invariants: the global I/O token budget is never exceeded,
// every staggering policy drains the whole fleet (deferral reorders, never
// starves), pick order matches each policy's contract, and the
// SharedPlanCache amortizes rewrites to (N-1)/N hits across same-step
// tenants while returning rewrites identical to a direct RewriteQuery.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/rewriter.h"
#include "engine/catalog_view.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "fleet/plan_cache.h"
#include "fleet/schedule.h"
#include "fleet/scheduler.h"
#include "fleet/tenant_shard.h"
#include "tests/common/test_db_builder.h"

namespace pse {
namespace {

using testutil::Bookstore;
using testutil::SameRows;
using testutil::SortRows;

std::vector<WorkloadQuery> MakeQueries(const Bookstore& bs) {
  std::vector<WorkloadQuery> queries;
  LogicalQuery book;
  book.name = "old-book-author";
  book.anchor = bs.book;
  book.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
  book.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
  queries.emplace_back(std::move(book), /*is_old=*/true);
  LogicalQuery user;
  user.name = "old-user";
  user.anchor = bs.user;
  user.select.emplace_back(Col("u_name"), AggFunc::kNone, "n");
  user.select.emplace_back(Col("u_addr"), AggFunc::kNone, "ad");
  queries.emplace_back(std::move(user), /*is_old=*/true);
  LogicalQuery abstract_q;
  abstract_q.name = "new-abstract";
  abstract_q.anchor = bs.book;
  abstract_q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
  abstract_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "ab");
  queries.emplace_back(std::move(abstract_q), /*is_old=*/false);
  return queries;
}

class FleetSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    auto schedule = PlanFleetSchedule(bs_->source, bs_->object);
    ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
    schedule_ = std::make_unique<FleetSchedule>(std::move(*schedule));
    queries_ = MakeQueries(*bs_);
    freqs_ = {10, 10, 5};
  }

  /// Builds a scheduler over `n` fresh in-memory tenants (distinct sizes).
  std::unique_ptr<FleetScheduler> MakeFleet(size_t n) {
    auto scheduler = std::make_unique<FleetScheduler>(*schedule_, &cache_);
    for (size_t t = 0; t < n; ++t) {
      data_.push_back(bs_->MakeData(2, 2, 8 + static_cast<int>(t)));
      auto shard = TenantShard::Create(t, bs_->source, data_.back().get());
      if (!shard.ok()) {
        ADD_FAILURE() << shard.status().ToString();
        continue;
      }
      scheduler->AddShard(std::move(*shard));
    }
    return scheduler;
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<FleetSchedule> schedule_;
  SharedPlanCache cache_;
  std::vector<std::unique_ptr<LogicalDatabase>> data_;
  std::vector<WorkloadQuery> queries_;
  std::vector<double> freqs_;
};

TEST_F(FleetSchedulerTest, IoTokenBucketTracksOutstandingAndPeak) {
  IoTokenBucket bucket(3);
  EXPECT_EQ(bucket.capacity(), 3u);
  bucket.Acquire();
  bucket.Acquire();
  EXPECT_EQ(bucket.outstanding(), 2u);
  EXPECT_EQ(bucket.peak_outstanding(), 2u);
  bucket.Release();
  EXPECT_EQ(bucket.outstanding(), 1u);
  EXPECT_EQ(bucket.peak_outstanding(), 2u);  // high-water mark sticks
  bucket.Release();
  EXPECT_EQ(bucket.total_acquired(), 2u);
  // Capacity 0 would deadlock the first Acquire; it clamps to 1.
  IoTokenBucket degenerate(0);
  EXPECT_EQ(degenerate.capacity(), 1u);
}

TEST_F(FleetSchedulerTest, RunValidatesItsInputs) {
  FleetScheduler empty(*schedule_, &cache_);
  EXPECT_FALSE(empty.Run(queries_, freqs_, FleetOptions{}).ok());

  auto fleet = MakeFleet(2);
  std::vector<double> bad_freqs = {1.0};
  EXPECT_FALSE(fleet->Run(queries_, bad_freqs, FleetOptions{}).ok());
  FleetOptions bad_hotness;
  bad_hotness.hotness = {1.0, 2.0, 3.0};
  EXPECT_FALSE(fleet->Run(queries_, freqs_, bad_hotness).ok());
}

// More migration lanes than tokens: the bucket, not the lane count, bounds
// concurrent migration I/O. peak <= capacity is exact (tracked under the
// bucket mutex at every Acquire).
TEST_F(FleetSchedulerTest, IoBudgetNeverExceeded) {
  auto fleet = MakeFleet(6);
  FleetOptions options;
  options.migration_lanes = 4;
  options.serve_lanes = 1;
  options.io_tokens = 2;
  options.min_queries_per_lane = 8;
  options.migration.batch_rows = 8;
  auto metrics = fleet->Run(queries_, freqs_, options);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->io_capacity, 2u);
  EXPECT_GE(metrics->io_peak_outstanding, 1u);
  EXPECT_LE(metrics->io_peak_outstanding, 2u);
  EXPECT_EQ(metrics->tenants_migrated, 6u);
  EXPECT_EQ(metrics->errors, 0u);
  EXPECT_GT(metrics->batches, 0u);
}

TEST_F(FleetSchedulerTest, EveryPolicyDrainsTheWholeFleet) {
  for (FleetPolicy policy : {FleetPolicy::kRoundRobin, FleetPolicy::kLaggardFirst,
                             FleetPolicy::kHotTenantDeferred}) {
    SCOPED_TRACE(FleetPolicyName(policy));
    auto fleet = MakeFleet(5);
    FleetOptions options;
    options.policy = policy;
    options.migration_lanes = 2;
    options.serve_lanes = 2;
    options.io_tokens = 2;
    options.min_queries_per_lane = 8;
    options.migration.batch_rows = 16;
    options.hotness = {1.0, 3.0, 1.0, 5.0, 1.0};
    auto metrics = fleet->Run(queries_, freqs_, options);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    EXPECT_EQ(metrics->tenants, 5u);
    EXPECT_EQ(metrics->tenants_migrated, 5u);
    EXPECT_EQ(metrics->ops_applied, 5u * schedule_->steps());
    EXPECT_EQ(metrics->errors, 0u);
    for (size_t i = 0; i < fleet->size(); ++i) {
      EXPECT_TRUE(fleet->shard(i)->done(*schedule_)) << "shard " << i;
      EXPECT_EQ(fleet->shard(i)->published_step(), schedule_->steps()) << "shard " << i;
    }
  }
}

// One migration lane makes the pick order deterministic; on_shard_op runs
// outside all fleet locks and reconstructs it.
TEST_F(FleetSchedulerTest, RoundRobinCyclesDistinctShards) {
  constexpr size_t kTenants = 4;
  auto fleet = MakeFleet(kTenants);
  std::mutex order_mu;
  std::vector<size_t> order;
  FleetOptions options;
  options.policy = FleetPolicy::kRoundRobin;
  options.migration_lanes = 1;
  options.serve_lanes = 0;
  options.on_shard_op = [&](size_t shard, size_t) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(shard);
  };
  auto metrics = fleet->Run(queries_, freqs_, options);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(order.size(), kTenants * schedule_->steps());
  // Every window of kTenants consecutive picks touches every shard once.
  for (size_t w = 0; w + kTenants <= order.size(); w += kTenants) {
    std::set<size_t> window(order.begin() + static_cast<long>(w),
                            order.begin() + static_cast<long>(w + kTenants));
    EXPECT_EQ(window.size(), kTenants) << "window at " << w << " revisited a shard";
  }
}

TEST_F(FleetSchedulerTest, LaggardFirstClosesTheTrajectorySpread) {
  constexpr size_t kTenants = 4;
  auto fleet = MakeFleet(kTenants);
  // Spread the fleet: shard 0 two ops ahead, shard 1 one op ahead.
  MigrationOptions clean;
  ASSERT_TRUE(fleet->shard(0)->AdvanceOneOp(*schedule_, clean).ok());
  ASSERT_TRUE(fleet->shard(0)->AdvanceOneOp(*schedule_, clean).ok());
  ASSERT_TRUE(fleet->shard(1)->AdvanceOneOp(*schedule_, clean).ok());

  std::mutex order_mu;
  std::vector<std::pair<size_t, size_t>> order;  // (shard, new step)
  FleetOptions options;
  options.policy = FleetPolicy::kLaggardFirst;
  options.migration_lanes = 1;
  options.serve_lanes = 0;
  options.on_shard_op = [&](size_t shard, size_t step) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.emplace_back(shard, step);
  };
  auto metrics = fleet->Run(queries_, freqs_, options);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_FALSE(order.empty());

  // The laggards (step 0) migrate before the shards that were ahead ever
  // advance again: with one lane the pre-op step sequence is non-decreasing.
  size_t last_pre_step = 0;
  for (const auto& [shard, step] : order) {
    size_t pre_step = step - 1;
    EXPECT_GE(pre_step, last_pre_step)
        << "shard " << shard << " advanced from step " << pre_step
        << " while a laggard at step " << last_pre_step << " was eligible";
    last_pre_step = pre_step;
  }
  EXPECT_EQ(order.front().first, 2u) << "first pick must be the lowest-id laggard";
  EXPECT_EQ(metrics->tenants_migrated, kTenants);
}

TEST_F(FleetSchedulerTest, HotTenantDeferredMigratesTheHotTenantLast) {
  constexpr size_t kTenants = 4;
  constexpr size_t kHot = 2;
  auto fleet = MakeFleet(kTenants);
  std::mutex order_mu;
  std::vector<size_t> order;
  FleetOptions options;
  options.policy = FleetPolicy::kHotTenantDeferred;
  options.migration_lanes = 1;
  options.serve_lanes = 0;
  options.hotness = {1.0, 1.0, 8.0, 1.0};
  options.on_shard_op = [&](size_t shard, size_t) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(shard);
  };
  auto metrics = fleet->Run(queries_, freqs_, options);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(order.size(), kTenants * schedule_->steps());
  // Deferral: the hot tenant's ops are exactly the tail of the order —
  // every cold tenant finished first, and the hot one still completed.
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < order.size() - schedule_->steps()) {
      EXPECT_NE(order[i], kHot) << "hot tenant migrated at position " << i;
    } else {
      EXPECT_EQ(order[i], kHot) << "tail position " << i << " is not the hot tenant";
    }
  }
  EXPECT_TRUE(fleet->shard(kHot)->done(*schedule_)) << "deferral must not starve";
}

// N tenants parked at one step issue the same workload: the first lookup
// per (step, query) misses, the other N-1 hit — including the unservable
// query, whose BindError is itself a property of the step and is cached.
TEST_F(FleetSchedulerTest, SharedPlanCacheAmortizesAcrossSameStepTenants) {
  constexpr size_t kTenants = 8;
  SharedPlanCache cache;
  const PhysicalSchema& source = schedule_->at(0);

  PlanCacheStats before = cache.Snapshot();
  uint64_t unservable = 0;
  for (size_t t = 0; t < kTenants; ++t) {
    for (const WorkloadQuery& wq : queries_) {
      Result<BoundQuery> bound = cache.GetOrRewrite(0, wq.query, source);
      if (!bound.ok()) {
        ASSERT_TRUE(bound.status().IsBindError()) << bound.status().ToString();
        ++unservable;
      }
    }
  }
  PlanCacheStats delta = cache.Snapshot();
  delta.hits -= before.hits;
  delta.misses -= before.misses;
  EXPECT_EQ(delta.misses, queries_.size());
  EXPECT_EQ(delta.hits, (kTenants - 1) * queries_.size());
  double expected_pct = 100.0 * static_cast<double>(kTenants - 1) / kTenants;
  EXPECT_GE(delta.hit_pct(), expected_pct - 1e-9);
  // new-abstract is unservable on the source schema for every tenant.
  EXPECT_EQ(unservable, kTenants);
  EXPECT_EQ(cache.size(), queries_.size());

  // A different step is a different key: no false sharing across steps.
  for (const WorkloadQuery& wq : queries_) {
    auto bound = cache.GetOrRewrite(schedule_->steps(), wq.query, schedule_->object);
    EXPECT_TRUE(bound.ok()) << wq.query.name << " must be servable on the object schema";
  }
  EXPECT_EQ(cache.size(), 2 * queries_.size());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

// The cached rewrite must be indistinguishable from a direct RewriteQuery:
// same rows when planned and executed against a real shard.
TEST_F(FleetSchedulerTest, CachedRewriteExecutesIdenticallyToDirectRewrite) {
  SharedPlanCache cache;
  auto data = bs_->MakeData(3, 3, 12);
  auto shard = TenantShard::Create(0, bs_->source, data.get());
  ASSERT_TRUE(shard.ok());
  MigrationOptions clean;
  while (!(*shard)->done(*schedule_)) {
    ASSERT_TRUE((*shard)->AdvanceOneOp(*schedule_, clean).ok());
  }
  const PhysicalSchema schema = (*shard)->CurrentSchema();
  Database* db = (*shard)->db();
  ASSERT_TRUE(db->AnalyzeAll().ok());

  for (const WorkloadQuery& wq : queries_) {
    SCOPED_TRACE(wq.query.name);
    // Warm the cache, then take the cloned hit path.
    ASSERT_TRUE(cache.GetOrRewrite(schedule_->steps(), wq.query, schema).ok());
    Result<BoundQuery> cached = cache.GetOrRewrite(schedule_->steps(), wq.query, schema);
    Result<BoundQuery> direct = RewriteQuery(wq.query, schema);
    ASSERT_TRUE(cached.ok() && direct.ok());

    DatabaseCatalogView view(db);
    auto run = [&](const BoundQuery& bound) {
      auto plan = PlanQuery(bound, view);
      EXPECT_TRUE(plan.ok()) << plan.status().ToString();
      auto rows = ExecutePlan(**plan, db);
      EXPECT_TRUE(rows.ok()) << rows.status().ToString();
      return SortRows(std::move(*rows));
    };
    std::vector<Row> from_cache = run(*cached);
    std::vector<Row> from_direct = run(*direct);
    EXPECT_TRUE(SameRows(from_cache, from_direct))
        << "cached rewrite diverges (" << from_cache.size() << " vs " << from_direct.size()
        << " rows)";
  }
}

}  // namespace
}  // namespace pse
