#include "ga/genetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace pse {
namespace {

TEST(CrossoverTest, TwoPointKeepsSliceFromFirstParent) {
  Rng rng(1);
  Chromosome a(20, 1), b(20, 0);
  for (int iter = 0; iter < 50; ++iter) {
    Chromosome child = TwoPointCrossover(a, b, &rng);
    ASSERT_EQ(child.size(), 20u);
    // Every gene is from one of the parents.
    for (int g : child) EXPECT_TRUE(g == 0 || g == 1);
    // The 1s form one contiguous run (the slice from a).
    auto first = std::find(child.begin(), child.end(), 1);
    auto last = std::find(child.rbegin(), child.rend(), 1);
    if (first != child.end()) {
      size_t lo = static_cast<size_t>(first - child.begin());
      size_t hi = child.size() - 1 - static_cast<size_t>(last - child.rbegin());
      for (size_t k = lo; k <= hi; ++k) EXPECT_EQ(child[k], 1);
    }
  }
}

TEST(CrossoverTest, OrderCrossoverPreservesPermutation) {
  Rng rng(2);
  Chromosome a(10), b(10);
  std::iota(a.begin(), a.end(), 0);
  b = a;
  rng.Shuffle(&a);
  rng.Shuffle(&b);
  for (int iter = 0; iter < 100; ++iter) {
    Chromosome child = OrderCrossover(a, b, &rng);
    Chromosome sorted = child;
    std::sort(sorted.begin(), sorted.end());
    Chromosome want(10);
    std::iota(want.begin(), want.end(), 0);
    ASSERT_EQ(sorted, want) << "child is not a permutation";
  }
}

TEST(MutationTest, SegmentReversalPreservesMultiset) {
  Rng rng(3);
  Chromosome c{5, 3, 9, 1, 7, 7, 2};
  Chromosome orig = c;
  for (int iter = 0; iter < 50; ++iter) {
    SegmentReversalMutation(&c, &rng);
    Chromosome s1 = c, s2 = orig;
    std::sort(s1.begin(), s1.end());
    std::sort(s2.begin(), s2.end());
    ASSERT_EQ(s1, s2);
  }
}

TEST(MutationTest, PointMutationStaysInRange) {
  Rng rng(4);
  Chromosome c(10, 0);
  for (int iter = 0; iter < 200; ++iter) {
    PointMutation(&c, 4, &rng);
    for (int g : c) {
      EXPECT_GE(g, 0);
      EXPECT_LE(g, 4);
    }
  }
}

// OneMax: fitness = number of 1s. GA must find the all-ones string.
TEST(GaTest, SolvesOneMax) {
  Rng rng(5);
  const size_t n = 30;
  GaProblem problem;
  problem.random_chromosome = [n](Rng* r) {
    Chromosome c(n);
    for (auto& g : c) g = static_cast<int>(r->UniformInt(0, 1));
    return c;
  };
  problem.fitness = [](const Chromosome& c) {
    return static_cast<double>(std::accumulate(c.begin(), c.end(), 0));
  };
  problem.mutate = [](Chromosome* c, Rng* r) {
    size_t i = r->Index(c->size());
    (*c)[i] ^= 1;
  };
  GaConfig config;
  config.population_size = 40;
  config.generations = 200;
  GaResult res = RunGa(problem, config, &rng);
  EXPECT_EQ(res.best_fitness, static_cast<double>(n));
}

// Assignment problem with a known unique optimum.
TEST(GaTest, FindsKnownAssignmentOptimum) {
  Rng rng(6);
  const size_t n = 12;
  Chromosome target(n);
  for (size_t i = 0; i < n; ++i) target[i] = static_cast<int>(i % 4);
  GaProblem problem;
  problem.random_chromosome = [n](Rng* r) {
    Chromosome c(n);
    for (auto& g : c) g = static_cast<int>(r->UniformInt(0, 3));
    return c;
  };
  problem.fitness = [&target](const Chromosome& c) {
    double score = 0;
    for (size_t i = 0; i < c.size(); ++i) {
      if (c[i] == target[i]) score += 1;
    }
    return score;
  };
  problem.mutate = [](Chromosome* c, Rng* r) { PointMutation(c, 3, r); };
  GaConfig config;
  config.population_size = 60;
  config.generations = 300;
  GaResult res = RunGa(problem, config, &rng);
  EXPECT_EQ(res.best, target);
}

TEST(GaTest, RepairIsAppliedToEveryIndividual) {
  Rng rng(7);
  GaProblem problem;
  problem.random_chromosome = [](Rng* r) {
    Chromosome c(8);
    for (auto& g : c) g = static_cast<int>(r->UniformInt(0, 9));
    return c;
  };
  // Repair clamps everything to <= 5; fitness rewards high genes. If repair
  // were skipped anywhere, some evaluated chromosome would exceed 5.
  bool violated = false;
  problem.repair = [](Chromosome* c, Rng*) {
    for (auto& g : *c) g = std::min(g, 5);
  };
  problem.fitness = [&violated](const Chromosome& c) {
    double s = 0;
    for (int g : c) {
      if (g > 5) violated = true;
      s += g;
    }
    return s;
  };
  GaConfig config;
  config.population_size = 20;
  config.generations = 20;
  GaResult res = RunGa(problem, config, &rng);
  EXPECT_FALSE(violated);
  EXPECT_EQ(res.best_fitness, 8.0 * 5);
}

TEST(GaTest, SeedsEnterInitialPopulation) {
  Rng rng(11);
  const Chromosome optimum{1, 2, 3, 4};
  GaProblem problem;
  problem.random_chromosome = [](Rng* r) {
    Chromosome c(4);
    for (auto& g : c) g = static_cast<int>(r->UniformInt(0, 9));
    return c;
  };
  problem.fitness = [&optimum](const Chromosome& c) {
    double score = 0;
    for (size_t i = 0; i < c.size(); ++i) {
      if (c[i] == optimum[i]) score += 1;
    }
    return score;
  };
  problem.seeds.push_back(optimum);
  // With zero generations the result is the best of the initial population;
  // random 4-digit strings match the optimum with probability 1e-4, so the
  // injected seed must be the winner.
  GaConfig config;
  config.population_size = 8;
  config.generations = 0;
  GaResult res = RunGa(problem, config, &rng);
  EXPECT_EQ(res.best, optimum);
  EXPECT_EQ(res.best_fitness, 4.0);
}

TEST(GaTest, SeedsAreRepairedAndExcessIgnored) {
  Rng rng(12);
  GaProblem problem;
  problem.random_chromosome = [](Rng* r) {
    Chromosome c(4);
    for (auto& g : c) g = static_cast<int>(r->UniformInt(0, 5));
    return c;
  };
  problem.repair = [](Chromosome* c, Rng*) {
    for (auto& g : *c) g = std::min(g, 5);
  };
  bool violated = false;
  problem.fitness = [&violated](const Chromosome& c) {
    double s = 0;
    for (int g : c) {
      if (g > 5) violated = true;
      s += g;
    }
    return s;
  };
  // More seeds than population slots; the out-of-range one must be repaired
  // before evaluation, and the overflow silently dropped.
  problem.seeds.assign(4, Chromosome{9, 9, 9, 9});
  GaConfig config;
  config.population_size = 2;
  config.generations = 0;
  GaResult res = RunGa(problem, config, &rng);
  EXPECT_FALSE(violated);
  EXPECT_EQ(res.best_fitness, 4.0 * 5);
}

TEST(GaTest, HistoryIsMonotone) {
  Rng rng(8);
  GaProblem problem;
  problem.random_chromosome = [](Rng* r) {
    Chromosome c(16);
    for (auto& g : c) g = static_cast<int>(r->UniformInt(0, 1));
    return c;
  };
  problem.fitness = [](const Chromosome& c) {
    return static_cast<double>(std::accumulate(c.begin(), c.end(), 0));
  };
  GaConfig config;
  config.population_size = 16;
  config.generations = 50;
  config.track_history = true;
  GaResult res = RunGa(problem, config, &rng);
  ASSERT_FALSE(res.history.empty());
  for (size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_GE(res.history[i], res.history[i - 1]);
  }
}

TEST(GaTest, StallStopsEarly) {
  Rng rng(9);
  GaProblem problem;
  problem.random_chromosome = [](Rng*) { return Chromosome(4, 0); };
  problem.fitness = [](const Chromosome&) { return 1.0; };  // flat landscape
  GaConfig config;
  config.population_size = 10;
  config.generations = 1000;
  config.stall_generations = 5;
  GaResult res = RunGa(problem, config, &rng);
  // 10 initial evals + at most ~6 generations of 8 children (2 elites kept).
  EXPECT_LT(res.evaluations, 10u + 8u * 8u);
}

TEST(GaTest, RouletteSelectionSolvesOneMax) {
  Rng rng(55);
  const size_t n = 24;
  GaProblem problem;
  problem.random_chromosome = [n](Rng* r) {
    Chromosome c(n);
    for (auto& g : c) g = static_cast<int>(r->UniformInt(0, 1));
    return c;
  };
  problem.fitness = [](const Chromosome& c) {
    return static_cast<double>(std::accumulate(c.begin(), c.end(), 0));
  };
  problem.mutate = [](Chromosome* c, Rng* r) {
    size_t i = r->Index(c->size());
    (*c)[i] ^= 1;
  };
  GaConfig config;
  config.population_size = 40;
  config.generations = 300;
  config.selection = GaSelection::kRoulette;
  GaResult res = RunGa(problem, config, &rng);
  EXPECT_GE(res.best_fitness, static_cast<double>(n) - 1);  // near-optimal
}

TEST(GaTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    Rng rng(seed);
    GaProblem problem;
    problem.random_chromosome = [](Rng* r) {
      Chromosome c(10);
      for (auto& g : c) g = static_cast<int>(r->UniformInt(0, 7));
      return c;
    };
    problem.fitness = [](const Chromosome& c) {
      double s = 0;
      for (size_t i = 0; i < c.size(); ++i) s += (c[i] == static_cast<int>(i % 3)) ? 1 : 0;
      return s;
    };
    GaConfig config;
    config.population_size = 20;
    config.generations = 30;
    return RunGa(problem, config, &rng);
  };
  GaResult a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_fitness, b.best_fitness);
  (void)c;  // different seed may or may not differ; just ensure it runs
}

}  // namespace
}  // namespace pse
