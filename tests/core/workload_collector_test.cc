#include "core/workload_collector.h"

#include <gtest/gtest.h>

#include "tpcw/workloads.h"

namespace pse {
namespace {

TEST(WorkloadCollectorTest, RecordAndClose) {
  WorkloadCollector c(3);
  ASSERT_TRUE(c.Record(0, 5).ok());
  ASSERT_TRUE(c.Record(2).ok());
  ASSERT_TRUE(c.Record(2).ok());
  c.CloseWindow();
  auto last = c.LastWindow();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ((*last)[0], 5);
  EXPECT_EQ((*last)[1], 0);
  EXPECT_EQ((*last)[2], 2);
  // The tally restarts.
  c.CloseWindow();
  last = c.LastWindow();
  EXPECT_EQ((*last)[0], 0);
}

TEST(WorkloadCollectorTest, BadRecordRejected) {
  WorkloadCollector c(2);
  EXPECT_FALSE(c.Record(2).ok());
  EXPECT_FALSE(c.Record(0, -1).ok());
}

TEST(WorkloadCollectorTest, NoWindowsIsError) {
  WorkloadCollector c(2);
  EXPECT_FALSE(c.LastWindow().ok());
  EXPECT_FALSE(c.Forecast(3).ok());
}

TEST(WorkloadCollectorTest, SingleWindowForecastsFlat) {
  WorkloadCollector c(2);
  ASSERT_TRUE(c.Record(0, 10).ok());
  ASSERT_TRUE(c.Record(1, 4).ok());
  c.CloseWindow();
  auto forecast = c.Forecast(3);
  ASSERT_TRUE(forecast.ok());
  for (const auto& phase : *forecast) {
    EXPECT_DOUBLE_EQ(phase[0], 10);
    EXPECT_DOUBLE_EQ(phase[1], 4);
  }
}

TEST(WorkloadCollectorTest, LinearTrendExtrapolatedExactly) {
  WorkloadCollector c(2);
  // Query 0 falls 50, 40, 30; query 1 rises 5, 10, 15.
  for (int w = 0; w < 3; ++w) {
    ASSERT_TRUE(c.Record(0, 50 - 10 * w).ok());
    ASSERT_TRUE(c.Record(1, 5 + 5 * w).ok());
    c.CloseWindow();
  }
  auto forecast = c.Forecast(2);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR((*forecast)[0][0], 20.0, 1e-9);
  EXPECT_NEAR((*forecast)[1][0], 10.0, 1e-9);
  EXPECT_NEAR((*forecast)[0][1], 20.0, 1e-9);
  EXPECT_NEAR((*forecast)[1][1], 25.0, 1e-9);
}

TEST(WorkloadCollectorTest, ForecastClampsAtZero) {
  WorkloadCollector c(1);
  for (int w = 0; w < 3; ++w) {
    ASSERT_TRUE(c.Record(0, 20 - 10 * w).ok());  // 20, 10, 0
    c.CloseWindow();
  }
  auto forecast = c.Forecast(3);
  ASSERT_TRUE(forecast.ok());
  EXPECT_DOUBLE_EQ((*forecast)[0][0], 0.0);   // -10 clamped
  EXPECT_DOUBLE_EQ((*forecast)[2][0], 0.0);
}

TEST(WorkloadCollectorTest, RegularScheduleForecastIsExact) {
  // Feed the first 3 phases of the regular 5-point TPC-W schedule; the
  // forecast of phases 4-5 must match the schedule (it IS linear).
  auto schedule = RegularFrequencies(5);
  WorkloadCollector c(20);
  for (size_t p = 0; p < 3; ++p) {
    for (size_t q = 0; q < 20; ++q) {
      ASSERT_TRUE(c.Record(q, schedule[p][q]).ok());
    }
    c.CloseWindow();
  }
  auto forecast = c.Forecast(2);
  ASSERT_TRUE(forecast.ok());
  std::vector<std::vector<double>> actual{schedule[3], schedule[4]};
  EXPECT_LT(WorkloadCollector::ForecastError(*forecast, actual), 1e-6);
}

TEST(WorkloadCollectorTest, IrregularScheduleForecastIsApproximate) {
  auto schedule = Fig9IrregularFrequencies();
  WorkloadCollector c(20);
  for (size_t p = 0; p < 3; ++p) {
    for (size_t q = 0; q < 20; ++q) {
      ASSERT_TRUE(c.Record(q, schedule[p][q]).ok());
    }
    c.CloseWindow();
  }
  auto forecast = c.Forecast(2);
  ASSERT_TRUE(forecast.ok());
  std::vector<std::vector<double>> actual{schedule[3], schedule[4]};
  double err = WorkloadCollector::ForecastError(*forecast, actual);
  // Imperfect (the paper's point about imprecise trends) but in the right
  // ballpark: average miss below 12 queries per phase entry.
  EXPECT_GT(err, 0.5);
  EXPECT_LT(err, 12.0);
}

}  // namespace
}  // namespace pse
