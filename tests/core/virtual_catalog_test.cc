#include "core/virtual_catalog.h"

#include <gtest/gtest.h>

#include "engine/cost_model.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

class VirtualCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    stats_.Resize(bs_->logical);
    stats_.entity_rows[bs_->author] = 100;
    stats_.entity_rows[bs_->book] = 5000;
    stats_.entity_rows[bs_->user] = 2000;
    stats_.attrs[bs_->a_id] = LogicalAttrStats{100, 0, 99, 0.0};
    stats_.attrs[bs_->b_id] = LogicalAttrStats{5000, 0, 4999, 0.0};
    stats_.attrs[bs_->b_a_id] = LogicalAttrStats{100, 0, 99, 0.0};
    stats_.attrs[bs_->b_cost] = LogicalAttrStats{40, {}, {}, 0.1};
  }

  std::unique_ptr<Bookstore> bs_;
  LogicalStats stats_;
};

TEST_F(VirtualCatalogTest, TableRowsFollowAnchorCardinality) {
  VirtualSchemaCatalog catalog(&bs_->object, &stats_);
  auto glossary = catalog.GetStats("glossary");
  ASSERT_TRUE(glossary.ok());
  EXPECT_EQ((*glossary)->row_count, 5000u);  // anchored at book
  auto user_gen = catalog.GetStats("user_gen");
  ASSERT_TRUE(user_gen.ok());
  EXPECT_EQ((*user_gen)->row_count, 2000u);
}

TEST_F(VirtualCatalogTest, PagesScaleWithWidth) {
  VirtualSchemaCatalog src(&bs_->source, &stats_);
  VirtualSchemaCatalog obj(&bs_->object, &stats_);
  // The glossary (book + author attrs + abstract) is wider than book alone.
  double book_pages = CostModel::TablePages(**src.GetStats("book"));
  double glossary_pages = CostModel::TablePages(**obj.GetStats("glossary"));
  EXPECT_GT(glossary_pages, book_pages);
}

TEST_F(VirtualCatalogTest, EmbeddedAttrStatsScaled) {
  VirtualSchemaCatalog catalog(&bs_->object, &stats_);
  auto glossary = catalog.GetStats("glossary");
  ASSERT_TRUE(glossary.ok());
  // a_id keeps its NDV (100) even though the table has 5000 rows.
  const ColumnStatistics* a_id = (*glossary)->Column("a_id");
  ASSERT_NE(a_id, nullptr);
  EXPECT_EQ(a_id->num_distinct, 100u);
  // NDV can never exceed the table's rows.
  VirtualSchemaCatalog src(&bs_->source, &stats_);
  auto author = src.GetStats("author");
  const ColumnStatistics* a_id_src = (*author)->Column("a_id");
  EXPECT_EQ(a_id_src->num_distinct, 100u);
}

TEST_F(VirtualCatalogTest, NullCountScalesToAnchorRows) {
  VirtualSchemaCatalog catalog(&bs_->source, &stats_);
  auto book = catalog.GetStats("book");
  const ColumnStatistics* cost = (*book)->Column("b_cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->null_count, 500u);  // 10% of 5000
}

TEST_F(VirtualCatalogTest, MinMaxPropagated) {
  VirtualSchemaCatalog catalog(&bs_->source, &stats_);
  auto book = catalog.GetStats("book");
  const ColumnStatistics* id = (*book)->Column("b_id");
  ASSERT_NE(id, nullptr);
  ASSERT_TRUE(id->min.has_value());
  EXPECT_EQ(id->min->AsInt(), 0);
  EXPECT_EQ(id->max->AsInt(), 4999);
}

TEST_F(VirtualCatalogTest, KeyAndFkIndexesReported) {
  VirtualSchemaCatalog catalog(&bs_->source, &stats_);
  EXPECT_TRUE(catalog.HasIndex("book", "b_id"));     // anchor key
  EXPECT_TRUE(catalog.HasIndex("book", "b_a_id"));   // FK
  EXPECT_FALSE(catalog.HasIndex("book", "b_title"));
  EXPECT_FALSE(catalog.HasIndex("book", "a_name"));  // not in this table
  EXPECT_FALSE(catalog.HasIndex("missing", "b_id"));
}

TEST_F(VirtualCatalogTest, UnknownTableIsNotFound) {
  VirtualSchemaCatalog catalog(&bs_->source, &stats_);
  EXPECT_TRUE(catalog.GetSchema("nope").status().IsNotFound());
  EXPECT_TRUE(catalog.GetStats("nope").status().IsNotFound());
}

TEST_F(VirtualCatalogTest, SchemaShapeMatchesPhysical) {
  VirtualSchemaCatalog catalog(&bs_->object, &stats_);
  auto ts = catalog.GetSchema("glossary");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ((*ts)->key_columns()[0], "b_id");
  EXPECT_TRUE((*ts)->HasColumn("b_abstract"));
  EXPECT_TRUE((*ts)->HasColumn("a_bio"));
}

}  // namespace
}  // namespace pse
