// Snapshot cost estimation: C(S) = sum C_i * F_i, CostValue, penalties.
#include "core/workload.h"

#include <gtest/gtest.h>

#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

class WorkloadCostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    auto data = bs_->MakeData(10, 30, 60);
    stats_ = data->ComputeStats();

    LogicalQuery author_scan;
    author_scan.anchor = bs_->author;
    author_scan.select.emplace_back(Col("a_name"), AggFunc::kNone, "a_name");
    queries_.emplace_back(std::move(author_scan), true);

    LogicalQuery abstract_q;
    abstract_q.anchor = bs_->book;
    abstract_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "b_abstract");
    queries_.emplace_back(std::move(abstract_q), false);
  }

  std::unique_ptr<Bookstore> bs_;
  LogicalStats stats_;
  std::vector<WorkloadQuery> queries_;
};

TEST_F(WorkloadCostTest, SingleQueryCost) {
  auto cost = EstimateQueryCost(queries_[0].query, bs_->source, stats_);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_GT(*cost, 0.0);
}

TEST_F(WorkloadCostTest, CostScalesLinearlyWithFrequency) {
  CostOptions options;
  options.fallback_schema = &bs_->object;
  auto c1 = EstimateWorkloadCost(bs_->source, stats_, queries_, {1, 0}, options);
  auto c10 = EstimateWorkloadCost(bs_->source, stats_, queries_, {10, 0}, options);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c10.ok());
  EXPECT_DOUBLE_EQ(*c10, *c1 * 10.0);
}

TEST_F(WorkloadCostTest, ZeroFrequencySkipsQuery) {
  CostOptions options;
  options.fallback_schema = &bs_->object;
  auto cost = EstimateWorkloadCost(bs_->source, stats_, queries_, {0, 0}, options);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 0.0);
}

TEST_F(WorkloadCostTest, UnservableUsesPenalizedFallback) {
  // The abstract query cannot run on source; it must be priced via the
  // object schema times the penalty.
  CostOptions options;
  options.fallback_schema = &bs_->object;
  options.unservable_penalty = 3.0;
  auto on_source = EstimateWorkloadCost(bs_->source, stats_, queries_, {0, 1}, options);
  ASSERT_TRUE(on_source.ok()) << on_source.status().ToString();
  auto on_object = EstimateWorkloadCost(bs_->object, stats_, queries_, {0, 1}, options);
  ASSERT_TRUE(on_object.ok());
  // Fallback prices the query on the object schema; 3x penalty applies, and
  // the object-schema access may be cheaper than the fallback base (the
  // object glossary serves it directly), so expect a strict ordering.
  EXPECT_GT(*on_source, *on_object);
  // The penalty multiplies an object-schema estimate of the same query.
  auto base = EstimateQueryCost(queries_[1].query, bs_->object, stats_);
  ASSERT_TRUE(base.ok());
  EXPECT_DOUBLE_EQ(*on_source, 3.0 * *base);
}

TEST_F(WorkloadCostTest, UnservableWithoutFallbackIsError) {
  auto cost = EstimateWorkloadCost(bs_->source, stats_, queries_, {0, 1}, CostOptions{});
  EXPECT_FALSE(cost.ok());
}

TEST_F(WorkloadCostTest, FrequencyArityChecked) {
  auto cost = EstimateWorkloadCost(bs_->source, stats_, queries_, {1}, CostOptions{});
  EXPECT_FALSE(cost.ok());
}

TEST_F(WorkloadCostTest, AllZeroFrequenciesShortCircuitToZero) {
  // The silent-phase short-circuit: an all-zero frequency vector costs zero
  // without touching the estimator at all — even with no fallback schema and
  // a query (b_abstract) that could not be priced on the source otherwise.
  auto cost = EstimateWorkloadCost(bs_->source, stats_, queries_, {0, 0}, CostOptions{});
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_DOUBLE_EQ(*cost, 0.0);
  auto value = CostValue(bs_->source, bs_->object, stats_, queries_, {0, 0});
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_DOUBLE_EQ(*value, 0.0);
}

TEST_F(WorkloadCostTest, CostValueChecksFrequencyArity) {
  auto value = CostValue(bs_->source, bs_->object, stats_, queries_, {1.0});
  EXPECT_FALSE(value.ok());
}

TEST_F(WorkloadCostTest, CostValueSignsMakeSense) {
  // For an old-query-only workload, the source schema should beat the
  // object schema: CostValue(source) > 0 >= CostValue(object) == 0.
  std::vector<double> old_only{10, 0};
  auto source_value = CostValue(bs_->source, bs_->object, stats_, queries_, old_only);
  ASSERT_TRUE(source_value.ok()) << source_value.status().ToString();
  EXPECT_GT(*source_value, 0.0);
  auto object_value = CostValue(bs_->object, bs_->object, stats_, queries_, old_only);
  ASSERT_TRUE(object_value.ok());
  EXPECT_DOUBLE_EQ(*object_value, 0.0);
}

}  // namespace
}  // namespace pse
