// Grounding the planner's data-movement estimates: EstimateOperatorIo
// (what GAA's objective uses) must track the MigrationExecutor's actually
// measured I/O, and EvaluateAssignment must equal the hand-computed sum of
// per-phase workload costs.
#include <gtest/gtest.h>

#include "core/mapping.h"
#include "core/migration_executor.h"
#include "core/migration_planner.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

class MigrationIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    data_ = bs_->MakeData(20, 60, 150);
    stats_ = data_->ComputeStats();
    auto opset = ComputeOperatorSet(bs_->source, bs_->object);
    ASSERT_TRUE(opset.ok());
    opset_ = std::make_unique<OperatorSet>(std::move(*opset));
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<LogicalDatabase> data_;
  LogicalStats stats_;
  std::unique_ptr<OperatorSet> opset_;
};

TEST_F(MigrationIoTest, EstimatesTrackActualMovement) {
  Database db(128);
  ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
  PhysicalSchema current = bs_->source;
  MigrationExecutor executor(&db, data_.get());
  auto topo = opset_->TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  for (int i : *topo) {
    const MigrationOperator& op = opset_->ops[static_cast<size_t>(i)];
    auto estimated = EstimateOperatorIo(op, current, stats_);
    ASSERT_TRUE(estimated.ok());
    auto actual = executor.Apply(op, &current);
    ASSERT_TRUE(actual.ok()) << op.ToString(bs_->logical);
    // Within 4x either way: the estimate is a planning signal, not an
    // accounting identity (index builds and flush amplification are real).
    EXPECT_GT(*estimated, static_cast<double>(*actual) / 4.0) << op.ToString(bs_->logical);
    EXPECT_LT(*estimated, static_cast<double>(*actual) * 4.0 + 16.0)
        << op.ToString(bs_->logical) << " est=" << *estimated << " act=" << *actual;
  }
}

TEST_F(MigrationIoTest, EvaluateAssignmentEqualsManualSum) {
  // Assignment: everything deferred to completion => every phase is costed
  // on the unchanged source schema.
  std::vector<std::vector<double>> freqs{{5, 1, 2}, {3, 3, 2}, {1, 5, 2}};
  std::vector<WorkloadQuery> queries;
  {
    LogicalQuery q1;
    q1.anchor = bs_->author;
    q1.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
    queries.emplace_back(std::move(q1), true);
    LogicalQuery q2;
    q2.anchor = bs_->book;
    q2.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    q2.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "x");
    queries.emplace_back(std::move(q2), false);
    LogicalQuery q3;
    q3.anchor = bs_->user;
    q3.select.emplace_back(Col("u_name"), AggFunc::kNone, "u");
    queries.emplace_back(std::move(q3), true);
  }
  std::vector<LogicalStats> phase_stats{stats_};
  MigrationContext ctx;
  ctx.current = &bs_->source;
  ctx.object = &bs_->object;
  ctx.opset = opset_.get();
  ctx.applied.assign(opset_->size(), false);
  ctx.phase_freqs = &freqs;
  ctx.phase_stats = &phase_stats;
  ctx.queries = &queries;

  std::vector<int> remaining = ctx.RemainingOps();
  std::vector<int> defer_all(remaining.size(), 3);  // offset 3 == completion
  GaaOptions options;  // no migration cost
  auto total = EvaluateAssignment(ctx, 0, remaining, defer_all, options);
  ASSERT_TRUE(total.ok()) << total.status().ToString();

  CostOptions pricing;
  pricing.fallback_schema = &bs_->object;
  double manual = 0;
  for (size_t p = 0; p < 3; ++p) {
    auto c = EstimateWorkloadCost(bs_->source, stats_, queries, freqs[p], pricing);
    ASSERT_TRUE(c.ok());
    manual += *c;
  }
  EXPECT_NEAR(*total, manual, 1e-6);
}

TEST_F(MigrationIoTest, ArityMismatchRejected) {
  std::vector<std::vector<double>> freqs{{1}};
  std::vector<WorkloadQuery> queries;
  LogicalQuery q;
  q.anchor = bs_->user;
  q.select.emplace_back(Col("u_name"), AggFunc::kNone, "u");
  queries.emplace_back(std::move(q), true);
  std::vector<LogicalStats> phase_stats{stats_};
  MigrationContext ctx;
  ctx.current = &bs_->source;
  ctx.object = &bs_->object;
  ctx.opset = opset_.get();
  ctx.applied.assign(opset_->size(), false);
  ctx.phase_freqs = &freqs;
  ctx.phase_stats = &phase_stats;
  ctx.queries = &queries;
  std::vector<int> remaining = ctx.RemainingOps();
  std::vector<int> short_assignment(remaining.size() - 1, 0);
  EXPECT_FALSE(EvaluateAssignment(ctx, 0, remaining, short_assignment, GaaOptions{}).ok());
}

TEST_F(MigrationIoTest, MigrationCostTermAddsDeferredMovement) {
  std::vector<std::vector<double>> freqs{{1, 1, 1}};
  std::vector<WorkloadQuery> queries;
  {
    LogicalQuery q1;
    q1.anchor = bs_->author;
    q1.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
    queries.emplace_back(std::move(q1), true);
    LogicalQuery q2;
    q2.anchor = bs_->book;
    q2.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    queries.emplace_back(std::move(q2), false);
    LogicalQuery q3;
    q3.anchor = bs_->user;
    q3.select.emplace_back(Col("u_name"), AggFunc::kNone, "u");
    queries.emplace_back(std::move(q3), true);
  }
  std::vector<LogicalStats> phase_stats{stats_};
  MigrationContext ctx;
  ctx.current = &bs_->source;
  ctx.object = &bs_->object;
  ctx.opset = opset_.get();
  ctx.applied.assign(opset_->size(), false);
  ctx.phase_freqs = &freqs;
  ctx.phase_stats = &phase_stats;
  ctx.queries = &queries;
  std::vector<int> remaining = ctx.RemainingOps();
  std::vector<int> defer_all(remaining.size(), 1);
  GaaOptions without;
  GaaOptions with;
  with.include_migration_cost = true;
  auto base = EvaluateAssignment(ctx, 0, remaining, defer_all, without);
  auto inclusive = EvaluateAssignment(ctx, 0, remaining, defer_all, with);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(inclusive.ok());
  EXPECT_GT(*inclusive, *base);  // movement of every deferred op is charged
}

}  // namespace
}  // namespace pse
