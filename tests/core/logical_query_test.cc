#include "core/logical_query.h"

#include <gtest/gtest.h>

#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

TEST(LiftTest, SingleTableSelect) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto q = LiftSqlToLogical("SELECT u_name, u_addr FROM user WHERE u_id < 5", s.source, "Q1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->anchor, s.user);
  EXPECT_EQ(q->name, "Q1");
  ASSERT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->select[0].expr->ToString(), "u_name");
  ASSERT_EQ(q->filters.size(), 1u);
  EXPECT_EQ(q->filters[0]->ToString(), "u_id < 5");
}

TEST(LiftTest, FkJoinAnchorsAtManySide) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto q = LiftSqlToLogical(
      "SELECT b_title, a_name FROM book JOIN author ON b_a_id = a_id WHERE b_cost > 10",
      s.source);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->anchor, s.book);
  EXPECT_EQ(q->select.size(), 2u);
}

TEST(LiftTest, QueryOnObjectSchemaDenormalizedTable) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto q = LiftSqlToLogical("SELECT b_title, a_name, b_abstract FROM glossary", s.object);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->anchor, s.book);
}

TEST(LiftTest, FragmentKeyJoinLifts) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto q = LiftSqlToLogical(
      "SELECT u_name, u_addr FROM user_gen g JOIN user_rest r ON g.u_id = r.u_id", s.object);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->anchor, s.user);
}

TEST(LiftTest, AggregatesAndGroupByLift) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto q = LiftSqlToLogical(
      "SELECT a_name, COUNT(*) AS n, AVG(b_cost) AS avg_cost FROM book JOIN author ON "
      "b_a_id = a_id GROUP BY a_name ORDER BY 2 DESC LIMIT 3",
      s.source);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->anchor, s.book);
  ASSERT_EQ(q->select.size(), 3u);
  EXPECT_EQ(q->select[1].agg, AggFunc::kCountStar);
  EXPECT_EQ(q->select[2].agg, AggFunc::kAvg);
  ASSERT_EQ(q->group_by.size(), 1u);
  ASSERT_EQ(q->order_by.size(), 1u);
  EXPECT_TRUE(q->order_by[0].desc);
  EXPECT_EQ(q->limit, 3);
}

TEST(LiftTest, NonRelationshipJoinRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  // Joining book cost to user bday is no FK relationship.
  auto q = LiftSqlToLogical("SELECT b_title FROM book JOIN user ON b_cost = u_bday", s.source);
  ASSERT_FALSE(q.ok());
}

TEST(LiftTest, NoCommonAnchorRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  // user and book are unrelated: a cross join cannot anchor.
  auto q = LiftSqlToLogical("SELECT u_name FROM user JOIN book ON u_id = b_id", s.source);
  EXPECT_FALSE(q.ok());
}

TEST(LiftTest, NonSelectRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  EXPECT_FALSE(LiftSqlToLogical("DELETE FROM user", s.source).ok());
}

TEST(LiftTest, CloneIsDeep) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto q = LiftSqlToLogical("SELECT u_name FROM user WHERE u_id = 1", s.source, "orig");
  ASSERT_TRUE(q.ok());
  LogicalQuery copy = q->Clone();
  EXPECT_EQ(copy.name, "orig");
  EXPECT_EQ(copy.select[0].expr->ToString(), q->select[0].expr->ToString());
  EXPECT_NE(copy.select[0].expr.get(), q->select[0].expr.get());
}

TEST(LiftTest, ToStringMentionsAnchor) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto q = LiftSqlToLogical("SELECT u_name FROM user", s.source, "QX");
  ASSERT_TRUE(q.ok());
  std::string str = q->ToString(s.logical);
  EXPECT_NE(str.find("QX"), std::string::npos);
  EXPECT_NE(str.find("anchor=user"), std::string::npos);
}

}  // namespace
}  // namespace pse
