#include "core/schema_advisor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/mapping.h"

#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

class SchemaAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    auto data = bs_->MakeData(10, 40, 80);
    stats_ = data->ComputeStats();

    // Selective one-stop lookup that loves the denormalized glossary.
    LogicalQuery glossary_point;
    glossary_point.anchor = bs_->book;
    glossary_point.name = "point";
    glossary_point.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    glossary_point.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
    glossary_point.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "x");
    glossary_point.filters.push_back(
        Cmp(CompareOp::kEq, Col("b_id"), Const(Value::Int(7))));
    queries_.emplace_back(std::move(glossary_point), false);

    // Author scan that loves the normalized author table.
    LogicalQuery author_scan;
    author_scan.anchor = bs_->author;
    author_scan.name = "scan";
    author_scan.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
    author_scan.select.emplace_back(Col("a_bio"), AggFunc::kNone, "b");
    queries_.emplace_back(std::move(author_scan), true);
  }

  std::unique_ptr<Bookstore> bs_;
  LogicalStats stats_;
  std::vector<WorkloadQuery> queries_;
};

TEST_F(SchemaAdvisorTest, CreatesMissingAttributes) {
  // The seed (source) lacks b_abstract; the advisor must create it so the
  // point query becomes servable at all.
  auto result = AdviseSchema(bs_->source, stats_, queries_, {10, 10});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->schema.TableOfNonKeyAttr(bs_->b_abstract).ok());
  EXPECT_TRUE(result->schema.Validate().ok());
}

TEST_F(SchemaAdvisorTest, CreatesRejectedWhenDisallowed) {
  AdvisorOptions options;
  options.allow_creates = false;
  auto result = AdviseSchema(bs_->source, stats_, queries_, {10, 10}, options);
  EXPECT_FALSE(result.ok());
}

TEST_F(SchemaAdvisorTest, NewHeavyWorkloadGetsDenormalizedDesign) {
  // Point query dominates: the advisor should fold author (and abstract)
  // into the book table so the lookup is one-stop.
  auto result = AdviseSchema(bs_->source, stats_, queries_, {100, 1});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->final_cost, result->initial_cost);
  auto a_name_table = result->schema.TableOfNonKeyAttr(bs_->a_name);
  ASSERT_TRUE(a_name_table.ok());
  EXPECT_EQ(result->schema.tables()[*a_name_table].anchor, bs_->book)
      << result->schema.ToString();
}

TEST_F(SchemaAdvisorTest, ScanHeavyWorkloadKeepsAuthorNormalized) {
  auto result = AdviseSchema(bs_->source, stats_, queries_, {1, 100});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto a_name_table = result->schema.TableOfNonKeyAttr(bs_->a_name);
  ASSERT_TRUE(a_name_table.ok());
  EXPECT_EQ(result->schema.tables()[*a_name_table].anchor, bs_->author)
      << result->schema.ToString();
}

TEST_F(SchemaAdvisorTest, StepsNeverIncreaseCost) {
  auto result = AdviseSchema(bs_->source, stats_, queries_, {50, 50});
  ASSERT_TRUE(result.ok());
  for (const auto& step : result->steps) {
    if (step.op.kind == OperatorKind::kCreateTable) continue;  // enabling move
    EXPECT_LT(step.cost_after, step.cost_before)
        << step.op.ToString(bs_->logical);
  }
  EXPECT_LE(result->final_cost, result->initial_cost);
}

TEST_F(SchemaAdvisorTest, RecommendationIsReachableByMigration) {
  // The advisor's output composes with the migration machinery: an operator
  // set from the seed to the recommendation must exist and replay cleanly.
  auto result = AdviseSchema(bs_->source, stats_, queries_, {100, 1});
  ASSERT_TRUE(result.ok());
  auto opset = ComputeOperatorSet(bs_->source, result->schema);
  ASSERT_TRUE(opset.ok()) << opset.status().ToString();
  PhysicalSchema check = bs_->source;
  auto order = opset->TopologicalOrder();
  ASSERT_TRUE(order.ok());
  for (int i : *order) {
    ASSERT_TRUE(ApplyOperator(opset->ops[static_cast<size_t>(i)], &check).ok());
  }
  EXPECT_TRUE(check.EquivalentTo(result->schema));
}

TEST_F(SchemaAdvisorTest, IdempotentOnitsOwnOutput) {
  auto first = AdviseSchema(bs_->source, stats_, queries_, {100, 1});
  ASSERT_TRUE(first.ok());
  auto second = AdviseSchema(first->schema, stats_, queries_, {100, 1});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->schema.EquivalentTo(first->schema));
  EXPECT_NEAR(second->final_cost, first->final_cost, 1e-9);
  EXPECT_TRUE(second->steps.empty());
}

TEST_F(SchemaAdvisorTest, QueryRelevanceScoringMatchesFullScoring) {
  // Delta scoring re-estimates only the queries whose support set intersects
  // a candidate's footprint; the climb must reach the same design at the
  // same cost while estimating strictly fewer (query, schema) pairs.
  for (const std::vector<double>& freqs :
       std::vector<std::vector<double>>{{100, 1}, {1, 100}, {50, 50}}) {
    auto full = AdviseSchema(bs_->source, stats_, queries_, freqs);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    AdvisorOptions options;
    options.analysis.advisor_query_relevance = true;
    auto delta = AdviseSchema(bs_->source, stats_, queries_, freqs, options);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    EXPECT_TRUE(delta->schema.EquivalentTo(full->schema))
        << delta->schema.ToString() << "\nvs\n"
        << full->schema.ToString();
    EXPECT_NEAR(delta->final_cost, full->final_cost,
                1e-6 * std::max(1.0, full->final_cost));
    EXPECT_EQ(delta->candidates_evaluated, full->candidates_evaluated);
    EXPECT_GT(delta->queries_estimated, 0u);
    EXPECT_LT(delta->queries_estimated, full->queries_estimated);
  }
}

TEST_F(SchemaAdvisorTest, StepLimitRespected) {
  AdvisorOptions options;
  options.max_steps = 1;
  auto result = AdviseSchema(bs_->source, stats_, queries_, {100, 1}, options);
  ASSERT_TRUE(result.ok());
  // One create (enabling) + at most one hill-climbing step.
  EXPECT_LE(result->steps.size(), 2u);
}

}  // namespace
}  // namespace pse
