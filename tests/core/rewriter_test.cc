#include "core/rewriter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/logical_database.h"
#include "core/mapping.h"
#include "core/virtual_catalog.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

LogicalQuery SimpleQuery(const Bookstore& s, EntityId anchor,
                         std::vector<std::string> select_attrs, ExprPtr filter = nullptr) {
  LogicalQuery q;
  q.anchor = anchor;
  for (auto& a : select_attrs) {
    q.select.emplace_back(Col(a), AggFunc::kNone, a);
  }
  if (filter) q.filters.push_back(std::move(filter));
  (void)s;
  return q;
}

/// Materializes `schema`, rewrites `q` onto it, executes, and returns rows
/// sorted for order-insensitive comparison.
std::vector<Row> RunOn(const Bookstore& s, const LogicalDatabase& data,
                       const PhysicalSchema& schema, const LogicalQuery& q) {
  (void)s;
  Database db(512);
  EXPECT_TRUE(data.Materialize(&db, schema).ok());
  auto bound = RewriteQuery(q, schema);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString() << "\nschema:\n" << schema.ToString();
  if (!bound.ok()) return {};
  DatabaseCatalogView view(&db);
  auto plan = PlanQuery(*bound, view);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  if (!plan.ok()) return {};
  auto rows = ExecutePlan(**plan, &db);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  if (!rows.ok()) return {};
  std::vector<Row> out = *rows;
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return out;
}

TEST(RewriterTest, DirectFragmentAccess) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  LogicalQuery q = SimpleQuery(s, s.user, {"u_name"});
  auto bound = RewriteQuery(q, s.source);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->tables.size(), 1u);
  EXPECT_EQ(bound->tables[0].table, "user");
  EXPECT_FALSE(bound->tables[0].distinct);
}

TEST(RewriterTest, SplitFragmentsJoinOnKey) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  // u_name and u_addr live in different fragments of the object schema.
  LogicalQuery q = SimpleQuery(s, s.user, {"u_name", "u_addr"});
  auto bound = RewriteQuery(q, s.object);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->tables.size(), 2u);
  ASSERT_EQ(bound->joins.size(), 1u);
  EXPECT_EQ(bound->joins[0].left_column, "u_id");
  EXPECT_EQ(bound->joins[0].right_column, "u_id");
}

TEST(RewriterTest, ParentFragmentJoinsFkToKey) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  // Book query touching author attrs on the source schema -> fk join.
  LogicalQuery q = SimpleQuery(s, s.book, {"b_title", "a_name"});
  auto bound = RewriteQuery(q, s.source);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->tables.size(), 2u);
  ASSERT_EQ(bound->joins.size(), 1u);
  EXPECT_EQ(bound->joins[0].left_column, "b_a_id");
  EXPECT_EQ(bound->joins[0].right_column, "a_id");
}

TEST(RewriterTest, DenormalizedAccessNeedsNoJoin) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  LogicalQuery q = SimpleQuery(s, s.book, {"b_title", "a_name"});
  auto bound = RewriteQuery(q, s.object);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->tables.size(), 1u);
  EXPECT_TRUE(bound->joins.empty());
  EXPECT_EQ(bound->tables[0].table, "glossary");
}

TEST(RewriterTest, ChildDenormalizedAccessUsesDistinct) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  // Author-anchored query on the object schema: author lives inside
  // glossary (anchored at book) -> DISTINCT access.
  LogicalQuery q = SimpleQuery(s, s.author, {"a_name"});
  auto bound = RewriteQuery(q, s.object);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->tables.size(), 1u);
  EXPECT_EQ(bound->tables[0].table, "glossary");
  EXPECT_TRUE(bound->tables[0].distinct);
  EXPECT_EQ(bound->tables[0].distinct_key, "a_id");
}

TEST(RewriterTest, MissingNewAttrIsBindError) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  LogicalQuery q = SimpleQuery(s, s.book, {"b_abstract"});
  auto bound = RewriteQuery(q, s.source);
  ASSERT_FALSE(bound.ok());
  EXPECT_TRUE(bound.status().IsBindError());
}

TEST(RewriterTest, UnrelatedAnchorRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  LogicalQuery q = SimpleQuery(s, s.user, {"b_title"});
  EXPECT_FALSE(RewriteQuery(q, s.source).ok());
}

// --- result-equivalence tests: the heart of correct rewriting ---

TEST(RewriterTest, EquivalenceAcrossSourceAndObject) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto data = s.MakeData(6, 8, 20);

  std::vector<LogicalQuery> queries;
  queries.push_back(SimpleQuery(s, s.book, {"b_title", "a_name"},
                                Cmp(CompareOp::kGt, Col("b_cost"), Const(Value::Double(20.0)))));
  queries.push_back(SimpleQuery(s, s.author, {"a_name", "a_bio"}));
  queries.push_back(SimpleQuery(s, s.user, {"u_name", "u_addr"},
                                Cmp(CompareOp::kLt, Col("u_id"), Const(Value::Int(10)))));
  // Aggregate: books per author.
  {
    LogicalQuery q;
    q.anchor = s.book;
    q.group_by.push_back(Col("a_name"));
    q.select.emplace_back(Col("a_name"), AggFunc::kNone, "a_name");
    q.select.emplace_back(nullptr, AggFunc::kCountStar, "n");
    q.select.emplace_back(Col("b_cost"), AggFunc::kSum, "total_cost");
    queries.push_back(std::move(q));
  }
  // Point lookup through the key.
  queries.push_back(SimpleQuery(s, s.book, {"b_title"},
                                Cmp(CompareOp::kEq, Col("b_id"), Const(Value::Int(17)))));

  for (const auto& q : queries) {
    std::vector<Row> on_source = RunOn(s, *data, s.source, q);
    std::vector<Row> on_object = RunOn(s, *data, s.object, q);
    ASSERT_FALSE(on_source.empty());
    ASSERT_EQ(on_source.size(), on_object.size());
    for (size_t i = 0; i < on_source.size(); ++i) {
      EXPECT_TRUE(RowEq()(on_source[i], on_object[i]))
          << RowToString(on_source[i]) << " vs " << RowToString(on_object[i]);
    }
  }
}

// Property: on EVERY intermediate schema (random dependency-closed subsets
// of the operator set), every query returns the same result as on source.
class RewriterEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriterEquivalenceProperty, IntermediateSchemasPreserveResults) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto data = s.MakeData(5, 6, 12);
  auto opset = ComputeOperatorSet(s.source, s.object);
  ASSERT_TRUE(opset.ok());
  auto topo = opset->TopologicalOrder();
  ASSERT_TRUE(topo.ok());

  std::vector<LogicalQuery> queries;
  queries.push_back(SimpleQuery(s, s.book, {"b_title", "a_name", "b_cost"}));
  queries.push_back(SimpleQuery(s, s.author, {"a_name"}));
  queries.push_back(SimpleQuery(s, s.user, {"u_name", "u_bday", "u_addr"}));
  {
    LogicalQuery q;
    q.anchor = s.book;
    q.group_by.push_back(Col("a_id"));
    q.select.emplace_back(Col("a_id"), AggFunc::kNone, "a_id");
    q.select.emplace_back(Col("b_cost"), AggFunc::kMax, "max_cost");
    queries.push_back(std::move(q));
  }

  std::vector<std::vector<Row>> baselines;
  for (const auto& q : queries) baselines.push_back(RunOn(s, *data, s.source, q));

  Rng rng(GetParam());
  for (int iter = 0; iter < 8; ++iter) {
    // Random dependency-closed prefix: walk the topo order, keep each op
    // with probability 1/2 IF its deps are kept.
    std::vector<bool> keep(opset->size(), false);
    PhysicalSchema schema = s.source;
    for (int i : *topo) {
      bool deps_ok = true;
      for (int d : opset->deps[static_cast<size_t>(i)]) {
        if (!keep[static_cast<size_t>(d)]) deps_ok = false;
      }
      if (deps_ok && rng.Bernoulli(0.5)) {
        keep[static_cast<size_t>(i)] = true;
        ASSERT_TRUE(ApplyOperator(opset->ops[static_cast<size_t>(i)], &schema).ok());
      }
    }
    ASSERT_TRUE(schema.Validate().ok());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      std::vector<Row> rows = RunOn(s, *data, schema, queries[qi]);
      ASSERT_EQ(rows.size(), baselines[qi].size())
          << "query " << qi << " on\n"
          << schema.ToString();
      for (size_t r = 0; r < rows.size(); ++r) {
        ASSERT_TRUE(RowEq()(rows[r], baselines[qi][r]))
            << "query " << qi << ": " << RowToString(rows[r]) << " vs "
            << RowToString(baselines[qi][r]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriterEquivalenceProperty, ::testing::Values(3, 33, 333));

}  // namespace
}  // namespace pse
