// Tests for the physical migration executor and the three-situation
// simulation harness.
#include <gtest/gtest.h>

#include "core/migration_executor.h"
#include "core/rewriter.h"
#include "core/simulation.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

class MigrationExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    data_ = bs_->MakeData(5, 8, 15);
    db_ = std::make_unique<Database>(512);
    ASSERT_TRUE(data_->Materialize(db_.get(), bs_->source).ok());
    schema_ = bs_->source;
    executor_ = std::make_unique<MigrationExecutor>(db_.get(), data_.get());
  }

  /// Runs a logical query on the current schema/db; returns sorted rows.
  std::vector<Row> Run(const LogicalQuery& q) {
    auto bound = RewriteQuery(q, schema_);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    DatabaseCatalogView view(db_.get());
    auto plan = PlanQuery(*bound, view);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto rows = ExecutePlan(**plan, db_.get());
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    std::vector<Row> out = rows.ok() ? *rows : std::vector<Row>{};
    std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
      for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return false;
    });
    return out;
  }

  LogicalQuery BookAuthorQuery() {
    LogicalQuery q;
    q.anchor = bs_->book;
    q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    q.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
    return q;
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<LogicalDatabase> data_;
  std::unique_ptr<Database> db_;
  PhysicalSchema schema_;
  std::unique_ptr<MigrationExecutor> executor_;
};

TEST_F(MigrationExecutorTest, SplitMovesData) {
  std::vector<Row> before = Run(
      [&] {
        LogicalQuery q;
        q.anchor = bs_->user;
        q.select.emplace_back(Col("u_name"), AggFunc::kNone, "n");
        q.select.emplace_back(Col("u_addr"), AggFunc::kNone, "a");
        return q;
      }());
  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 100;
  op.split_moved = {bs_->u_addr};
  op.split_moved_anchor = bs_->user;
  auto io = executor_->Apply(op, &schema_);
  ASSERT_TRUE(io.ok()) << io.status().ToString();
  EXPECT_GT(*io, 0u);
  EXPECT_FALSE(db_->HasTable("user"));  // old table dropped
  std::vector<Row> after = Run([&] {
    LogicalQuery q;
    q.anchor = bs_->user;
    q.select.emplace_back(Col("u_name"), AggFunc::kNone, "n");
    q.select.emplace_back(Col("u_addr"), AggFunc::kNone, "a");
    return q;
  }());
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) EXPECT_TRUE(RowEq()(before[i], after[i]));
}

TEST_F(MigrationExecutorTest, CombineMovesData) {
  std::vector<Row> before = Run(BookAuthorQuery());
  MigrationOperator op;
  op.kind = OperatorKind::kCombineTable;
  op.id = 101;
  op.combine_left_rep = bs_->b_title;
  op.combine_right_rep = bs_->a_name;
  auto io = executor_->Apply(op, &schema_);
  ASSERT_TRUE(io.ok()) << io.status().ToString();
  EXPECT_FALSE(db_->HasTable("book"));
  EXPECT_FALSE(db_->HasTable("author"));
  std::vector<Row> after = Run(BookAuthorQuery());
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) EXPECT_TRUE(RowEq()(before[i], after[i]));
}

TEST_F(MigrationExecutorTest, CreateMaterializesNewAttrs) {
  MigrationOperator op;
  op.kind = OperatorKind::kCreateTable;
  op.id = 102;
  op.create_entity = bs_->book;
  op.create_attrs = {bs_->b_abstract};
  auto io = executor_->Apply(op, &schema_);
  ASSERT_TRUE(io.ok()) << io.status().ToString();
  LogicalQuery q;
  q.anchor = bs_->book;
  q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "x");
  std::vector<Row> rows = Run(q);
  EXPECT_EQ(rows.size(), data_->NumRows(bs_->book));
  EXPECT_NE(rows[0][0].AsString().find("abstract"), std::string::npos);
}

TEST_F(MigrationExecutorTest, FullMigrationPreservesEveryQuery) {
  auto opset = ComputeOperatorSet(bs_->source, bs_->object);
  ASSERT_TRUE(opset.ok());
  std::vector<Row> before = Run(BookAuthorQuery());
  auto topo = opset->TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  for (int i : *topo) {
    auto io = executor_->Apply(opset->ops[static_cast<size_t>(i)], &schema_);
    ASSERT_TRUE(io.ok()) << io.status().ToString();
  }
  EXPECT_TRUE(schema_.EquivalentTo(bs_->object));
  std::vector<Row> after = Run(BookAuthorQuery());
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) EXPECT_TRUE(RowEq()(before[i], after[i]));
}

// --- simulation harness ---

class SimulationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    data_ = bs_->MakeData(8, 25, 60);

    // Old-style and new-style workload members.
    LogicalQuery old_author;
    old_author.anchor = bs_->author;
    old_author.select.emplace_back(Col("a_name"), AggFunc::kNone, "a_name");
    old_author.select.emplace_back(Col("a_bio"), AggFunc::kNone, "a_bio");
    old_author.name = "O1";
    queries_.emplace_back(std::move(old_author), true);

    LogicalQuery old_user;
    old_user.anchor = bs_->user;
    old_user.select.emplace_back(Col("u_name"), AggFunc::kNone, "u_name");
    old_user.select.emplace_back(Col("u_bday"), AggFunc::kNone, "u_bday");
    old_user.select.emplace_back(Col("u_addr"), AggFunc::kNone, "u_addr");
    old_user.name = "O2";
    queries_.emplace_back(std::move(old_user), true);

    // New queries are SELECTIVE and touch the new attribute: index lookups
    // on the one-stop denormalized glossary make the object schema their
    // genuine optimum (full-scan queries would favor the narrower
    // normalized fragments instead -- see DESIGN.md).
    LogicalQuery new_glossary;
    new_glossary.anchor = bs_->book;
    new_glossary.select.emplace_back(Col("b_title"), AggFunc::kNone, "b_title");
    new_glossary.select.emplace_back(Col("a_name"), AggFunc::kNone, "a_name");
    new_glossary.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "b_abstract");
    new_glossary.filters.push_back(
        Cmp(CompareOp::kLt, Col("b_id"), Const(Value::Int(25))));
    new_glossary.name = "N1";
    queries_.emplace_back(std::move(new_glossary), false);

    LogicalQuery new_abstract;
    new_abstract.anchor = bs_->book;
    new_abstract.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "b_abstract");
    new_abstract.select.emplace_back(Col("a_bio"), AggFunc::kNone, "a_bio");
    new_abstract.select.emplace_back(Col("b_title"), AggFunc::kNone, "b_title");
    new_abstract.filters.push_back(
        Cmp(CompareOp::kEq, Col("b_id"), Const(Value::Int(7))));
    new_abstract.name = "N2";
    queries_.emplace_back(std::move(new_abstract), false);

    // Old workload fades, new workload rises, over 3 phases.
    freqs_ = {{40, 30, 5, 2}, {20, 15, 20, 10}, {5, 3, 40, 30}};
  }

  SimulationConfig Config(PlannerKind planner) {
    SimulationConfig config;
    config.planner = planner;
    config.buffer_pool_pages = 128;  // small: make I/O visible
    config.gaa.ga.population_size = 20;
    config.gaa.ga.generations = 25;
    return config;
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<LogicalDatabase> data_;
  std::vector<WorkloadQuery> queries_;
  std::vector<std::vector<double>> freqs_;
};

TEST_F(SimulationTest, ProSchemaBetweenBounds) {
  MigrationSimulation sim(&bs_->source, &bs_->object, &queries_, freqs_, data_.get(),
                          Config(PlannerKind::kLaa));
  auto opt = sim.Run(Situation::kOptSchema);
  auto pro = sim.Run(Situation::kProSchema);
  auto obj = sim.Run(Situation::kObjSchema);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  ASSERT_TRUE(pro.ok()) << pro.status().ToString();
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  ASSERT_EQ(opt->phases.size(), 3u);
  // The paper's bounds: Opt <= Pro <= Obj overall (small tolerance — these
  // are measured I/O counts, not estimates).
  EXPECT_LE(opt->OverallCost(), pro->OverallCost() * 1.05);
  EXPECT_LE(pro->OverallCost(), obj->OverallCost() * 1.05);
}

TEST_F(SimulationTest, ProReachesObjectAndMovesData) {
  MigrationSimulation sim(&bs_->source, &bs_->object, &queries_, freqs_, data_.get(),
                          Config(PlannerKind::kLaa));
  auto pro = sim.Run(Situation::kProSchema);
  ASSERT_TRUE(pro.ok()) << pro.status().ToString();
  // All operators applied somewhere (phases or the completion step).
  size_t ops_in_phases = 0;
  for (const auto& p : pro->phases) ops_in_phases += p.ops_applied.size();
  EXPECT_GT(pro->TotalMigrationIo(), 0.0);
  EXPECT_GT(ops_in_phases + (pro->final_migration_io > 0 ? 1 : 0), 0u);
}

TEST_F(SimulationTest, GaaRunsEndToEnd) {
  MigrationSimulation sim(&bs_->source, &bs_->object, &queries_, freqs_, data_.get(),
                          Config(PlannerKind::kGaa));
  auto pro = sim.Run(Situation::kProSchema);
  ASSERT_TRUE(pro.ok()) << pro.status().ToString();
  EXPECT_EQ(pro->phases.size(), 3u);
  EXPECT_GT(sim.last_planner_evaluations(), 0u);
}

TEST_F(SimulationTest, EstimateOnlyModeIsConsistent) {
  SimulationConfig config = Config(PlannerKind::kLaa);
  config.measure_actual = false;
  MigrationSimulation sim(&bs_->source, &bs_->object, &queries_, freqs_, data_.get(), config);
  auto opt = sim.Run(Situation::kOptSchema);
  auto pro = sim.Run(Situation::kProSchema);
  auto obj = sim.Run(Situation::kObjSchema);
  ASSERT_TRUE(opt.ok());
  ASSERT_TRUE(pro.ok());
  ASSERT_TRUE(obj.ok());
  EXPECT_LE(opt->OverallCost(), pro->OverallCost() * 1.05);
  EXPECT_LE(pro->OverallCost(), obj->OverallCost() * 1.05);
}

TEST_F(SimulationTest, PhaseCostsArePositive) {
  MigrationSimulation sim(&bs_->source, &bs_->object, &queries_, freqs_, data_.get(),
                          Config(PlannerKind::kLaa));
  auto obj = sim.Run(Situation::kObjSchema);
  ASSERT_TRUE(obj.ok());
  for (const auto& p : obj->phases) EXPECT_GT(p.query_cost, 0.0);
}

}  // namespace
}  // namespace pse
