#include "core/physical_schema.h"

#include <gtest/gtest.h>

#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

TEST(PhysicalSchemaTest, PaperSchemasValidate) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  EXPECT_TRUE(s.source.Validate().ok()) << s.source.Validate().ToString();
  EXPECT_TRUE(s.object.Validate().ok()) << s.object.Validate().ToString();
}

TEST(PhysicalSchemaTest, CompleteAttrSetAddsKeys) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto attrs = PhysicalSchema::CompleteAttrSet(s.logical, s.book, {s.b_title, s.a_name});
  // Must contain b_id (anchor key) and a_id (embedded entity key).
  EXPECT_NE(std::find(attrs.begin(), attrs.end(), s.b_id), attrs.end());
  EXPECT_NE(std::find(attrs.begin(), attrs.end(), s.a_id), attrs.end());
}

TEST(PhysicalSchemaTest, NonKeyAttrLocation) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto t = s.source.TableOfNonKeyAttr(s.b_title);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(s.source.tables()[*t].name, "book");
  // b_abstract is new: absent from source, present in object.
  EXPECT_FALSE(s.source.TableOfNonKeyAttr(s.b_abstract).ok());
  EXPECT_TRUE(s.object.TableOfNonKeyAttr(s.b_abstract).ok());
}

TEST(PhysicalSchemaTest, KeyAttrsInMultipleTables) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  // u_id is the key of both user fragments in the object schema.
  auto tables = s.object.TablesWithAttr(s.u_id);
  EXPECT_EQ(tables.size(), 2u);
}

TEST(PhysicalSchemaTest, MissingChainFkRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema bad(&s.logical);
  // Embed a_name into a book-anchored table WITHOUT the b_a_id chain FK.
  PhysicalTable t;
  t.name = "broken";
  t.anchor = s.book;
  t.attrs = {s.b_id, s.b_title, s.a_id, s.a_name};
  bad.AddRawTable(std::move(t));
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(PhysicalSchemaTest, DuplicateNonKeyAttrRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema bad(&s.logical);
  ASSERT_TRUE(bad.AddTable("t1", s.user, {s.u_name}).ok());
  ASSERT_TRUE(bad.AddTable("t2", s.user, {s.u_name, s.u_addr}).ok());
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(PhysicalSchemaTest, UnjustifiedKeyRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema bad(&s.logical);
  PhysicalTable t;
  t.name = "weird";
  t.anchor = s.user;
  t.attrs = {s.u_id, s.u_name, s.a_id};  // a_id has no author attrs with it
  bad.AddRawTable(std::move(t));
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(PhysicalSchemaTest, ToTableSchemaShape) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto glossary_idx = s.object.TableByName("glossary");
  ASSERT_TRUE(glossary_idx.ok());
  TableSchema ts = s.object.ToTableSchema(*glossary_idx);
  EXPECT_EQ(ts.name(), "glossary");
  // Anchor key first, not nullable.
  EXPECT_EQ(ts.column(0).name, "b_id");
  EXPECT_FALSE(ts.column(0).nullable);
  ASSERT_EQ(ts.key_columns().size(), 1u);
  EXPECT_EQ(ts.key_columns()[0], "b_id");
  // All glossary attrs present as columns.
  EXPECT_TRUE(ts.HasColumn("a_name"));
  EXPECT_TRUE(ts.HasColumn("b_abstract"));
  EXPECT_TRUE(ts.HasColumn("a_id"));
}

TEST(PhysicalSchemaTest, EquivalenceIgnoresNames) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema renamed(&s.logical);
  ASSERT_TRUE(
      renamed.AddTable("x1", s.book, {s.b_title, s.b_cost, s.b_a_id, s.a_name, s.a_bio,
                                      s.b_abstract})
          .ok());
  ASSERT_TRUE(renamed.AddTable("x2", s.user, {s.u_name, s.u_bday}).ok());
  ASSERT_TRUE(renamed.AddTable("x3", s.user, {s.u_addr}).ok());
  EXPECT_TRUE(renamed.EquivalentTo(s.object));
  EXPECT_FALSE(renamed.EquivalentTo(s.source));
}

TEST(PhysicalSchemaTest, ToStringListsTables) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  std::string str = s.source.ToString();
  EXPECT_NE(str.find("book"), std::string::npos);
  EXPECT_NE(str.find("anchor=author"), std::string::npos);
}

}  // namespace
}  // namespace pse
