// Shared fixture for core tests: a miniature bookstore modeled after the
// paper's running examples (combine book+author, split user, new abstract
// column).
#pragma once

#include <memory>

#include "core/logical_database.h"
#include "core/logical_schema.h"
#include "core/physical_schema.h"
#include "common/rng.h"

namespace pse {
namespace coretest {

struct Bookstore {
  // PhysicalSchema holds a pointer to `logical`, so a Bookstore must never
  // be copied or moved; Make() heap-allocates it.
  Bookstore() = default;
  Bookstore(const Bookstore&) = delete;
  Bookstore& operator=(const Bookstore&) = delete;

  LogicalSchema logical;
  EntityId author = kInvalidId, book = kInvalidId, user = kInvalidId;
  AttrId a_id, a_name, a_bio;
  AttrId b_id, b_title, b_cost, b_a_id, b_abstract;  // b_abstract is new
  AttrId u_id, u_name, u_bday, u_addr;
  PhysicalSchema source;
  PhysicalSchema object;

  /// Paper-style schemas:
  ///   source: author(a_id,a_name,a_bio), book(b_id,b_title,b_cost,b_a_id),
  ///           user(u_id,u_name,u_bday,u_addr)
  ///   object: glossary = book x author (+ new b_abstract) anchored at book,
  ///           user_gen(u_id,u_name,u_bday), user_rest(u_id,u_addr)
  static std::unique_ptr<Bookstore> Make() {
    auto out = std::make_unique<Bookstore>();
    Bookstore& s = *out;
    LogicalSchema& L = s.logical;
    s.author = L.AddEntity("author", "a_id");
    s.book = L.AddEntity("book", "b_id");
    s.user = L.AddEntity("user", "u_id");
    s.a_id = *L.AttrByName("a_id");
    s.b_id = *L.AttrByName("b_id");
    s.u_id = *L.AttrByName("u_id");
    s.a_name = *L.AddAttribute(s.author, "a_name", TypeId::kVarchar, 16);
    s.a_bio = *L.AddAttribute(s.author, "a_bio", TypeId::kVarchar, 40);
    s.b_title = *L.AddAttribute(s.book, "b_title", TypeId::kVarchar, 24);
    s.b_cost = *L.AddAttribute(s.book, "b_cost", TypeId::kDouble);
    s.b_a_id = *L.AddForeignKey(s.book, "b_a_id", s.author);
    s.b_abstract = *L.AddAttribute(s.book, "b_abstract", TypeId::kVarchar, 60, /*is_new=*/true);
    s.u_name = *L.AddAttribute(s.user, "u_name", TypeId::kVarchar, 16);
    s.u_bday = *L.AddAttribute(s.user, "u_bday", TypeId::kInt64);
    s.u_addr = *L.AddAttribute(s.user, "u_addr", TypeId::kVarchar, 32);

    s.source = PhysicalSchema(&L);
    (void)s.source.AddTable("author", s.author, {s.a_name, s.a_bio});
    (void)s.source.AddTable("book", s.book, {s.b_title, s.b_cost, s.b_a_id});
    (void)s.source.AddTable("user", s.user, {s.u_name, s.u_bday, s.u_addr});

    s.object = PhysicalSchema(&L);
    (void)s.object.AddTable("glossary", s.book,
                            {s.b_title, s.b_cost, s.b_a_id, s.a_name, s.a_bio, s.b_abstract});
    (void)s.object.AddTable("user_gen", s.user, {s.u_name, s.u_bday});
    (void)s.object.AddTable("user_rest", s.user, {s.u_addr});
    return out;
  }

  /// Deterministic data: `authors` authors, `books_per_author` books each
  /// (covering: every author has books), `users` users.
  std::unique_ptr<LogicalDatabase> MakeData(int authors = 10, int books_per_author = 20,
                                            int users = 50) const {
    auto data = std::make_unique<LogicalDatabase>(&logical);
    for (int a = 0; a < authors; ++a) {
      // attribute order: a_id, a_name, a_bio
      (void)data->AddRow(author, {Value::Int(a), Value::Varchar("author-" + std::to_string(a)),
                                  Value::Varchar("bio of author " + std::to_string(a))});
    }
    int b = 0;
    for (int a = 0; a < authors; ++a) {
      for (int k = 0; k < books_per_author; ++k, ++b) {
        // attribute order: b_id, b_title, b_cost, b_a_id, b_abstract
        (void)data->AddRow(
            book, {Value::Int(b), Value::Varchar("title-" + std::to_string(b)),
                   Value::Double(5.0 + b % 37), Value::Int(a),
                   Value::Varchar("abstract for book " + std::to_string(b))});
      }
    }
    for (int u = 0; u < users; ++u) {
      // attribute order: u_id, u_name, u_bday, u_addr
      (void)data->AddRow(user, {Value::Int(u), Value::Varchar("user-" + std::to_string(u)),
                                Value::Int(19600101 + u * 37),
                                Value::Varchar("street " + std::to_string(u * 7))});
    }
    return data;
  }
};

}  // namespace coretest
}  // namespace pse
