// Shim: the shared fixtures moved to tests/common/test_db_builder.h so the
// engine and analysis suites can use them too. Kept so existing includes
// (and out-of-tree test patches) keep compiling.
#pragma once

#include "tests/common/test_db_builder.h"

namespace pse {
namespace coretest {

using testutil::Bookstore;
using testutil::SameRows;
using testutil::SortRows;
using testutil::TableRows;

}  // namespace coretest
}  // namespace pse
