#include "core/logical_schema.h"

#include <gtest/gtest.h>

#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

TEST(LogicalSchemaTest, EntitiesAndAttributes) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  EXPECT_EQ(s.logical.num_entities(), 3u);
  EXPECT_EQ(s.logical.entity(s.book).name, "book");
  EXPECT_TRUE(s.logical.attr(s.b_id).is_key);
  EXPECT_FALSE(s.logical.attr(s.b_title).is_key);
  EXPECT_TRUE(s.logical.attr(s.b_abstract).is_new);
  ASSERT_TRUE(s.logical.attr(s.b_a_id).references.has_value());
  EXPECT_EQ(*s.logical.attr(s.b_a_id).references, s.author);
}

TEST(LogicalSchemaTest, LookupByName) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto e = s.logical.EntityByName("AUTHOR");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, s.author);
  auto a = s.logical.AttrByName("b_title");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, s.b_title);
  EXPECT_FALSE(s.logical.EntityByName("nope").ok());
  EXPECT_FALSE(s.logical.AttrByName("nope").ok());
}

TEST(LogicalSchemaTest, DuplicateAttributeRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  EXPECT_TRUE(s.logical.AddAttribute(s.book, "b_title", TypeId::kVarchar).status()
                  .IsAlreadyExists());
}

TEST(LogicalSchemaTest, Reachability) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  EXPECT_TRUE(s.logical.Reaches(s.book, s.author));
  EXPECT_FALSE(s.logical.Reaches(s.author, s.book));
  EXPECT_TRUE(s.logical.Reaches(s.book, s.book));
  EXPECT_FALSE(s.logical.Reaches(s.user, s.book));
}

TEST(LogicalSchemaTest, FkPathSingleHop) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto path = s.logical.FkPath(s.book, s.author);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_EQ((*path)[0], s.b_a_id);
  auto self = s.logical.FkPath(s.book, s.book);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self->empty());
  EXPECT_FALSE(s.logical.FkPath(s.author, s.book).ok());
}

TEST(LogicalSchemaTest, MultiHopFkPath) {
  LogicalSchema L;
  EntityId c = L.AddEntity("customer", "c_id");
  EntityId o = L.AddEntity("orders", "o_id");
  EntityId ol = L.AddEntity("order_line", "ol_id");
  AttrId o_c = *L.AddForeignKey(o, "o_c_id", c);
  AttrId ol_o = *L.AddForeignKey(ol, "ol_o_id", o);
  auto path = L.FkPath(ol, c);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ((*path)[0], ol_o);
  EXPECT_EQ((*path)[1], o_c);
}

TEST(LogicalSchemaTest, CommonAnchor) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto anchor = s.logical.CommonAnchor({s.book, s.author});
  ASSERT_TRUE(anchor.ok());
  EXPECT_EQ(*anchor, s.book);
  auto solo = s.logical.CommonAnchor({s.user});
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(*solo, s.user);
  EXPECT_FALSE(s.logical.CommonAnchor({s.user, s.book}).ok());
}

TEST(LogicalStatsTest, ResizeMatchesSchema) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  LogicalStats stats;
  stats.Resize(s.logical);
  EXPECT_EQ(stats.entity_rows.size(), s.logical.num_entities());
  EXPECT_EQ(stats.attrs.size(), s.logical.num_attributes());
}

}  // namespace
}  // namespace pse
