// Online migration execution: batched copy, fault injection between batches,
// crash + reopen + resume/rollback round-trips, and the executor's
// partial-failure guarantees (atomicity, no-trace collisions, partial
// progress reporting).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/migration_executor.h"
#include "core/simulation.h"
#include "storage/disk_manager.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;
using coretest::SameRows;
using coretest::TableRows;

MigrationOperator SplitUserOp(const Bookstore& bs) {
  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 7;
  op.split_moved = {bs.u_addr};
  op.split_moved_anchor = bs.user;
  return op;
}

class OnlineMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    data_ = bs_->MakeData(5, 8, 60);
    path_ = testing::TempDir() + "/pse_online_migration_test.db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Reference result: the split applied in one go on a fresh in-memory db.
  void ReferenceSplit(std::vector<Row>* rest, std::vector<Row>* moved,
                      PhysicalSchema* schema_out = nullptr) {
    Database db(512);
    ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
    PhysicalSchema schema = bs_->source;
    MigrationExecutor exec(&db, data_.get());
    auto io = exec.Apply(SplitUserOp(*bs_), &schema);
    ASSERT_TRUE(io.ok()) << io.status().ToString();
    *rest = TableRows(&db, "m7a_user");
    *moved = TableRows(&db, "m7b_user");
    if (schema_out) *schema_out = schema;
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<LogicalDatabase> data_;
  std::string path_;
};

// --- partial-failure guarantees (in-memory) ---

TEST_F(OnlineMigrationTest, MidCopyFailureRollsBackAtomically) {
  Database db(512);
  ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
  PhysicalSchema schema = bs_->source;
  MigrationExecutor exec(&db, data_.get());

  MigrationOptions opts;
  opts.batch_rows = 16;
  opts.on_batch = [](const MigrationBatchEvent& ev) -> Status {
    if (ev.batch_index >= 2) return Status::Internal("simulated fault");
    return Status::OK();
  };
  exec.set_options(std::move(opts));

  std::vector<Row> user_before = TableRows(&db, "user");
  auto io = exec.Apply(SplitUserOp(*bs_), &schema);
  ASSERT_FALSE(io.ok());
  // Error is annotated with the operator and the I/O spent before rollback.
  EXPECT_NE(io.status().message().find("op#7"), std::string::npos) << io.status().ToString();
  // Atomicity: no trace of the half-applied operator.
  EXPECT_FALSE(db.HasTable("m7a_user"));
  EXPECT_FALSE(db.HasTable("m7b_user"));
  EXPECT_FALSE(db.HasPendingMigration());
  EXPECT_TRUE(db.HasTable("user"));
  EXPECT_TRUE(SameRows(user_before, TableRows(&db, "user")));
  // The schema object was left untouched, so the op can simply be retried.
  exec.set_options(MigrationOptions{});
  auto retry = exec.Apply(SplitUserOp(*bs_), &schema);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

// Regression: the seed executor created targets one at a time and returned
// on the first error, leaving earlier targets (with fully copied data)
// behind. A name collision on the *second* split target must not leave the
// first one in the catalog.
TEST_F(OnlineMigrationTest, TargetCollisionLeavesNoTrace) {
  Database db(512);
  ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
  PhysicalSchema schema = bs_->source;
  MigrationExecutor exec(&db, data_.get());

  // Occupy the second target's name ("m7b_user") before applying.
  TableSchema decoy("m7b_user", {Column("x", TypeId::kInt64, 0, false)}, {"x"});
  ASSERT_TRUE(db.CreateTable(decoy).ok());

  auto io = exec.Apply(SplitUserOp(*bs_), &schema);
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.status().code(), StatusCode::kAlreadyExists) << io.status().ToString();
  // Nothing was created or copied; the colliding table was NOT clobbered.
  EXPECT_FALSE(db.HasTable("m7a_user"));
  EXPECT_TRUE(db.HasTable("m7b_user"));
  EXPECT_TRUE(db.HasTable("user"));
  EXPECT_FALSE(db.HasPendingMigration());
  auto decoy_info = db.GetTable("m7b_user");
  ASSERT_TRUE(decoy_info.ok());
  EXPECT_EQ((*decoy_info)->schema->num_columns(), 1u);
}

TEST_F(OnlineMigrationTest, ZeroBatchRowsIsRejected) {
  Database db(512);
  ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
  PhysicalSchema schema = bs_->source;
  MigrationExecutor exec(&db, data_.get());
  MigrationOptions opts;
  opts.batch_rows = 0;
  exec.set_options(std::move(opts));
  auto io = exec.Apply(SplitUserOp(*bs_), &schema);
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OnlineMigrationTest, ApplyAllReportsPartialProgress) {
  Database db(512);
  ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
  PhysicalSchema schema = bs_->source;
  MigrationExecutor exec(&db, data_.get());

  MigrationOperator create;
  create.kind = OperatorKind::kCreateTable;
  create.id = 1;
  create.create_entity = bs_->book;
  create.create_attrs = {bs_->b_abstract};

  // The second op collides with a pre-existing table and fails up front.
  TableSchema decoy("m7b_user", {Column("x", TypeId::kInt64, 0, false)}, {"x"});
  ASSERT_TRUE(db.CreateTable(decoy).ok());

  MigrationProgress progress;
  auto io = exec.ApplyAll({create, SplitUserOp(*bs_)}, &schema, &progress);
  ASSERT_FALSE(io.ok());
  // The first operator's work is reported, and the error names the position.
  EXPECT_EQ(progress.ops_applied, 1u);
  EXPECT_GT(progress.io, 0u);
  EXPECT_NE(io.status().message().find("after 1 of 2 ops"), std::string::npos)
      << io.status().ToString();
  // The create really is applied (it precedes the failure).
  EXPECT_TRUE(db.HasTable("m1_book_new"));
}

// Regression: the seed executor deduplicated split keys via AsInt(), which
// only worked for BIGINT keys. Dedup must follow Value equality so splits
// anchored at natural-key (VARCHAR) entities survive.
TEST_F(OnlineMigrationTest, SplitDedupHandlesStringKeys) {
  LogicalSchema L;
  EntityId item = L.AddEntity("item", "i_id");
  EntityId cat = L.AddEntity("cat", "c_name", TypeId::kVarchar, 12);
  AttrId i_title = *L.AddAttribute(item, "i_title", TypeId::kVarchar, 16);
  AttrId c_name = L.entity(cat).key;
  AttrId c_desc = *L.AddAttribute(cat, "c_desc", TypeId::kVarchar, 24);

  PhysicalSchema source(&L);
  // AddTable takes non-key attrs only; c_desc pulls in cat's key (c_name)
  // via CompleteAttrSet. Physical column order is [i_id, c_name, i_title,
  // c_desc]: anchor key first, then AttrId order.
  ASSERT_TRUE(source.AddTable("item_all", item, {i_title, c_desc}).ok());
  (void)c_name;

  // Materialize by hand: LogicalDatabase rows are keyed by BIGINT, so the
  // denormalized table (with its repeated string category keys) is built
  // directly on the Database.
  Database db(256);
  ASSERT_TRUE(db.CreateTable(source.ToTableSchema(0)).ok());
  const char* cats[] = {"ops", "dev", "ops", "qa", "dev", "ops"};
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(db.Insert("item_all",
                          {Value::Int(i), Value::Varchar(cats[i]),
                           Value::Varchar("item-" + std::to_string(i)),
                           Value::Varchar(std::string("desc-") + cats[i])})
                    .ok());
  }

  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 3;
  op.split_moved = {c_desc};
  op.split_moved_anchor = cat;

  LogicalDatabase empty(&L);
  MigrationExecutor exec(&db, &empty);
  PhysicalSchema schema = source;
  auto io = exec.Apply(op, &schema);
  ASSERT_TRUE(io.ok()) << io.status().ToString();

  // The category side deduplicates to the 3 distinct string keys.
  std::vector<Row> cats_rows = TableRows(&db, "m3b_cat");
  ASSERT_EQ(cats_rows.size(), 3u);
  EXPECT_EQ(cats_rows[0][0].AsString(), "dev");
  EXPECT_EQ(cats_rows[1][0].AsString(), "ops");
  EXPECT_EQ(cats_rows[2][0].AsString(), "qa");
  EXPECT_EQ(cats_rows[1][1].AsString(), "desc-ops");
  // The rest side (named after the moved anchor too) keeps all 6 rows.
  EXPECT_EQ(TableRows(&db, "m3a_cat").size(), 6u);
}

// --- crash / reopen / resume round-trips (file-backed) ---

class CrashRecoveryTest : public OnlineMigrationTest {
 protected:
  /// Opens the on-disk database wrapped in a fault injector and loads the
  /// bookstore source into it (checkpointed, fault limits off).
  void MaterializePersistent() {
    auto file = FileDiskManager::Open(path_);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    auto fault = std::make_unique<FaultInjectionDiskManager>(std::move(*file));
    fault_ = fault.get();
    auto db = Database::Open(std::move(fault), 256);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    ASSERT_TRUE(data_->Materialize(db_.get(), bs_->source).ok());
    ASSERT_TRUE(db_->Checkpoint().ok());
  }

  /// Simulates the crash (drops the Database and with it every unflushed
  /// page) and reopens from the file.
  void Reopen() {
    fault_ = nullptr;
    db_.reset();
    auto db = Database::Open(path_, 256);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  std::unique_ptr<Database> db_;
  FaultInjectionDiskManager* fault_ = nullptr;  // owned by db_
};

// The property test of the PR: kill the migration after the K-th batch, for
// a sweep of K, reopen, Resume, and require contents identical to a
// straight-through run.
TEST_F(CrashRecoveryTest, CrashAfterAnyBatchResumesToIdenticalContents) {
  std::vector<Row> ref_rest, ref_moved;
  ReferenceSplit(&ref_rest, &ref_moved);

  for (uint64_t kill_at : {uint64_t{0}, uint64_t{1}, uint64_t{3}, uint64_t{6}, uint64_t{99}}) {
    SCOPED_TRACE("kill after batch " + std::to_string(kill_at));
    std::remove(path_.c_str());
    MaterializePersistent();

    PhysicalSchema schema = bs_->source;
    MigrationExecutor exec(db_.get(), data_.get());
    MigrationOptions opts;
    opts.batch_rows = 16;  // 60 user rows -> 4 batches per split target
    opts.rollback_on_error = false;
    opts.on_batch = [kill_at](const MigrationBatchEvent& ev) -> Status {
      if (ev.batch_index >= kill_at) return Status::Internal("simulated crash");
      return Status::OK();
    };
    exec.set_options(std::move(opts));

    auto io = exec.Apply(SplitUserOp(*bs_), &schema);
    if (io.ok()) {
      // kill_at beyond the batch count: the operator completed normally.
      EXPECT_TRUE(SameRows(ref_rest, TableRows(db_.get(), "m7a_user")));
      EXPECT_TRUE(SameRows(ref_moved, TableRows(db_.get(), "m7b_user")));
      continue;
    }

    Reopen();
    ASSERT_TRUE(db_->HasPendingMigration());
    EXPECT_EQ(db_->migration_journal().op_id, 7);

    PhysicalSchema resumed = bs_->source;
    MigrationExecutor exec2(db_.get(), data_.get());
    MigrationOptions resume_opts;
    resume_opts.batch_rows = 16;
    exec2.set_options(std::move(resume_opts));
    auto rio = exec2.Resume(SplitUserOp(*bs_), &resumed);
    ASSERT_TRUE(rio.ok()) << rio.status().ToString();

    EXPECT_FALSE(db_->HasPendingMigration());
    EXPECT_FALSE(db_->HasTable("user"));
    EXPECT_TRUE(SameRows(ref_rest, TableRows(db_.get(), "m7a_user")));
    EXPECT_TRUE(SameRows(ref_moved, TableRows(db_.get(), "m7b_user")));

    // The finished state is durable: a further clean reopen agrees.
    Reopen();
    EXPECT_FALSE(db_->HasPendingMigration());
    EXPECT_TRUE(SameRows(ref_rest, TableRows(db_.get(), "m7a_user")));
    EXPECT_TRUE(SameRows(ref_moved, TableRows(db_.get(), "m7b_user")));
  }
}

// Torn writes: the device dies after the W-th page write, so a batch's
// checkpoint is half on disk. Resume must detect the disagreement between
// the journaled cursor and the surviving heap, rebuild the torn target, and
// still converge to the reference contents.
TEST_F(CrashRecoveryTest, TornCheckpointWriteResumesToIdenticalContents) {
  std::vector<Row> ref_rest, ref_moved;
  ReferenceSplit(&ref_rest, &ref_moved);

  for (uint64_t write_budget : {uint64_t{2}, uint64_t{7}, uint64_t{15}, uint64_t{40}}) {
    SCOPED_TRACE("write budget " + std::to_string(write_budget));
    std::remove(path_.c_str());
    MaterializePersistent();

    PhysicalSchema schema = bs_->source;
    MigrationExecutor exec(db_.get(), data_.get());
    MigrationOptions opts;
    opts.batch_rows = 16;
    opts.rollback_on_error = false;
    exec.set_options(std::move(opts));

    fault_->set_write_budget(write_budget);
    auto io = exec.Apply(SplitUserOp(*bs_), &schema);
    ASSERT_FALSE(io.ok());
    EXPECT_EQ(io.status().code(), StatusCode::kIOError) << io.status().ToString();

    Reopen();
    if (db_->HasPendingMigration()) {
      PhysicalSchema resumed = bs_->source;
      MigrationExecutor exec2(db_.get(), data_.get());
      auto rio = exec2.Resume(SplitUserOp(*bs_), &resumed);
      ASSERT_TRUE(rio.ok()) << rio.status().ToString();
      EXPECT_FALSE(db_->HasTable("user"));
    } else {
      // The journal write itself never reached disk: the operator left no
      // durable trace and the source is untouched.
      ASSERT_TRUE(db_->HasTable("user"));
      PhysicalSchema resumed = bs_->source;
      MigrationExecutor exec2(db_.get(), data_.get());
      auto rio = exec2.Apply(SplitUserOp(*bs_), &resumed);
      ASSERT_TRUE(rio.ok()) << rio.status().ToString();
    }
    EXPECT_TRUE(SameRows(ref_rest, TableRows(db_.get(), "m7a_user")));
    EXPECT_TRUE(SameRows(ref_moved, TableRows(db_.get(), "m7b_user")));
  }
}

TEST_F(CrashRecoveryTest, RollbackAfterCrashRestoresSource) {
  MaterializePersistent();
  std::vector<Row> user_before = TableRows(db_.get(), "user");

  PhysicalSchema schema = bs_->source;
  MigrationExecutor exec(db_.get(), data_.get());
  MigrationOptions opts;
  opts.batch_rows = 16;
  opts.rollback_on_error = false;
  opts.on_batch = [](const MigrationBatchEvent& ev) -> Status {
    if (ev.batch_index >= 2) return Status::Internal("simulated crash");
    return Status::OK();
  };
  exec.set_options(std::move(opts));
  ASSERT_FALSE(exec.Apply(SplitUserOp(*bs_), &schema).ok());

  Reopen();
  ASSERT_TRUE(db_->HasPendingMigration());
  MigrationExecutor exec2(db_.get(), data_.get());
  ASSERT_TRUE(exec2.Rollback().ok());
  EXPECT_FALSE(db_->HasPendingMigration());
  EXPECT_FALSE(db_->HasTable("m7a_user"));
  EXPECT_FALSE(db_->HasTable("m7b_user"));
  EXPECT_TRUE(SameRows(user_before, TableRows(db_.get(), "user")));

  // ... and the rollback is durable.
  Reopen();
  EXPECT_FALSE(db_->HasPendingMigration());
  EXPECT_TRUE(SameRows(user_before, TableRows(db_.get(), "user")));
}

TEST_F(CrashRecoveryTest, ResumeValidatesTheJournaledOperator) {
  MaterializePersistent();
  PhysicalSchema schema = bs_->source;
  MigrationExecutor exec(db_.get(), data_.get());
  MigrationOptions opts;
  opts.batch_rows = 16;
  opts.rollback_on_error = false;
  opts.on_batch = [](const MigrationBatchEvent& ev) -> Status {
    if (ev.batch_index >= 1) return Status::Internal("simulated crash");
    return Status::OK();
  };
  exec.set_options(std::move(opts));
  ASSERT_FALSE(exec.Apply(SplitUserOp(*bs_), &schema).ok());

  Reopen();
  ASSERT_TRUE(db_->HasPendingMigration());
  MigrationExecutor exec2(db_.get(), data_.get());

  // A different operator must be rejected (id mismatch).
  MigrationOperator other = SplitUserOp(*bs_);
  other.id = 42;
  PhysicalSchema s2 = bs_->source;
  auto bad = exec2.Resume(other, &s2);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Apply refuses to start anything new while the journal is pending.
  auto blocked = exec2.Apply(other, &s2);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kInvalidArgument);

  // The journaled operator resumes fine.
  auto rio = exec2.Resume(SplitUserOp(*bs_), &s2);
  EXPECT_TRUE(rio.ok()) << rio.status().ToString();
}

// --- online simulation mode ---

TEST_F(OnlineMigrationTest, SimulationOnlineModeInterleavesProbes) {
  std::vector<WorkloadQuery> queries;
  LogicalQuery old_user;
  old_user.anchor = bs_->user;
  old_user.select.emplace_back(Col("u_name"), AggFunc::kNone, "u_name");
  old_user.select.emplace_back(Col("u_addr"), AggFunc::kNone, "u_addr");
  old_user.name = "O1";
  queries.emplace_back(std::move(old_user), true);
  LogicalQuery new_abstract;
  new_abstract.anchor = bs_->book;
  new_abstract.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "b_abstract");
  new_abstract.name = "N1";
  queries.emplace_back(std::move(new_abstract), false);
  std::vector<std::vector<double>> freqs = {{30, 5}, {10, 25}};

  SimulationConfig config;
  config.buffer_pool_pages = 128;
  config.planner = PlannerKind::kLaa;
  config.online_migration = true;
  config.migration_batch_rows = 16;
  MigrationSimulation sim(&bs_->source, &bs_->object, &queries, freqs, data_.get(), config);
  auto pro = sim.Run(Situation::kProSchema);
  ASSERT_TRUE(pro.ok()) << pro.status().ToString();
  ASSERT_EQ(pro->phases.size(), 2u);
  // Data moved in multiple batches and foreground probes ran between them.
  EXPECT_GT(pro->TotalOnlineBatches(), 1u);
  uint64_t probes = 0;
  for (const auto& p : pro->phases) probes += p.online_probes;
  EXPECT_GT(probes, 0u);
  // Probe I/O is tracked and excluded from migration I/O (not negative).
  EXPECT_GE(pro->TotalOnlineProbeIo(), 0.0);
}

}  // namespace
}  // namespace pse
