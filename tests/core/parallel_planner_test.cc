// The determinism property behind the shared cost cache + thread pool: LAA
// and GAA planning with a memoizing estimator fanned across workers must be
// *exactly* equal (EXPECT_EQ on doubles, not NEAR) to the serial uncached
// run — same chosen subsets, same costs, same evaluation counts — across
// randomized migrations, while one cache persists over every migration
// point. Randomized instances are generated like the LAA pruning property
// test: scramble the bookstore source with valid split/combine operators,
// recompute the operator set, and draw random workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/migration_planner.h"
#include "engine/cost_cache.h"
#include "engine/expr.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

constexpr size_t kPhases = 3;

struct Instance {
  PhysicalSchema object;
  OperatorSet opset;
  std::vector<WorkloadQuery> queries;
  std::vector<std::vector<double>> freqs;  // kPhases x queries
};

/// Scrambles the bookstore source into a random reachable object schema and
/// draws a random workload + per-phase frequencies. Returns nullopt when the
/// draw degenerates (no ops, too many ops, or no usable queries).
std::optional<Instance> DrawInstance(const Bookstore& s, Rng* rng, size_t max_m) {
  Instance inst;
  inst.object = s.source;
  int next_id = 2000;
  for (int step = 0; step < 6; ++step) {
    double roll = rng->UniformDouble();
    MigrationOperator op;
    op.id = next_id++;
    if (roll < 0.4) {
      std::vector<std::pair<size_t, std::vector<AttrId>>> candidates;
      for (size_t t = 0; t < inst.object.tables().size(); ++t) {
        std::vector<AttrId> nonkey;
        for (AttrId a : inst.object.tables()[t].attrs) {
          if (!s.logical.attr(a).is_key) nonkey.push_back(a);
        }
        if (nonkey.size() >= 2) candidates.emplace_back(t, nonkey);
      }
      if (candidates.empty()) continue;
      auto& [t, nonkey] = candidates[rng->Index(candidates.size())];
      size_t count = 1 + rng->Index(nonkey.size() - 1);
      rng->Shuffle(&nonkey);
      op.kind = OperatorKind::kSplitTable;
      op.split_moved.assign(nonkey.begin(), nonkey.begin() + static_cast<long>(count));
      op.split_moved_anchor = s.logical.attr(op.split_moved[0]).entity;
    } else {
      if (inst.object.tables().size() < 2) continue;
      size_t a = rng->Index(inst.object.tables().size());
      size_t b = rng->Index(inst.object.tables().size());
      if (a == b) continue;
      std::vector<AttrId> a_nonkey, b_nonkey;
      for (AttrId x : inst.object.tables()[a].attrs) {
        if (!s.logical.attr(x).is_key) a_nonkey.push_back(x);
      }
      for (AttrId x : inst.object.tables()[b].attrs) {
        if (!s.logical.attr(x).is_key) b_nonkey.push_back(x);
      }
      if (a_nonkey.empty() || b_nonkey.empty()) continue;
      op.kind = OperatorKind::kCombineTable;
      op.combine_left_rep = a_nonkey[0];
      op.combine_right_rep = b_nonkey[0];
    }
    (void)ApplyOperator(op, &inst.object);
  }
  auto opset = ComputeOperatorSet(s.source, inst.object);
  if (!opset.ok()) return std::nullopt;
  if (opset->size() == 0 || opset->size() > max_m) return std::nullopt;
  inst.opset = std::move(*opset);

  size_t num_queries = 3 + rng->Index(4);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    EntityId anchor = rng->Index(s.logical.num_entities());
    std::vector<AttrId> reachable;
    for (AttrId a = 0; a < s.logical.num_attributes(); ++a) {
      const LogicalAttribute& attr = s.logical.attr(a);
      if (attr.is_key || attr.is_new) continue;
      if (s.logical.Reaches(anchor, attr.entity)) reachable.push_back(a);
    }
    if (reachable.empty()) continue;
    rng->Shuffle(&reachable);
    size_t picks = 1 + rng->Index(std::min<size_t>(3, reachable.size()));
    LogicalQuery q;
    q.name = "q";  // += form: GCC 12's operator+(const char*, string&&) trips -Wrestrict
    q.name += std::to_string(qi);
    q.anchor = anchor;
    for (size_t k = 0; k < picks; ++k) {
      const std::string& name = s.logical.attr(reachable[k]).name;
      q.select.emplace_back(Col(name), AggFunc::kNone, name);
    }
    inst.queries.emplace_back(std::move(q), /*is_old=*/true);
  }
  if (inst.queries.empty()) return std::nullopt;
  // A few zero frequencies on purpose: the short-circuit paths must stay
  // equal to the serial ones too.
  inst.freqs.assign(kPhases, std::vector<double>(inst.queries.size()));
  for (auto& phase : inst.freqs) {
    for (double& f : phase) f = static_cast<double>(rng->Index(41));
  }
  return inst;
}

class ParallelPlannerProperty : public ::testing::TestWithParam<uint64_t> {};

// Walks every migration point of several random migrations, comparing the
// cached+parallel LAA against the serial uncached one. One cache instance
// persists across all subsets, points, and instances of the walk — exactly
// how bench and shell use it.
TEST_P(ParallelPlannerProperty, CachedParallelLaaEqualsSerialUncached) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto data = s.MakeData(10, 30, 60);
  std::vector<LogicalStats> stats{data->ComputeStats()};
  Rng rng(GetParam());
  QueryCostCache cache;
  ThreadPool pool(4);
  AnalysisOptions cached_options;
  cached_options.cost_cache = &cache;
  cached_options.pool = &pool;
  AnalysisOptions brute_serial;
  brute_serial.prune_laa = false;
  AnalysisOptions brute_cached = brute_serial;
  brute_cached.cost_cache = &cache;
  brute_cached.pool = &pool;

  int instances = 0;
  for (int iter = 0; iter < 10 && instances < 5; ++iter) {
    auto inst = DrawInstance(s, &rng, /*max_m=*/12);
    if (!inst.has_value()) continue;
    ++instances;

    PhysicalSchema current = s.source;
    MigrationContext ctx;
    ctx.current = &current;
    ctx.object = &inst->object;
    ctx.opset = &inst->opset;
    ctx.applied.assign(inst->opset.size(), false);
    ctx.phase_freqs = &inst->freqs;
    ctx.phase_stats = &stats;
    ctx.queries = &inst->queries;

    for (size_t p = 0; p < kPhases; ++p) {
      auto serial = SelectOpsLaa(ctx, p, p);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      auto cached = SelectOpsLaa(ctx, p, p, /*max_ops=*/30, cached_options);
      ASSERT_TRUE(cached.ok()) << cached.status().ToString();

      EXPECT_EQ(cached->ops_to_apply, serial->ops_to_apply);
      EXPECT_EQ(cached->best_cost, serial->best_cost);  // bit-identical, no tolerance
      EXPECT_EQ(cached->schemas_evaluated, serial->schemas_evaluated);
      EXPECT_EQ(cached->threads, pool.num_threads());
      EXPECT_EQ(serial->threads, 1u);
      EXPECT_EQ(serial->cache_stats.lookups(), 0u);
      EXPECT_GT(cached->cache_stats.lookups(), 0u);

      // Replaying the same point hits the cache on every single lookup.
      auto replay = SelectOpsLaa(ctx, p, p, /*max_ops=*/30, cached_options);
      ASSERT_TRUE(replay.ok());
      EXPECT_EQ(replay->best_cost, serial->best_cost);
      EXPECT_EQ(replay->cache_stats.misses, 0u);
      EXPECT_GT(replay->cache_stats.hits, 0u);

      // Small instances: the brute sweep must agree with itself under the
      // cache too (the brute row of the bench).
      if (inst->opset.size() <= 10) {
        auto b_serial = SelectOpsLaa(ctx, p, p, /*max_ops=*/12, brute_serial);
        ASSERT_TRUE(b_serial.ok()) << b_serial.status().ToString();
        auto b_cached = SelectOpsLaa(ctx, p, p, /*max_ops=*/12, brute_cached);
        ASSERT_TRUE(b_cached.ok()) << b_cached.status().ToString();
        EXPECT_EQ(b_cached->ops_to_apply, b_serial->ops_to_apply);
        EXPECT_EQ(b_cached->best_cost, b_serial->best_cost);
        EXPECT_EQ(b_cached->schemas_evaluated, b_serial->schemas_evaluated);
      }

      // Advance the walk with the chosen subset, like the driver would.
      for (int op : serial->ops_to_apply) {
        ASSERT_TRUE(ApplyOperator(inst->opset.ops[static_cast<size_t>(op)], &current).ok());
        ctx.applied[static_cast<size_t>(op)] = true;
      }
    }
  }
  EXPECT_GT(instances, 0);
  EXPECT_GT(cache.Snapshot().hits, 0u);
  EXPECT_EQ(cache.Snapshot().collisions, 0u);
}

// Same property for GAA: the batch-fitness path through the pool, with the
// memoizing estimator underneath, must reproduce the serial uncached GA run
// gene for gene (identical rng stream, identical costs, identical counts).
TEST_P(ParallelPlannerProperty, CachedParallelGaaEqualsSerialUncached) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto data = s.MakeData(10, 30, 60);
  std::vector<LogicalStats> stats{data->ComputeStats()};
  Rng rng(GetParam() ^ 0x5aa5);
  QueryCostCache cache;
  ThreadPool pool(4);

  int instances = 0;
  for (int iter = 0; iter < 8 && instances < 3; ++iter) {
    auto inst = DrawInstance(s, &rng, /*max_m=*/8);
    if (!inst.has_value()) continue;
    ++instances;

    MigrationContext ctx;
    ctx.current = &s.source;
    ctx.object = &inst->object;
    ctx.opset = &inst->opset;
    ctx.applied.assign(inst->opset.size(), false);
    ctx.phase_freqs = &inst->freqs;
    ctx.phase_stats = &stats;
    ctx.queries = &inst->queries;

    GaaOptions serial_options;
    serial_options.seed = 42 + GetParam();
    serial_options.ga.population_size = 16;
    serial_options.ga.generations = 10;
    serial_options.include_migration_cost = true;
    GaaOptions cached_options = serial_options;
    cached_options.analysis.cost_cache = &cache;
    cached_options.analysis.pool = &pool;

    auto serial = PlanGaa(ctx, 0, serial_options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    auto cached = PlanGaa(ctx, 0, cached_options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();

    EXPECT_EQ(cached->assignment, serial->assignment);
    EXPECT_EQ(cached->remaining_ops, serial->remaining_ops);
    EXPECT_EQ(cached->best_cost, serial->best_cost);  // bit-identical
    EXPECT_EQ(cached->evaluations, serial->evaluations);
    EXPECT_EQ(cached->ApplyNow(), serial->ApplyNow());
    EXPECT_EQ(cached->threads, pool.num_threads());
    EXPECT_EQ(serial->threads, 1u);
    EXPECT_GT(cached->cache_stats.lookups(), 0u);
  }
  EXPECT_GT(instances, 0);
  EXPECT_EQ(cache.Snapshot().collisions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelPlannerProperty, ::testing::Values(11, 211, 3111));

}  // namespace
}  // namespace pse
