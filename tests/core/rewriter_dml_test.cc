// Write rewriter tests: RewriteDml plan shapes, servability agreement with
// the static writability analyzer, ProvenanceStore semantics, the SQL
// bridge, and the randomized static-schema oracle — every DML statement
// executed through the DmlRouter is mirrored on an entity-level
// LogicalDatabase, and the physical table states must equal a fresh
// materialization of the mirror after every burst (the write-side analogue
// of the rewriter's read invariant).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/writability.h"
#include "common/rng.h"
#include "core/logical_database.h"
#include "core/rewriter_dml.h"
#include "sql/session.h"
#include "tests/common/test_db_builder.h"

namespace pse {
namespace {

using testutil::Bookstore;
using testutil::ExpectStateMatchesMirror;
using testutil::MirrorApply;
using testutil::SameRows;
using testutil::TableRows;

// ---------------------------------------------------------------------------
// Fixture
// ---------------------------------------------------------------------------

const VersionTable* FindTable(const std::vector<VersionTable>& tables, const std::string& name) {
  for (const auto& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

class RewriteDmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    old_tables_ = VersionTablesOf(bs_->source);
    new_tables_ = VersionTablesOf(bs_->object);
  }

  LogicalDml MakeDml(DmlKind kind, const VersionTable& t, int64_t key,
                     std::vector<AttrId> attrs = {}, std::vector<Value> values = {}) {
    LogicalDml dml;
    dml.kind = kind;
    dml.table = t;
    dml.key = key;
    dml.set_attrs = std::move(attrs);
    dml.set_values = std::move(values);
    return dml;
  }

  std::unique_ptr<Bookstore> bs_;
  std::vector<VersionTable> old_tables_;
  std::vector<VersionTable> new_tables_;
};

// ---------------------------------------------------------------------------
// Plan shapes
// ---------------------------------------------------------------------------

TEST_F(RewriteDmlTest, InsertOnOwnLayoutIsOneAnchorInsert) {
  const VersionTable* book = FindTable(old_tables_, "book");
  ASSERT_NE(book, nullptr);
  auto bound = RewriteDml(MakeDml(DmlKind::kInsert, *book, 7, {bs_->b_title},
                                  {Value::Varchar("t")}),
                          bs_->source);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->level, Writability::kSafe);
  ASSERT_EQ(bound->writes.size(), 1u);
  EXPECT_EQ(bound->writes[0].op, FragmentWriteOp::kAnchorInsert);
  EXPECT_EQ(bound->writes[0].table, "book");
}

TEST_F(RewriteDmlTest, InsertAcrossCombineFansOutToMergeAndAnchorInsert) {
  // New-version glossary INSERT on the object schema: the author values ride
  // along inside the book row, so the plan must merge the parent (dangling
  // repairs on the denormalized fragment) before the anchor insert.
  const VersionTable* glossary = FindTable(new_tables_, "glossary");
  ASSERT_NE(glossary, nullptr);
  auto bound = RewriteDml(
      MakeDml(DmlKind::kInsert, *glossary, 7, {bs_->b_a_id, bs_->a_name},
              {Value::Int(3), Value::Varchar("a")}),
      bs_->object);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // One physical table stores the whole version table, so the classifier
  // calls this kSafe — the fan-out below is repair work, not propagation.
  EXPECT_EQ(bound->level, Writability::kSafe);
  bool saw_merge = false;
  bool saw_insert = false;
  size_t insert_pos = 0;
  size_t merge_pos = 0;
  for (size_t i = 0; i < bound->writes.size(); ++i) {
    const FragmentWrite& w = bound->writes[i];
    if (w.op == FragmentWriteOp::kParentMerge && w.entity == bs_->author) {
      saw_merge = true;
      merge_pos = i;
    }
    if (w.op == FragmentWriteOp::kAnchorInsert && w.table == "glossary") {
      saw_insert = true;
      insert_pos = i;
    }
  }
  EXPECT_TRUE(saw_merge);
  ASSERT_TRUE(saw_insert);
  EXPECT_LT(merge_pos, insert_pos) << "parent merges must precede the anchor insert";
}

TEST_F(RewriteDmlTest, UpdateAcrossSplitFansOutToEveryFragment) {
  // Old-version user UPDATE of u_name + u_addr on the object schema lands on
  // both split fragments, each matched on the user key.
  const VersionTable* user = FindTable(old_tables_, "user");
  ASSERT_NE(user, nullptr);
  auto bound = RewriteDml(
      MakeDml(DmlKind::kUpdate, *user, 3, {bs_->u_name, bs_->u_addr},
              {Value::Varchar("n"), Value::Varchar("a")}),
      bs_->object);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->level, Writability::kNeedsPropagation);
  std::vector<std::string> tables;
  for (const FragmentWrite& w : bound->writes) {
    EXPECT_EQ(w.op, FragmentWriteOp::kKeyedUpdate);
    tables.push_back(w.table);
  }
  std::sort(tables.begin(), tables.end());
  EXPECT_EQ(tables, (std::vector<std::string>{"user_gen", "user_rest"}));
}

TEST_F(RewriteDmlTest, DeleteOfParentEntityPlansFanClears) {
  // Old-version author DELETE on the object schema: no author-anchored
  // fragment exists, so the whole plan is fan-clears on the denormalized
  // glossary rows.
  const VersionTable* author = FindTable(old_tables_, "author");
  ASSERT_NE(author, nullptr);
  auto bound = RewriteDml(MakeDml(DmlKind::kDelete, *author, 2), bs_->object);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->writes.size(), 1u);
  const FragmentWrite& w = bound->writes[0];
  EXPECT_EQ(w.op, FragmentWriteOp::kFanClear);
  EXPECT_EQ(w.table, "glossary");
  // Cleared columns: the author's own (a_id, a_name, a_bio) but NOT the
  // book's stored FK b_a_id (the book keeps its dangling reference).
  const PhysicalTable& glossary = bs_->object.tables()[w.table_idx];
  for (size_t c : w.cols) {
    EXPECT_NE(glossary.attrs[c], bs_->b_a_id);
  }
  EXPECT_EQ(w.cols.size(), 3u);
}

TEST_F(RewriteDmlTest, MalformedStatementsAreInvalidArgument) {
  const VersionTable* book = FindTable(old_tables_, "book");
  ASSERT_NE(book, nullptr);
  // SELECT kind.
  EXPECT_TRUE(RewriteDml(MakeDml(DmlKind::kSelect, *book, 1), bs_->source)
                  .status()
                  .code() == StatusCode::kInvalidArgument);
  // Arity mismatch.
  EXPECT_TRUE(RewriteDml(MakeDml(DmlKind::kUpdate, *book, 1, {bs_->b_title}, {}), bs_->source)
                  .status()
                  .code() == StatusCode::kInvalidArgument);
  // Attribute outside the version table.
  EXPECT_TRUE(RewriteDml(MakeDml(DmlKind::kUpdate, *book, 1, {bs_->u_addr},
                                 {Value::Varchar("x")}),
                         bs_->source)
                  .status()
                  .code() == StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Servability agrees with the static analyzer
// ---------------------------------------------------------------------------

TEST_F(RewriteDmlTest, ServabilityAgreesWithClassifyVersionTable) {
  const PhysicalSchema* schemas[] = {&bs_->source, &bs_->object};
  const DmlKind kinds[] = {DmlKind::kInsert, DmlKind::kUpdate, DmlKind::kDelete};
  for (const PhysicalSchema* schema : schemas) {
    for (const auto& tables : {old_tables_, new_tables_}) {
      for (const VersionTable& vt : tables) {
        auto cells = ClassifyVersionTable(vt, *schema);
        for (DmlKind kind : kinds) {
          // Statement touching every attribute of the version table — the
          // shape the classifier's per-table verdict is about.
          std::vector<AttrId> attrs;
          std::vector<Value> values;
          if (kind != DmlKind::kDelete) {
            for (AttrId a : vt.attrs) {
              attrs.push_back(a);
              values.push_back(Value::Null(schema->logical()->attr(a).type));
            }
          }
          auto bound = RewriteDml(MakeDml(kind, vt, 424242, attrs, values), *schema);
          const WritabilityCell& cell = cells[static_cast<size_t>(kind)];
          if (cell.level == Writability::kUnservable) {
            ASSERT_FALSE(bound.ok())
                << vt.name << " " << DmlKindName(kind) << " must be unservable: " << cell.detail;
            EXPECT_TRUE(bound.status().IsBindError()) << bound.status().ToString();
          } else {
            ASSERT_TRUE(bound.ok()) << vt.name << " " << DmlKindName(kind) << ": "
                                    << bound.status().ToString();
            EXPECT_EQ(bound->level, cell.level) << vt.name << " " << DmlKindName(kind);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ProvenanceStore
// ---------------------------------------------------------------------------

TEST(ProvenanceStore, PutGetEraseRowsOf) {
  ProvenanceStore store;
  EXPECT_EQ(store.NumRows(), 0u);
  store.EnsureRow(1, 10);
  EXPECT_TRUE(store.Has(1, 10));
  EXPECT_FALSE(store.Get(1, 10, 5).has_value());
  store.Put(1, 10, 5, Value::Varchar("x"));
  store.Put(1, 12, 5, Value::Varchar("y"));
  store.Put(2, 10, 7, Value::Int(3));
  ASSERT_TRUE(store.Get(1, 10, 5).has_value());
  EXPECT_EQ(store.Get(1, 10, 5)->AsString(), "x");
  auto rows = store.RowsOf(1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, 10);
  EXPECT_EQ(rows[1].first, 12);
  store.Erase(1, 10);
  EXPECT_FALSE(store.Has(1, 10));
  EXPECT_TRUE(store.Has(2, 10));
  EXPECT_EQ(store.NumRows(), 2u);
}

// ---------------------------------------------------------------------------
// Static-schema behaviour of the router
// ---------------------------------------------------------------------------

TEST_F(RewriteDmlTest, DeleteSnapshotsParentValuesIntoProvenance) {
  // Deleting every book of an author on the object schema destroys the only
  // physical storage of the author's attributes; they must survive in the
  // provenance store and feed the ladder of a later insert.
  auto data = bs_->MakeData(3, 2, 4);
  Database db(1024);
  ASSERT_TRUE(data->Materialize(&db, bs_->object).ok());
  DmlRouter router(&db);
  const VersionTable* glossary = FindTable(new_tables_, "glossary");
  ASSERT_NE(glossary, nullptr);

  // Author 1's books are keys 2 and 3 (MakeData: books_per_author = 2).
  for (int64_t b : {2, 3}) {
    ASSERT_TRUE(router.Execute(MakeDml(DmlKind::kDelete, *glossary, b), bs_->object).ok());
  }
  ASSERT_TRUE(router.provenance()->Has(bs_->author, 1));
  auto name = router.provenance()->Get(bs_->author, 1, bs_->a_name);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->AsString(), "author-1");

  // A new book referencing author 1 resolves the author's values from
  // provenance — no physical row carries them anymore.
  ASSERT_TRUE(router
                  .Execute(MakeDml(DmlKind::kInsert, *glossary, 100,
                                   {bs_->b_title, bs_->b_a_id},
                                   {Value::Varchar("back"), Value::Int(1)}),
                           bs_->object)
                  .ok());
  std::vector<Row> rows = TableRows(&db, "glossary");
  bool found = false;
  auto g_idx = bs_->object.TableByName("glossary");
  ASSERT_TRUE(g_idx.ok());
  TableSchema g_schema = bs_->object.ToTableSchema(*g_idx);
  auto col_of = [&](AttrId a) {
    const std::string& name = bs_->logical.attr(a).name;
    for (size_t c = 0; c < g_schema.num_columns(); ++c) {
      if (g_schema.column(c).name == name) return c;
    }
    ADD_FAILURE() << "no column " << name;
    return size_t{0};
  };
  for (const Row& r : rows) {
    if (r[col_of(bs_->b_id)].SqlEquals(Value::Int(100))) {
      found = true;
      EXPECT_EQ(r[col_of(bs_->a_name)].AsString(), "author-1");
      EXPECT_FALSE(r[col_of(bs_->a_id)].is_null());
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(router.stats().provenance_rows, 0u);
  EXPECT_GT(router.stats().fragment_writes, 0u);
}

TEST_F(RewriteDmlTest, InsertAndDeleteAreIdempotent) {
  auto data = bs_->MakeData(2, 2, 3);
  Database db(1024);
  ASSERT_TRUE(data->Materialize(&db, bs_->source).ok());
  DmlRouter router(&db);
  const VersionTable* user = FindTable(old_tables_, "user");
  ASSERT_NE(user, nullptr);

  size_t before = TableRows(&db, "user").size();
  LogicalDml ins = MakeDml(DmlKind::kInsert, *user, 50, {bs_->u_name}, {Value::Varchar("n")});
  ASSERT_TRUE(router.Execute(ins, bs_->source).ok());
  ASSERT_TRUE(router.Execute(ins, bs_->source).ok());  // replay: no-op
  EXPECT_EQ(TableRows(&db, "user").size(), before + 1);

  LogicalDml del = MakeDml(DmlKind::kDelete, *user, 50);
  ASSERT_TRUE(router.Execute(del, bs_->source).ok());
  ASSERT_TRUE(router.Execute(del, bs_->source).ok());  // absent: no-op
  EXPECT_EQ(TableRows(&db, "user").size(), before);
  // Update of an absent row is a no-op, not an error.
  ASSERT_TRUE(router
                  .Execute(MakeDml(DmlKind::kUpdate, *user, 50, {bs_->u_name},
                                   {Value::Varchar("x")}),
                           bs_->source)
                  .ok());
  EXPECT_EQ(TableRows(&db, "user").size(), before);
}

// ---------------------------------------------------------------------------
// Randomized static-schema oracle
// ---------------------------------------------------------------------------

class RewriteDmlOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteDmlOracle, RouterMatchesEntityLevelMirrorOnBothLayouts) {
  auto bs = Bookstore::Make();
  std::vector<VersionTable> old_tables = VersionTablesOf(bs->source);
  std::vector<VersionTable> new_tables = VersionTablesOf(bs->object);
  std::vector<VersionTable> all_tables = old_tables;
  all_tables.insert(all_tables.end(), new_tables.begin(), new_tables.end());

  const PhysicalSchema* schemas[] = {&bs->source, &bs->object};
  for (const PhysicalSchema* schema : schemas) {
    SCOPED_TRACE(schema == &bs->source ? "source schema" : "object schema");
    Rng rng(GetParam() * 131 + (schema == &bs->source ? 0 : 7));
    const LogicalSchema& lg = bs->logical;

    // Mirror and physical database start from the same data.
    auto mirror = bs->MakeData(4, 3, 8);
    Database db(2048);
    ASSERT_TRUE(mirror->Materialize(&db, *schema).ok());
    DmlRouter router(&db);

    auto random_value = [&](AttrId a) -> Value {
      const LogicalAttribute& attr = lg.attr(a);
      if (attr.references.has_value()) {
        // FK: mostly valid parents, sometimes dangling, sometimes NULL.
        if (rng.Bernoulli(0.1)) return Value::Null(TypeId::kInt64);
        return Value::Int(rng.UniformInt(0, 6));
      }
      switch (attr.type) {
        case TypeId::kInt64:
          return Value::Int(rng.UniformInt(-5, 40));
        case TypeId::kDouble:
          return Value::Double(static_cast<double>(rng.UniformInt(0, 99)) / 4.0);
        case TypeId::kVarchar:
          return Value::Varchar("v" + std::to_string(rng.UniformInt(0, 999)));
        case TypeId::kBoolean:
          return Value::Bool(rng.Bernoulli(0.5));
      }
      return Value::Null(attr.type);
    };

    uint64_t applied = 0;
    uint64_t unservable = 0;
    for (int iter = 0; iter < 120; ++iter) {
      const VersionTable& vt = all_tables[rng.Index(all_tables.size())];
      LogicalDml dml;
      double roll = rng.UniformDouble();
      dml.kind = roll < 0.5 ? DmlKind::kInsert : roll < 0.8 ? DmlKind::kUpdate : DmlKind::kDelete;
      dml.table = vt;
      // Keys overlap the MakeData ranges so existing/missing rows both occur.
      dml.key = rng.UniformInt(0, 24);
      if (dml.kind != DmlKind::kDelete) {
        for (AttrId a : vt.attrs) {
          if (!rng.Bernoulli(0.6)) continue;
          dml.set_attrs.push_back(a);
          dml.set_values.push_back(random_value(a));
        }
      }

      Status s = router.Execute(dml, *schema);
      if (s.IsBindError()) {
        ++unservable;
        continue;  // unservable on this layout; the mirror skips it too
      }
      ASSERT_TRUE(s.ok()) << dml.ToString() << ": " << s.ToString();
      MirrorApply(mirror.get(), dml);
      ++applied;
      if (iter % 20 == 19) {
        ExpectStateMatchesMirror(&db, *mirror, *schema,
                                 "after statement " + std::to_string(iter));
      }
    }
    ExpectStateMatchesMirror(&db, *mirror, *schema, "after the full workload");
    EXPECT_GT(applied, 0u);
    // The vectorized lookup path answers the same ladder queries.
    DmlExecOptions vec;
    vec.vectorized = true;
    const VersionTable* user = FindTable(old_tables, "user");
    ASSERT_NE(user, nullptr);
    LogicalDml ins;
    ins.kind = DmlKind::kInsert;
    ins.table = *user;
    ins.key = 4040;
    ins.set_attrs = {bs->u_name};
    ins.set_values = {Value::Varchar("vec")};
    ASSERT_TRUE(router.Execute(ins, *schema, vec).ok());
    MirrorApply(mirror.get(), ins);
    ExpectStateMatchesMirror(&db, *mirror, *schema, "after a vectorized insert");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteDmlOracle, ::testing::Values(1, 7, 21, 63));

// ---------------------------------------------------------------------------
// SqlDmlBridge: SQL through the session hook
// ---------------------------------------------------------------------------

class SqlBridgeTest : public RewriteDmlTest {
 protected:
  void SetUp() override {
    RewriteDmlTest::SetUp();
    data_ = bs_->MakeData(3, 2, 4);
    db_ = std::make_unique<Database>(1024);
    ASSERT_TRUE(data_->Materialize(db_.get(), bs_->object).ok());
    router_ = std::make_unique<DmlRouter>(db_.get());
    snapshot_ = std::make_shared<PhysicalSchema>(bs_->object);
    bridge_ = std::make_unique<SqlDmlBridge>(
        router_.get(), old_tables_, [this]() { return snapshot_; });
    session_ = std::make_unique<Session>(db_.get());
    session_->set_dml_hook(bridge_.get());
  }

  std::unique_ptr<LogicalDatabase> data_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<DmlRouter> router_;
  std::shared_ptr<const PhysicalSchema> snapshot_;
  std::unique_ptr<SqlDmlBridge> bridge_;
  std::unique_ptr<Session> session_;
};

TEST_F(SqlBridgeTest, OldVersionSqlWritesLandOnTheNewLayout) {
  // The old app INSERTs into "book" — a table that no longer physically
  // exists on the object schema. The bridge fans it out onto glossary.
  auto ins = session_->Execute(
      "INSERT INTO book (b_id, b_title, b_cost, b_a_id) VALUES (77, 'bridged', 3.5, 1)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(ins->affected, 1u);
  auto check = session_->Execute("SELECT b_title FROM glossary WHERE b_id = 77");
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  ASSERT_EQ(check->rows.size(), 1u);
  EXPECT_EQ(check->rows[0][0].AsString(), "bridged");

  auto upd = session_->Execute("UPDATE book SET b_title = 'renamed' WHERE b_id = 77");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  check = session_->Execute("SELECT b_title FROM glossary WHERE b_id = 77");
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->rows.size(), 1u);
  EXPECT_EQ(check->rows[0][0].AsString(), "renamed");

  auto del = session_->Execute("DELETE FROM book WHERE b_id = 77");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  check = session_->Execute("SELECT b_title FROM glossary WHERE b_id = 77");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows.size(), 0u);
}

TEST_F(SqlBridgeTest, UnknownTablesFallThroughToThePhysicalPath) {
  ASSERT_TRUE(
      session_->Execute("CREATE TABLE scratch (k BIGINT NOT NULL, v BIGINT, PRIMARY KEY (k))")
          .ok());
  auto ins = session_->Execute("INSERT INTO scratch VALUES (1, 2)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  auto rows = session_->Execute("SELECT k, v FROM scratch");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(router_->stats().statements, 0u) << "the router must not see scratch-table DML";
}

TEST_F(SqlBridgeTest, NonKeyedWritesAreRejectedNotMisrouted) {
  // Version-table DML is entity-level: a predicate that is not
  // `key = literal` has no physical fallback and must be rejected.
  EXPECT_FALSE(session_->Execute("UPDATE book SET b_title = 'x' WHERE b_cost > 2").ok());
  EXPECT_FALSE(session_->Execute("DELETE FROM book WHERE b_title = 'bridged'").ok());
  EXPECT_FALSE(session_->Execute("UPDATE book SET b_title = 'x'").ok());
  // Updating the key is an entity identity change — rejected.
  EXPECT_FALSE(session_->Execute("UPDATE book SET b_id = 9 WHERE b_id = 1").ok());
  // Either operand order of the keyed predicate is accepted.
  EXPECT_TRUE(session_->Execute("UPDATE book SET b_title = 'y' WHERE 1 = b_id").ok());
}

}  // namespace
}  // namespace pse
