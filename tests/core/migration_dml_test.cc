// DML concurrent with an online migration: writes on both sides of the copy
// frontier must land exactly once in the targets, deletes must not resurrect
// during the copy, crash + resume with a fresh router must converge to the
// same contents as applying the writes up front, and provenance-only rows
// must be backfilled into split targets at publish.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/migration_executor.h"
#include "core/rewriter_dml.h"
#include "storage/disk_manager.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;
using coretest::SameRows;
using coretest::SortRows;
using coretest::TableRows;

MigrationOperator SplitUserOp(const Bookstore& bs) {
  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 7;
  op.split_moved = {bs.u_addr};
  op.split_moved_anchor = bs.user;
  return op;
}

const VersionTable* FindTable(const std::vector<VersionTable>& tables, const std::string& name) {
  for (const auto& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

LogicalDml UserInsert(const Bookstore& bs, const VersionTable& user, int64_t key) {
  LogicalDml dml;
  dml.kind = DmlKind::kInsert;
  dml.table = user;
  dml.key = key;
  dml.set_attrs = {bs.u_name, bs.u_addr};
  dml.set_values = {Value::Varchar("live-" + std::to_string(key)),
                    Value::Varchar("addr-" + std::to_string(key))};
  return dml;
}

class MigrationDmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    data_ = bs_->MakeData(5, 8, 60);
    user_tables_ = VersionTablesOf(bs_->source);
    user_ = FindTable(user_tables_, "user");
    ASSERT_NE(user_, nullptr);
  }

  /// Reference: the same logical rows migrated with no concurrent writers.
  /// `extra_keys` are rows the live run inserts mid-copy; `deleted_keys`
  /// rows it deletes.
  void ReferenceSplit(const std::vector<int64_t>& extra_keys,
                      const std::vector<int64_t>& deleted_keys, std::vector<Row>* rest,
                      std::vector<Row>* moved) {
    auto ref = bs_->MakeData(5, 8, 60);
    for (int64_t k : extra_keys) {
      ASSERT_TRUE(ref->AddRow(bs_->user,
                              {Value::Int(k), Value::Varchar("live-" + std::to_string(k)),
                               Value::Null(TypeId::kInt64),
                               Value::Varchar("addr-" + std::to_string(k))})
                      .ok());
    }
    for (int64_t k : deleted_keys) ASSERT_TRUE(ref->DeleteRow(bs_->user, k).ok());
    Database db(512);
    ASSERT_TRUE(ref->Materialize(&db, bs_->source).ok());
    PhysicalSchema schema = bs_->source;
    MigrationExecutor exec(&db, ref.get());
    auto io = exec.Apply(SplitUserOp(*bs_), &schema);
    ASSERT_TRUE(io.ok()) << io.status().ToString();
    *rest = SortRows(TableRows(&db, "m7a_user"));
    *moved = SortRows(TableRows(&db, "m7b_user"));
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<LogicalDatabase> data_;
  std::vector<VersionTable> user_tables_;
  const VersionTable* user_ = nullptr;
};

// Satellite 1 regression. The read-only-era executor treated "rows copied so
// far" as the whole story: anything the scan had already passed was frozen.
// A write routed through the DmlRouter must land on BOTH sides of the
// frontier — rows already copied get their target copies patched directly,
// rows still ahead of the scan are fixed in the source and carried by the
// copy, and neither path may apply twice.
TEST_F(MigrationDmlTest, WritesOnBothSidesOfTheFrontierLandExactlyOnce) {
  Database db(512);
  ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
  PhysicalSchema schema = bs_->source;
  MigrationExecutor exec(&db, data_.get());
  DmlRouter router(&db);

  MigrationOptions opts;
  opts.batch_rows = 16;  // 60 users -> 4 batches per split target
  opts.dml_router = &router;
  bool injected = false;
  opts.on_batch = [&](const MigrationBatchEvent& ev) -> Status {
    if (ev.batch_index != 1 || injected) return Status::OK();
    injected = true;
    // Behind the frontier (keys 0..15 are already in the targets).
    LogicalDml upd_behind;
    upd_behind.kind = DmlKind::kUpdate;
    upd_behind.table = *user_;
    upd_behind.key = 5;
    upd_behind.set_attrs = {bs_->u_addr};
    upd_behind.set_values = {Value::Varchar("patched")};
    PSE_RETURN_NOT_OK(router.Execute(upd_behind, bs_->source));
    LogicalDml del_behind;
    del_behind.kind = DmlKind::kDelete;
    del_behind.table = *user_;
    del_behind.key = 3;
    PSE_RETURN_NOT_OK(router.Execute(del_behind, bs_->source));
    // Ahead of the frontier (keys >= 32 have not been scanned yet).
    LogicalDml upd_ahead = upd_behind;
    upd_ahead.key = 50;
    PSE_RETURN_NOT_OK(router.Execute(upd_ahead, bs_->source));
    LogicalDml del_ahead = del_behind;
    del_ahead.key = 40;
    PSE_RETURN_NOT_OK(router.Execute(del_ahead, bs_->source));
    // A fresh row: the dual write puts it in the targets immediately, and
    // the copy scan passing over the appended source row must notice it is
    // already there (the exactly-once half of the regression).
    PSE_RETURN_NOT_OK(router.Execute(UserInsert(*bs_, *user_, 1000), bs_->source));
    return Status::OK();
  };
  exec.set_options(std::move(opts));
  auto io = exec.Apply(SplitUserOp(*bs_), &schema);
  ASSERT_TRUE(io.ok()) << io.status().ToString();
  ASSERT_TRUE(injected);

  // Reference: the same final entity set migrated without concurrency. The
  // updates are modeled by patching the reference data before migrating.
  auto ref = bs_->MakeData(5, 8, 60);
  ASSERT_TRUE(ref->UpdateRow(bs_->user, 5, {bs_->u_addr}, {Value::Varchar("patched")}).ok());
  ASSERT_TRUE(ref->UpdateRow(bs_->user, 50, {bs_->u_addr}, {Value::Varchar("patched")}).ok());
  ASSERT_TRUE(ref->DeleteRow(bs_->user, 3).ok());
  ASSERT_TRUE(ref->DeleteRow(bs_->user, 40).ok());
  ASSERT_TRUE(ref->AddRow(bs_->user, {Value::Int(1000), Value::Varchar("live-1000"),
                                      Value::Null(TypeId::kInt64), Value::Varchar("addr-1000")})
                  .ok());
  Database ref_db(512);
  ASSERT_TRUE(ref->Materialize(&ref_db, bs_->source).ok());
  PhysicalSchema ref_schema = bs_->source;
  MigrationExecutor ref_exec(&ref_db, ref.get());
  ASSERT_TRUE(ref_exec.Apply(SplitUserOp(*bs_), &ref_schema).ok());

  for (const char* t : {"m7a_user", "m7b_user"}) {
    EXPECT_TRUE(SameRows(SortRows(TableRows(&db, t)), SortRows(TableRows(&ref_db, t))))
        << t << " diverges from the write-free reference";
  }
  EXPECT_GT(router.stats().dual_applied, 0u);
  EXPECT_FALSE(router.attached()) << "publish must detach the router";
}

// Replaying the same statement after the copy passed it must stay a no-op:
// the shared key sets, not scan position, decide "already present".
TEST_F(MigrationDmlTest, ReplayedInsertDoesNotDuplicateAcrossTheFrontier) {
  Database db(512);
  ASSERT_TRUE(data_->Materialize(&db, bs_->source).ok());
  PhysicalSchema schema = bs_->source;
  MigrationExecutor exec(&db, data_.get());
  DmlRouter router(&db);

  MigrationOptions opts;
  opts.batch_rows = 16;
  opts.dml_router = &router;
  opts.on_batch = [&](const MigrationBatchEvent&) -> Status {
    // The same insert fired after every batch, on both sides of the
    // frontier: first execution inserts, all replays are no-ops.
    return router.Execute(UserInsert(*bs_, *user_, 2000), bs_->source);
  };
  exec.set_options(std::move(opts));
  ASSERT_TRUE(exec.Apply(SplitUserOp(*bs_), &schema).ok());

  std::vector<Row> rest, moved;
  ReferenceSplit({2000}, {}, &rest, &moved);
  EXPECT_TRUE(SameRows(SortRows(TableRows(&db, "m7a_user")), rest));
  EXPECT_TRUE(SameRows(SortRows(TableRows(&db, "m7b_user")), moved));
}

// --- crash / resume with live writers (file-backed) ---

class DmlCrashRecoveryTest : public MigrationDmlTest {
 protected:
  void SetUp() override {
    MigrationDmlTest::SetUp();
    path_ = testing::TempDir() + "/pse_migration_dml_test.db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void MaterializePersistent() {
    auto db = Database::Open(path_, 256);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    ASSERT_TRUE(data_->Materialize(db_.get(), bs_->source).ok());
    ASSERT_TRUE(db_->Checkpoint().ok());
  }

  void Reopen() {
    db_.reset();
    auto db = Database::Open(path_, 256);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  std::unique_ptr<Database> db_;
  std::string path_;
};

// Satellite 2 property: kill the migration after the K-th batch while a
// writer inserts a fresh row per batch, reopen, resume with a FRESH router
// (key sets rebuilt from the destination heaps), and require the targets to
// equal an uninterrupted migration of the same final entity set. This is
// exactly the state the old dedup logic corrupted: rows that entered the
// destination via the dual write, not the copy scan, were invisible to it.
TEST_F(DmlCrashRecoveryTest, CrashAfterAnyBatchWithLiveInsertsResumesToIdenticalContents) {
  for (uint64_t kill_at : {uint64_t{0}, uint64_t{1}, uint64_t{3}, uint64_t{6}, uint64_t{99}}) {
    SCOPED_TRACE("kill after batch " + std::to_string(kill_at));
    std::remove(path_.c_str());
    MaterializePersistent();

    PhysicalSchema schema = bs_->source;
    MigrationExecutor exec(db_.get(), data_.get());
    DmlRouter router(db_.get());
    MigrationOptions opts;
    opts.batch_rows = 16;
    opts.rollback_on_error = false;
    opts.dml_router = &router;
    std::vector<int64_t> inserted;
    opts.on_batch = [&](const MigrationBatchEvent& ev) -> Status {
      if (ev.batch_index >= kill_at) return Status::Internal("simulated crash");
      int64_t key = 1000 + static_cast<int64_t>(ev.batch_index);
      PSE_RETURN_NOT_OK(router.Execute(UserInsert(*bs_, *user_, key), bs_->source));
      // Make the write durable before the crash window: the oracle below
      // assumes every acknowledged insert survives.
      PSE_RETURN_NOT_OK(db_->Checkpoint());
      inserted.push_back(key);
      return Status::OK();
    };
    exec.set_options(std::move(opts));

    auto io = exec.Apply(SplitUserOp(*bs_), &schema);
    if (io.ok()) {
      std::vector<Row> rest, moved;
      ReferenceSplit(inserted, {}, &rest, &moved);
      EXPECT_TRUE(SameRows(SortRows(TableRows(db_.get(), "m7a_user")), rest));
      EXPECT_TRUE(SameRows(SortRows(TableRows(db_.get(), "m7b_user")), moved));
      continue;
    }

    Reopen();
    ASSERT_TRUE(db_->HasPendingMigration());

    // The crash lost the router (and its in-memory key sets). Resume wires
    // a fresh one; RebuildKeys must re-derive the sets from the heaps so
    // the remaining copy still skips the dual-written rows.
    PhysicalSchema resumed = bs_->source;
    MigrationExecutor exec2(db_.get(), data_.get());
    DmlRouter router2(db_.get());
    MigrationOptions resume_opts;
    resume_opts.batch_rows = 16;
    resume_opts.dml_router = &router2;
    exec2.set_options(std::move(resume_opts));
    auto rio = exec2.Resume(SplitUserOp(*bs_), &resumed);
    ASSERT_TRUE(rio.ok()) << rio.status().ToString();

    std::vector<Row> rest, moved;
    ReferenceSplit(inserted, {}, &rest, &moved);
    EXPECT_TRUE(SameRows(SortRows(TableRows(db_.get(), "m7a_user")), rest));
    EXPECT_TRUE(SameRows(SortRows(TableRows(db_.get(), "m7b_user")), moved));
    EXPECT_FALSE(db_->HasTable("user"));
  }
}

// --- provenance backfill at publish ---

// Deleting the only rows that carry a parent's denormalized attributes
// mid-copy must not lose the parent: the delete snapshots the carried values
// into provenance, and publish backfills them into the split target whose
// scan will never see them.
TEST(MigrationDmlProvenance, SplitBackfillsParentsDeletedMidCopy) {
  LogicalSchema L;
  EntityId item = L.AddEntity("item", "i_id");
  EntityId cat = L.AddEntity("cat", "c_id");
  AttrId i_title = *L.AddAttribute(item, "i_title", TypeId::kVarchar, 16);
  AttrId c_id_fk = *L.AddForeignKey(item, "i_c_id", cat);
  AttrId c_desc = *L.AddAttribute(cat, "c_desc", TypeId::kVarchar, 24);

  PhysicalSchema source(&L);
  ASSERT_TRUE(source.AddTable("item_all", item, {i_title, c_id_fk, c_desc}).ok());

  Database db(256);
  ASSERT_TRUE(db.CreateTable(source.ToTableSchema(0)).ok());
  // Column order is AttrId order: i_id, c_id, i_title, i_c_id, c_desc.
  // Items 0..5, item i belongs to cat i % 3.
  const PhysicalTable& t = source.tables()[0];
  for (int64_t i = 0; i < 6; ++i) {
    Row row;
    for (AttrId a : t.attrs) {
      if (a == L.entity(item).key) {
        row.push_back(Value::Int(i));
      } else if (a == L.entity(cat).key) {
        row.push_back(Value::Int(i % 3));
      } else if (a == i_title) {
        row.push_back(Value::Varchar("item-" + std::to_string(i)));
      } else if (a == c_id_fk) {
        row.push_back(Value::Int(i % 3));
      } else {
        row.push_back(Value::Varchar("desc-" + std::to_string(i % 3)));
      }
    }
    ASSERT_TRUE(db.Insert("item_all", row).ok());
  }

  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 3;
  op.split_moved = {c_desc};
  op.split_moved_anchor = cat;

  LogicalDatabase empty(&L);
  MigrationExecutor exec(&db, &empty);
  DmlRouter router(&db);
  std::vector<VersionTable> tables = VersionTablesOf(source);
  const VersionTable* item_all = FindTable(tables, "item_all");
  ASSERT_NE(item_all, nullptr);

  MigrationOptions opts;
  opts.batch_rows = 2;
  opts.dml_router = &router;
  bool injected = false;
  opts.on_batch = [&](const MigrationBatchEvent&) -> Status {
    if (injected) return Status::OK();
    injected = true;
    // Items 2 and 5 are the only carriers of cat 2; neither has been
    // scanned yet (only rows 0 and 1 are behind the frontier).
    for (int64_t key : {2, 5}) {
      LogicalDml del;
      del.kind = DmlKind::kDelete;
      del.table = *item_all;
      del.key = key;
      PSE_RETURN_NOT_OK(router.Execute(del, source));
    }
    return Status::OK();
  };
  exec.set_options(std::move(opts));

  PhysicalSchema schema = source;
  auto io = exec.Apply(op, &schema);
  ASSERT_TRUE(io.ok()) << io.status().ToString();
  ASSERT_TRUE(injected);

  // The item side (the "rest" target, named after the moved anchor) lost
  // items 2 and 5.
  std::vector<Row> items = coretest::SortRows(coretest::TableRows(&db, "m3a_cat"));
  ASSERT_EQ(items.size(), 4u);

  // The cat side still has all three categories: 0 and 1 via the scan, 2 via
  // the provenance backfill (its storage was deleted before the scan got
  // there).
  std::vector<Row> cats = coretest::SortRows(coretest::TableRows(&db, "m3b_cat"));
  ASSERT_EQ(cats.size(), 3u);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(cats[c][0].AsInt(), c);
    EXPECT_EQ(cats[c][1].AsString(), "desc-" + std::to_string(c));
  }
}

}  // namespace
}  // namespace pse
