#include "core/operators.h"

#include <gtest/gtest.h>

#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

MigrationOperator CreateAbstract(const Bookstore& s, int id = 0) {
  MigrationOperator op;
  op.kind = OperatorKind::kCreateTable;
  op.id = id;
  op.create_entity = s.book;
  op.create_attrs = {s.b_abstract};
  return op;
}

MigrationOperator SplitUser(const Bookstore& s, int id = 1) {
  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = id;
  op.split_moved = {s.u_addr};
  op.split_moved_anchor = s.user;
  return op;
}

MigrationOperator CombineBookAuthor(const Bookstore& s, int id = 2) {
  MigrationOperator op;
  op.kind = OperatorKind::kCombineTable;
  op.id = id;
  op.combine_left_rep = s.b_title;
  op.combine_right_rep = s.a_name;
  return op;
}

TEST(OperatorsTest, CreateTableAddsFragment) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  ASSERT_TRUE(ApplyOperator(CreateAbstract(s), &schema).ok());
  EXPECT_EQ(schema.tables().size(), 4u);
  auto t = schema.TableOfNonKeyAttr(s.b_abstract);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(schema.tables()[*t].anchor, s.book);
  EXPECT_TRUE(schema.tables()[*t].Contains(s.b_id));  // the FD key
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(OperatorsTest, CreateTwiceRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  ASSERT_TRUE(ApplyOperator(CreateAbstract(s, 0), &schema).ok());
  EXPECT_FALSE(ApplyOperator(CreateAbstract(s, 5), &schema).ok());
}

TEST(OperatorsTest, SplitTableSeparatesAttrs) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  ASSERT_TRUE(ApplyOperator(SplitUser(s), &schema).ok());
  EXPECT_EQ(schema.tables().size(), 4u);
  auto addr_t = schema.TableOfNonKeyAttr(s.u_addr);
  auto name_t = schema.TableOfNonKeyAttr(s.u_name);
  ASSERT_TRUE(addr_t.ok());
  ASSERT_TRUE(name_t.ok());
  EXPECT_NE(*addr_t, *name_t);
  // Both sides keep the key (the paper's created reference).
  EXPECT_TRUE(schema.tables()[*addr_t].Contains(s.u_id));
  EXPECT_TRUE(schema.tables()[*name_t].Contains(s.u_id));
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(OperatorsTest, SplitAllAttrsRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 9;
  op.split_moved = {s.u_name, s.u_bday, s.u_addr};  // nothing left behind
  op.split_moved_anchor = s.user;
  EXPECT_FALSE(ApplyOperator(op, &schema).ok());
}

TEST(OperatorsTest, SplitNonColocatedRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 9;
  op.split_moved = {s.u_name, s.b_title};  // different tables
  op.split_moved_anchor = s.user;
  EXPECT_FALSE(ApplyOperator(op, &schema).ok());
}

TEST(OperatorsTest, CombineAcrossRelationship) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  ASSERT_TRUE(ApplyOperator(CombineBookAuthor(s), &schema).ok());
  EXPECT_EQ(schema.tables().size(), 2u);
  auto t = schema.TableOfNonKeyAttr(s.a_name);
  ASSERT_TRUE(t.ok());
  // Result anchored at the many side (book) with the reference FK present.
  EXPECT_EQ(schema.tables()[*t].anchor, s.book);
  EXPECT_TRUE(schema.tables()[*t].Contains(s.b_a_id));
  EXPECT_TRUE(schema.tables()[*t].Contains(s.a_id));
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(OperatorsTest, CombineUnrelatedRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  MigrationOperator op;
  op.kind = OperatorKind::kCombineTable;
  op.id = 9;
  op.combine_left_rep = s.u_name;  // user table
  op.combine_right_rep = s.b_title;  // book table: no relationship
  EXPECT_FALSE(ApplyOperator(op, &schema).ok());
}

TEST(OperatorsTest, CombineSameTableRejected) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  MigrationOperator op;
  op.kind = OperatorKind::kCombineTable;
  op.id = 9;
  op.combine_left_rep = s.u_name;
  op.combine_right_rep = s.u_addr;  // same table
  EXPECT_FALSE(ApplyOperator(op, &schema).ok());
}

TEST(OperatorsTest, CombineVerticalFragments) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  ASSERT_TRUE(ApplyOperator(SplitUser(s), &schema).ok());
  // Re-combine the two user fragments.
  MigrationOperator op;
  op.kind = OperatorKind::kCombineTable;
  op.id = 7;
  op.combine_left_rep = s.u_name;
  op.combine_right_rep = s.u_addr;
  ASSERT_TRUE(ApplyOperator(op, &schema).ok());
  auto t = schema.TableOfNonKeyAttr(s.u_name);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(schema.tables()[*t].Contains(s.u_addr));
  EXPECT_EQ(schema.tables()[*t].anchor, s.user);
}

TEST(OperatorsTest, FailedOperatorLeavesSchemaUntouched) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  PhysicalSchema before = schema;
  MigrationOperator op;
  op.kind = OperatorKind::kCombineTable;
  op.id = 9;
  op.combine_left_rep = s.u_name;
  op.combine_right_rep = s.b_title;
  ASSERT_FALSE(ApplyOperator(op, &schema).ok());
  EXPECT_TRUE(schema.EquivalentTo(before));
}

TEST(OperatorsTest, FullSequenceReachesObject) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  PhysicalSchema schema = s.source;
  std::vector<MigrationOperator> ops{CreateAbstract(s, 0), SplitUser(s, 1),
                                     CombineBookAuthor(s, 2)};
  // Also need to merge the created abstract fragment into the glossary.
  MigrationOperator merge_abstract;
  merge_abstract.kind = OperatorKind::kCombineTable;
  merge_abstract.id = 3;
  merge_abstract.combine_left_rep = s.b_title;
  merge_abstract.combine_right_rep = s.b_abstract;
  ops.push_back(merge_abstract);
  ASSERT_TRUE(ApplyOperators(ops, &schema).ok());
  EXPECT_TRUE(schema.EquivalentTo(s.object)) << schema.ToString();
}

TEST(OperatorsTest, ToStringMentionsKindAndAttrs) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  EXPECT_NE(CreateAbstract(s).ToString(s.logical).find("Create"), std::string::npos);
  EXPECT_NE(SplitUser(s).ToString(s.logical).find("u_addr"), std::string::npos);
  EXPECT_NE(CombineBookAuthor(s).ToString(s.logical).find("Combine"), std::string::npos);
}

}  // namespace
}  // namespace pse
