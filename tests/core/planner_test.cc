// Tests for LAA / GAA migration planning.
#include "core/migration_planner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

/// Workload: one old query that loves the source layout (author-anchored
/// scan, hurt by denormalization) and one new query that loves the object
/// layout (book+author join collapsed by the combine).
class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    data_ = bs_->MakeData(20, 40, 100);
    stats_.push_back(data_->ComputeStats());
    opset_r_ = std::make_unique<OperatorSet>();
    auto opset = ComputeOperatorSet(bs_->source, bs_->object);
    ASSERT_TRUE(opset.ok());
    *opset_r_ = std::move(*opset);

    // Old query: scan authors (cheap on source, distinct-scan on glossary).
    LogicalQuery old_q;
    old_q.anchor = bs_->author;
    old_q.select.emplace_back(Col("a_name"), AggFunc::kNone, "a_name");
    old_q.select.emplace_back(Col("a_bio"), AggFunc::kNone, "a_bio");
    queries_.emplace_back(std::move(old_q), /*is_old=*/true);

    // New query: book + author attributes (join on source, single table on
    // object), plus the new abstract column.
    LogicalQuery new_q;
    new_q.anchor = bs_->book;
    new_q.select.emplace_back(Col("b_title"), AggFunc::kNone, "b_title");
    new_q.select.emplace_back(Col("a_name"), AggFunc::kNone, "a_name");
    new_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "b_abstract");
    queries_.emplace_back(std::move(new_q), /*is_old=*/false);

    // Old user query, indifferent to the user split.
    LogicalQuery user_q;
    user_q.anchor = bs_->user;
    user_q.select.emplace_back(Col("u_name"), AggFunc::kNone, "u_name");
    queries_.emplace_back(std::move(user_q), /*is_old=*/true);
  }

  MigrationContext MakeContext(const PhysicalSchema* current,
                               const std::vector<std::vector<double>>* freqs) {
    MigrationContext ctx;
    ctx.current = current;
    ctx.object = &bs_->object;
    ctx.opset = opset_r_.get();
    ctx.applied.assign(opset_r_->size(), false);
    ctx.phase_freqs = freqs;
    ctx.phase_stats = &stats_;
    ctx.queries = &queries_;
    return ctx;
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<LogicalDatabase> data_;
  std::vector<LogicalStats> stats_;
  std::unique_ptr<OperatorSet> opset_r_;
  std::vector<WorkloadQuery> queries_;
};

TEST_F(PlannerTest, LaaKeepsSourceWhenOldDominates) {
  // Phase almost entirely old queries: staying near the source layout wins.
  std::vector<std::vector<double>> freqs{{100, 1, 50}};
  MigrationContext ctx = MakeContext(&bs_->source, &freqs);
  auto laa = SelectOpsLaa(ctx, 0);
  ASSERT_TRUE(laa.ok()) << laa.status().ToString();
  // Denormalizing author into the book table would hurt the dominant
  // author scan; whatever subset LAA picks, a_name must stay in an
  // author-anchored table. (Merging the new abstract fragment into book is
  // fine -- it does not touch the author table.)
  PhysicalSchema schema = bs_->source;
  for (int op : laa->ops_to_apply) {
    ASSERT_TRUE(ApplyOperator(opset_r_->ops[static_cast<size_t>(op)], &schema).ok());
  }
  auto a_name_table = schema.TableOfNonKeyAttr(bs_->a_name);
  ASSERT_TRUE(a_name_table.ok());
  EXPECT_EQ(schema.tables()[*a_name_table].anchor, bs_->author);
  EXPECT_GT(laa->schemas_evaluated, 0u);
}

TEST_F(PlannerTest, LaaMovesToObjectWhenNewDominates) {
  std::vector<std::vector<double>> freqs{{1, 100, 1}};
  MigrationContext ctx = MakeContext(&bs_->source, &freqs);
  auto laa = SelectOpsLaa(ctx, 0);
  ASSERT_TRUE(laa.ok()) << laa.status().ToString();
  // The new query needs b_abstract + the combined glossary; the best subset
  // must at least create the abstract fragment and combine book+author.
  bool has_create = false, has_combine = false;
  for (int op : laa->ops_to_apply) {
    if (opset_r_->ops[static_cast<size_t>(op)].kind == OperatorKind::kCreateTable) {
      has_create = true;
    }
    if (opset_r_->ops[static_cast<size_t>(op)].kind == OperatorKind::kCombineTable) {
      has_combine = true;
    }
  }
  EXPECT_TRUE(has_create);
  EXPECT_TRUE(has_combine);
}

TEST_F(PlannerTest, LaaExhaustiveModeEvaluatesWholePowerSetOfClosedSubsets) {
  std::vector<std::vector<double>> freqs{{10, 10, 10}};
  MigrationContext ctx = MakeContext(&bs_->source, &freqs);
  AnalysisOptions brute;
  brute.prune_laa = false;
  auto laa = SelectOpsLaa(ctx, 0, /*observed_phase=*/0, /*max_ops=*/22, brute);
  ASSERT_TRUE(laa.ok());
  // 4 ops, dependency chain create -> combine -> combine plus the free user
  // split: exactly 4 * 2 = 8 dependency-closed subsets.
  EXPECT_EQ(laa->schemas_evaluated, 8u);
  EXPECT_DOUBLE_EQ(laa->schemas_exhaustive, 8.0);
  EXPECT_TRUE(laa->clusters.empty());
}

TEST_F(PlannerTest, LaaClusterPruningIsExactOnFixture) {
  // The interaction analysis splits the bookstore opset into the book/author
  // chain {create, combine, combine} and the independent user split; pruned
  // LAA must report that structure and match the brute-force cost exactly.
  for (const std::vector<double>& phase : std::vector<std::vector<double>>{
           {100, 1, 50}, {1, 100, 1}, {10, 10, 10}}) {
    std::vector<std::vector<double>> freqs{phase};
    MigrationContext ctx = MakeContext(&bs_->source, &freqs);
    auto pruned = SelectOpsLaa(ctx, 0);
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    AnalysisOptions brute_options;
    brute_options.prune_laa = false;
    auto brute = SelectOpsLaa(ctx, 0, /*observed_phase=*/0, /*max_ops=*/22, brute_options);
    ASSERT_TRUE(brute.ok());
    EXPECT_NEAR(pruned->best_cost, brute->best_cost,
                1e-6 * std::max(1.0, brute->best_cost));
    EXPECT_DOUBLE_EQ(pruned->schemas_exhaustive,
                     static_cast<double>(brute->schemas_evaluated));
    // 1 residual + 4 chain subsets + 2 split subsets, vs 8 brute.
    EXPECT_EQ(pruned->schemas_evaluated, 7u);
    ASSERT_EQ(pruned->clusters.size(), 2u);
    EXPECT_EQ(pruned->clusters[0].ops.size() + pruned->clusters[1].ops.size(), 4u);
  }
}

TEST_F(PlannerTest, LaaGuardsAgainstExponentialBlowup) {
  std::vector<std::vector<double>> freqs{{10, 10, 10}};
  MigrationContext ctx = MakeContext(&bs_->source, &freqs);
  // max_ops=2 bounds the largest *cluster* with pruning on; the book/author
  // chain has 3 members, so the guard still fires.
  auto laa = SelectOpsLaa(ctx, 0, /*observed_phase=*/0, /*max_ops=*/2);
  ASSERT_FALSE(laa.ok());
  EXPECT_EQ(laa.status().code(), StatusCode::kResourceExhausted);
  // With pruning off the same guard bounds m itself.
  AnalysisOptions brute;
  brute.prune_laa = false;
  auto laa2 = SelectOpsLaa(ctx, 0, /*observed_phase=*/0, /*max_ops=*/3, brute);
  ASSERT_FALSE(laa2.ok());
  EXPECT_EQ(laa2.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(PlannerTest, GaaAssignmentRespectsDependencies) {
  std::vector<std::vector<double>> freqs{{80, 20, 40}, {50, 50, 40}, {20, 80, 40}};
  MigrationContext ctx = MakeContext(&bs_->source, &freqs);
  GaaOptions options;
  options.ga.population_size = 24;
  options.ga.generations = 30;
  auto gaa = PlanGaa(ctx, 0, options);
  ASSERT_TRUE(gaa.ok()) << gaa.status().ToString();
  ASSERT_EQ(gaa->assignment.size(), opset_r_->size());
  // Every dependency pair: prereq offset <= dependent offset.
  for (size_t i = 0; i < gaa->remaining_ops.size(); ++i) {
    int op = gaa->remaining_ops[i];
    for (int d : opset_r_->deps[static_cast<size_t>(op)]) {
      // Find d's position.
      for (size_t j = 0; j < gaa->remaining_ops.size(); ++j) {
        if (gaa->remaining_ops[j] == d) {
          EXPECT_LE(gaa->assignment[j], gaa->assignment[i]);
        }
      }
    }
  }
  EXPECT_GT(gaa->evaluations, 0u);
}

TEST_F(PlannerTest, GaaMatchesExhaustiveOnSmallInstance) {
  std::vector<std::vector<double>> freqs{{80, 20, 40}, {40, 60, 40}, {10, 90, 40}};
  MigrationContext ctx = MakeContext(&bs_->source, &freqs);
  GaaOptions options;
  options.ga.population_size = 40;
  options.ga.generations = 60;
  options.seed = 99;
  auto gaa = PlanGaa(ctx, 0, options);
  auto exhaustive = PlanExhaustiveGlobal(ctx, 0, options);
  ASSERT_TRUE(gaa.ok());
  ASSERT_TRUE(exhaustive.ok());
  // 4 ops x 3 phases = 81 assignments: the GA should find the optimum.
  EXPECT_NEAR(gaa->best_cost, exhaustive->best_cost, exhaustive->best_cost * 0.01 + 1e-9);
}

TEST_F(PlannerTest, GaaForwardScanBeatsOrMatchesGreedy) {
  // Simulate LAA phase-by-phase vs GAA's committed plan, comparing the
  // estimated overall cost via EvaluateAssignment.
  std::vector<std::vector<double>> freqs{{90, 10, 40}, {50, 50, 40}, {10, 90, 40}};
  MigrationContext ctx = MakeContext(&bs_->source, &freqs);
  GaaOptions options;
  options.ga.population_size = 40;
  options.ga.generations = 60;
  auto gaa = PlanGaa(ctx, 0, options);
  ASSERT_TRUE(gaa.ok());

  // Greedy: run LAA at each phase, track assignment offsets.
  PhysicalSchema current = bs_->source;
  std::vector<bool> applied(opset_r_->size(), false);
  std::vector<int> greedy_assignment(opset_r_->size(), static_cast<int>(freqs.size()) - 1);
  for (size_t p = 0; p < freqs.size(); ++p) {
    MigrationContext step = MakeContext(&current, &freqs);
    step.applied = applied;
    auto laa = SelectOpsLaa(step, p);
    ASSERT_TRUE(laa.ok());
    for (int op : laa->ops_to_apply) {
      ASSERT_TRUE(ApplyOperator(opset_r_->ops[static_cast<size_t>(op)], &current).ok());
      applied[static_cast<size_t>(op)] = true;
      greedy_assignment[static_cast<size_t>(op)] = static_cast<int>(p);
    }
  }
  std::vector<int> all_ops;
  for (size_t i = 0; i < opset_r_->size(); ++i) all_ops.push_back(static_cast<int>(i));
  MigrationContext eval_ctx = MakeContext(&bs_->source, &freqs);
  auto greedy_cost = EvaluateAssignment(eval_ctx, 0, all_ops, greedy_assignment, options);
  ASSERT_TRUE(greedy_cost.ok());
  EXPECT_LE(gaa->best_cost, *greedy_cost * 1.0001);
}

TEST_F(PlannerTest, GaaClusterSeedReproducesGreedyLaaTrajectory) {
  // With population_size=1 and generations=0 the GA result IS the injected
  // seed (repair is a no-op on a dependency-valid chromosome), so the
  // assignment must equal the greedy cluster-wise LAA trajectory computed
  // independently here.
  std::vector<std::vector<double>> freqs{{80, 20, 40}, {50, 50, 40}, {20, 80, 40}};
  MigrationContext ctx = MakeContext(&bs_->source, &freqs);
  GaaOptions options;
  options.analysis.seed_gaa_from_clusters = true;
  options.ga.population_size = 1;
  options.ga.generations = 0;
  auto gaa = PlanGaa(ctx, 0, options);
  ASSERT_TRUE(gaa.ok()) << gaa.status().ToString();
  ASSERT_EQ(gaa->assignment.size(), opset_r_->size());

  PhysicalSchema current = bs_->source;
  std::vector<bool> applied(opset_r_->size(), false);
  std::vector<int> expected(opset_r_->size(), static_cast<int>(freqs.size()));
  for (size_t p = 0; p < freqs.size(); ++p) {
    MigrationContext step = MakeContext(&current, &freqs);
    step.applied = applied;
    auto laa = SelectOpsLaa(step, p);
    ASSERT_TRUE(laa.ok());
    for (int op : laa->ops_to_apply) {
      ASSERT_TRUE(ApplyOperator(opset_r_->ops[static_cast<size_t>(op)], &current).ok());
      applied[static_cast<size_t>(op)] = true;
      expected[static_cast<size_t>(op)] = static_cast<int>(p);
    }
  }
  for (size_t i = 0; i < gaa->remaining_ops.size(); ++i) {
    EXPECT_EQ(gaa->assignment[i], expected[static_cast<size_t>(gaa->remaining_ops[i])])
        << "op " << gaa->remaining_ops[i];
  }

  // A real seeded run can only improve on (or match) the seed's cost.
  GaaOptions full = options;
  full.ga.population_size = 24;
  full.ga.generations = 30;
  auto seeded = PlanGaa(ctx, 0, full);
  ASSERT_TRUE(seeded.ok());
  EXPECT_LE(seeded->best_cost, gaa->best_cost * 1.0001);
}

TEST_F(PlannerTest, OperatorIoEstimatesArePositive) {
  const LogicalStats& stats = stats_[0];
  for (const auto& op : opset_r_->ops) {
    PhysicalSchema schema = bs_->source;
    // Apply prerequisites first so the op is applicable.
    if (op.kind == OperatorKind::kCombineTable) {
      // Ensure the created fragment exists for the abstract-combine.
      for (const auto& pre : opset_r_->ops) {
        if (pre.kind == OperatorKind::kCreateTable) (void)ApplyOperator(pre, &schema);
      }
    }
    auto io = EstimateOperatorIo(op, schema, stats);
    ASSERT_TRUE(io.ok());
    EXPECT_GT(*io, 0.0) << op.ToString(bs_->logical);
  }
}

TEST_F(PlannerTest, EmptyRemainingOpsIsTrivial) {
  std::vector<std::vector<double>> freqs{{10, 10, 10}};
  MigrationContext ctx = MakeContext(&bs_->object, &freqs);
  ctx.applied.assign(opset_r_->size(), true);
  GaaOptions options;
  auto gaa = PlanGaa(ctx, 0, options);
  ASSERT_TRUE(gaa.ok());
  EXPECT_TRUE(gaa->assignment.empty());
  EXPECT_TRUE(gaa->ApplyNow().empty());
}

}  // namespace
}  // namespace pse
