// The write-safety planning knob (AnalysisOptions::write_safety).
//
// Three contracts, property-tested like parallel_planner_test.cc:
//  1. Knob off — the default — is the planners' pre-knob behavior; with the
//     knob on but zero-priced, the brute LAA sweep, GAA, and the advisor are
//     *bit-identical* (EXPECT_EQ on doubles) to the knob-off run, because the
//     penalty hook only ever adds 0.0.
//  2. With real prices, the pruned cluster-wise LAA equals the brute-force
//     sweep exactly — the coupling-group decomposition of the penalty is
//     exact, not approximate.
//  3. On the paper's Fig 7 bookstore migration with both versions live, the
//     knob-on walk chooses intermediate schemas with zero write-unservable
//     windows, and the penalty annotation in the results says so.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "analysis/writability.h"
#include "common/rng.h"
#include "core/migration_planner.h"
#include "core/schema_advisor.h"
#include "engine/expr.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

constexpr size_t kPhases = 3;

struct Instance {
  PhysicalSchema object;
  OperatorSet opset;
  std::vector<WorkloadQuery> queries;
  std::vector<std::vector<double>> freqs;
};

/// The parallel-planner property test's instance generator: scramble the
/// bookstore source with valid operators, recompute the operator set, draw a
/// random workload and per-phase frequencies.
std::optional<Instance> DrawInstance(const Bookstore& s, Rng* rng, size_t max_m) {
  Instance inst;
  inst.object = s.source;
  int next_id = 4000;
  for (int step = 0; step < 6; ++step) {
    double roll = rng->UniformDouble();
    MigrationOperator op;
    op.id = next_id++;
    if (roll < 0.4) {
      std::vector<std::pair<size_t, std::vector<AttrId>>> candidates;
      for (size_t t = 0; t < inst.object.tables().size(); ++t) {
        std::vector<AttrId> nonkey;
        for (AttrId a : inst.object.tables()[t].attrs) {
          if (!s.logical.attr(a).is_key) nonkey.push_back(a);
        }
        if (nonkey.size() >= 2) candidates.emplace_back(t, nonkey);
      }
      if (candidates.empty()) continue;
      auto& [t, nonkey] = candidates[rng->Index(candidates.size())];
      size_t count = 1 + rng->Index(nonkey.size() - 1);
      rng->Shuffle(&nonkey);
      op.kind = OperatorKind::kSplitTable;
      op.split_moved.assign(nonkey.begin(), nonkey.begin() + static_cast<long>(count));
      op.split_moved_anchor = s.logical.attr(op.split_moved[0]).entity;
    } else {
      if (inst.object.tables().size() < 2) continue;
      size_t a = rng->Index(inst.object.tables().size());
      size_t b = rng->Index(inst.object.tables().size());
      if (a == b) continue;
      std::vector<AttrId> a_nonkey, b_nonkey;
      for (AttrId x : inst.object.tables()[a].attrs) {
        if (!s.logical.attr(x).is_key) a_nonkey.push_back(x);
      }
      for (AttrId x : inst.object.tables()[b].attrs) {
        if (!s.logical.attr(x).is_key) b_nonkey.push_back(x);
      }
      if (a_nonkey.empty() || b_nonkey.empty()) continue;
      op.kind = OperatorKind::kCombineTable;
      op.combine_left_rep = a_nonkey[0];
      op.combine_right_rep = b_nonkey[0];
    }
    (void)ApplyOperator(op, &inst.object);
  }
  auto opset = ComputeOperatorSet(s.source, inst.object);
  if (!opset.ok()) return std::nullopt;
  if (opset->size() == 0 || opset->size() > max_m) return std::nullopt;
  inst.opset = std::move(*opset);

  size_t num_queries = 3 + rng->Index(4);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    EntityId anchor = rng->Index(s.logical.num_entities());
    std::vector<AttrId> reachable;
    for (AttrId a = 0; a < s.logical.num_attributes(); ++a) {
      const LogicalAttribute& attr = s.logical.attr(a);
      if (attr.is_key || attr.is_new) continue;
      if (s.logical.Reaches(anchor, attr.entity)) reachable.push_back(a);
    }
    if (reachable.empty()) continue;
    rng->Shuffle(&reachable);
    size_t picks = 1 + rng->Index(std::min<size_t>(3, reachable.size()));
    LogicalQuery q;
    q.name = "q";  // += form: GCC 12's operator+(const char*, string&&) trips -Wrestrict
    q.name += std::to_string(qi);
    q.anchor = anchor;
    for (size_t k = 0; k < picks; ++k) {
      const std::string& name = s.logical.attr(reachable[k]).name;
      q.select.emplace_back(Col(name), AggFunc::kNone, name);
    }
    inst.queries.emplace_back(std::move(q), /*is_old=*/true);
  }
  if (inst.queries.empty()) return std::nullopt;
  inst.freqs.assign(kPhases, std::vector<double>(inst.queries.size()));
  for (auto& phase : inst.freqs) {
    for (double& f : phase) f = static_cast<double>(rng->Index(41));
  }
  return inst;
}

class WriteSafetyProperty : public ::testing::TestWithParam<uint64_t> {};

// Contract 1 + 2 for LAA across randomized migration walks.
TEST_P(WriteSafetyProperty, LaaKnobOffZeroPricedAndPrunedAgree) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto data = s.MakeData(10, 30, 60);
  std::vector<LogicalStats> stats{data->ComputeStats()};
  Rng rng(GetParam());

  AnalysisOptions off_brute;
  off_brute.prune_laa = false;
  AnalysisOptions zero_brute = off_brute;
  zero_brute.write_safety = true;
  zero_brute.write_unservable_penalty = 0;
  zero_brute.write_propagation_penalty = 0;
  AnalysisOptions priced_brute = off_brute;
  priced_brute.write_safety = true;
  priced_brute.write_unservable_penalty = 1e6;
  priced_brute.write_propagation_penalty = 3.0;
  AnalysisOptions priced_pruned = priced_brute;
  priced_pruned.prune_laa = true;

  int instances = 0;
  for (int iter = 0; iter < 10 && instances < 5; ++iter) {
    auto inst = DrawInstance(s, &rng, /*max_m=*/10);
    if (!inst.has_value()) continue;
    ++instances;

    PhysicalSchema current = s.source;
    MigrationContext ctx;
    ctx.current = &current;
    ctx.object = &inst->object;
    ctx.opset = &inst->opset;
    ctx.applied.assign(inst->opset.size(), false);
    ctx.phase_freqs = &inst->freqs;
    ctx.phase_stats = &stats;
    ctx.queries = &inst->queries;

    for (size_t p = 0; p < kPhases; ++p) {
      auto off = SelectOpsLaa(ctx, p, p, /*max_ops=*/12, off_brute);
      ASSERT_TRUE(off.ok()) << off.status().ToString();
      auto zero = SelectOpsLaa(ctx, p, p, /*max_ops=*/12, zero_brute);
      ASSERT_TRUE(zero.ok()) << zero.status().ToString();

      // Zero-priced knob: bit-identical sweep, annotation reads 0.
      EXPECT_EQ(zero->ops_to_apply, off->ops_to_apply);
      EXPECT_EQ(zero->best_cost, off->best_cost);
      EXPECT_EQ(zero->schemas_evaluated, off->schemas_evaluated);
      EXPECT_EQ(zero->write_penalty, 0.0);
      EXPECT_EQ(off->write_penalty, 0.0);

      // Real prices: the pruned decomposition equals brute force exactly.
      auto brute = SelectOpsLaa(ctx, p, p, /*max_ops=*/12, priced_brute);
      ASSERT_TRUE(brute.ok()) << brute.status().ToString();
      auto pruned = SelectOpsLaa(ctx, p, p, /*max_ops=*/12, priced_pruned);
      ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
      EXPECT_EQ(pruned->ops_to_apply, brute->ops_to_apply);
      EXPECT_EQ(pruned->best_cost, brute->best_cost);  // bit-identical
      EXPECT_EQ(pruned->write_penalty, brute->write_penalty);
      EXPECT_GE(brute->write_penalty, 0.0);

      for (int op : off->ops_to_apply) {
        ASSERT_TRUE(ApplyOperator(inst->opset.ops[static_cast<size_t>(op)], &current).ok());
        ctx.applied[static_cast<size_t>(op)] = true;
      }
    }
  }
  EXPECT_GT(instances, 0);
}

// Contract 1 for GAA and the advisor.
TEST_P(WriteSafetyProperty, GaaAndAdvisorZeroPricedAreBitIdentical) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto data = s.MakeData(10, 30, 60);
  std::vector<LogicalStats> stats{data->ComputeStats()};
  Rng rng(GetParam() ^ 0xc3c3);

  int instances = 0;
  for (int iter = 0; iter < 8 && instances < 3; ++iter) {
    auto inst = DrawInstance(s, &rng, /*max_m=*/8);
    if (!inst.has_value()) continue;
    ++instances;

    MigrationContext ctx;
    ctx.current = &s.source;
    ctx.object = &inst->object;
    ctx.opset = &inst->opset;
    ctx.applied.assign(inst->opset.size(), false);
    ctx.phase_freqs = &inst->freqs;
    ctx.phase_stats = &stats;
    ctx.queries = &inst->queries;

    GaaOptions off;
    off.seed = 42 + GetParam();
    off.ga.population_size = 16;
    off.ga.generations = 8;
    GaaOptions zero = off;
    zero.analysis.write_safety = true;
    zero.analysis.write_unservable_penalty = 0;
    zero.analysis.write_propagation_penalty = 0;

    auto off_result = PlanGaa(ctx, 0, off);
    ASSERT_TRUE(off_result.ok()) << off_result.status().ToString();
    auto zero_result = PlanGaa(ctx, 0, zero);
    ASSERT_TRUE(zero_result.ok()) << zero_result.status().ToString();
    EXPECT_EQ(zero_result->assignment, off_result->assignment);
    EXPECT_EQ(zero_result->best_cost, off_result->best_cost);  // bit-identical
    EXPECT_EQ(zero_result->evaluations, off_result->evaluations);
    EXPECT_EQ(zero_result->write_penalty, 0.0);
    EXPECT_EQ(off_result->write_penalty, 0.0);
  }
  EXPECT_GT(instances, 0);

  // Advisor: zero-priced knob reproduces the knob-off climb step for step.
  std::vector<WorkloadQuery> queries;
  LogicalQuery q;
  q.name = "adv";
  q.anchor = s.book;
  q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
  q.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
  queries.emplace_back(std::move(q), /*is_old=*/true);
  std::vector<double> freqs{25.0};
  LogicalStats adv_stats = data->ComputeStats();

  AdvisorOptions off_adv;
  off_adv.allow_creates = false;
  AdvisorOptions zero_adv = off_adv;
  zero_adv.analysis.write_safety = true;
  zero_adv.analysis.write_unservable_penalty = 0;
  zero_adv.analysis.write_propagation_penalty = 0;
  auto off_rec = AdviseSchema(s.source, adv_stats, queries, freqs, off_adv);
  ASSERT_TRUE(off_rec.ok()) << off_rec.status().ToString();
  auto zero_rec = AdviseSchema(s.source, adv_stats, queries, freqs, zero_adv);
  ASSERT_TRUE(zero_rec.ok()) << zero_rec.status().ToString();
  EXPECT_EQ(zero_rec->final_cost, off_rec->final_cost);  // bit-identical
  EXPECT_EQ(zero_rec->initial_cost, off_rec->initial_cost);
  ASSERT_EQ(zero_rec->steps.size(), off_rec->steps.size());
  for (size_t i = 0; i < off_rec->steps.size(); ++i) {
    EXPECT_EQ(zero_rec->steps[i].op.ToString(s.logical),
              off_rec->steps[i].op.ToString(s.logical));
  }
  EXPECT_EQ(zero_rec->write_penalty, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteSafetyProperty, ::testing::Values(11, 211, 3111));

// Contract 3: on the Fig 7 bookstore migration with both versions live, the
// knob-on LAA walk never dwells on a schema with a write-unservable window,
// and the trajectory it builds has zero kUnservable cells after step 0 (the
// starting schema itself predates the planner's control).
TEST(WriteSafetyFig7, LaaWalkAvoidsUnservableWindows) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto data = s.MakeData(10, 30, 60);
  std::vector<LogicalStats> stats{data->ComputeStats()};
  auto opset = ComputeOperatorSet(s.source, s.object);
  ASSERT_TRUE(opset.ok()) << opset.status().ToString();

  std::vector<WorkloadQuery> queries;
  LogicalQuery old_q;
  old_q.name = "O1";
  old_q.anchor = s.book;
  old_q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
  queries.emplace_back(std::move(old_q), /*is_old=*/true);
  LogicalQuery new_q;
  new_q.name = "N1";
  new_q.anchor = s.book;
  new_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "ab");
  queries.emplace_back(std::move(new_q), /*is_old=*/false);
  std::vector<std::vector<double>> freqs(kPhases, std::vector<double>{10.0, 10.0});

  PhysicalSchema current = s.source;
  MigrationContext ctx;
  ctx.current = &current;
  ctx.object = &s.object;
  ctx.opset = &*opset;
  ctx.applied.assign(opset->size(), false);
  ctx.phase_freqs = &freqs;
  ctx.phase_stats = &stats;
  ctx.queries = &queries;

  AnalysisOptions knob;
  knob.write_safety = true;
  knob.write_old_schema = &s.source;  // the old app's layout stays the source

  std::vector<std::vector<int>> trajectory;
  for (size_t p = 0; p < kPhases; ++p) {
    auto laa = SelectOpsLaa(ctx, p, p, /*max_ops=*/30, knob);
    ASSERT_TRUE(laa.ok()) << laa.status().ToString();
    // The chosen schema never opens a write-unservable window: the 1e6
    // penalty forces the pending CreateTable in immediately.
    EXPECT_EQ(laa->write_penalty, 0.0) << "phase " << p;
    if (!laa->ops_to_apply.empty()) trajectory.push_back(laa->ops_to_apply);
    for (int op : laa->ops_to_apply) {
      ASSERT_TRUE(ApplyOperator(opset->ops[static_cast<size_t>(op)], &current).ok());
      ctx.applied[static_cast<size_t>(op)] = true;
    }
  }

  // Hard-reject mode agrees: a zero-penalty trajectory exists, so nothing is
  // rejected and the annotation stays finite.
  AnalysisOptions reject = knob;
  reject.write_reject_unservable = true;
  auto tail = SelectOpsLaa(ctx, kPhases - 1, kPhases - 1, /*max_ops=*/30, reject);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_TRUE(std::isfinite(tail->write_penalty));

  // The walked trajectory, re-analyzed end to end: no kUnservable cell on
  // any schema the planner chose (steps >= 1).
  WritabilityInput input;
  input.old_schema = &s.source;
  input.new_schema = &s.object;
  input.opset = &*opset;
  input.trajectory = trajectory;
  auto analysis = AnalyzeWritability(input);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  for (size_t step = 1; step < analysis->steps.size(); ++step) {
    for (const auto* matrix :
         {&analysis->steps[step].old_version, &analysis->steps[step].new_version}) {
      for (const auto& row : matrix->cells) {
        for (const WritabilityCell& cell : row) {
          EXPECT_NE(cell.level, Writability::kUnservable) << "step " << step;
        }
      }
    }
  }
}

// The deterministic global optimum with the knob on pays no write penalty on
// the Fig 7 migration — the annotation surfaces it, and GAA (seeded from the
// cluster trajectory) finds a zero-penalty plan too.
TEST(WriteSafetyFig7, GlobalAndGaaPlansCarryZeroPenalty) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto data = s.MakeData(10, 30, 60);
  std::vector<LogicalStats> stats{data->ComputeStats()};
  auto opset = ComputeOperatorSet(s.source, s.object);
  ASSERT_TRUE(opset.ok()) << opset.status().ToString();

  std::vector<WorkloadQuery> queries;
  LogicalQuery q;
  q.name = "O1";
  q.anchor = s.book;
  q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
  q.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
  queries.emplace_back(std::move(q), /*is_old=*/true);
  std::vector<std::vector<double>> freqs(kPhases, std::vector<double>{20.0});

  MigrationContext ctx;
  ctx.current = &s.source;
  ctx.object = &s.object;
  ctx.opset = &*opset;
  ctx.applied.assign(opset->size(), false);
  ctx.phase_freqs = &freqs;
  ctx.phase_stats = &stats;
  ctx.queries = &queries;

  GaaOptions options;
  options.seed = 99;
  options.ga.population_size = 32;
  options.ga.generations = 30;
  options.analysis.write_safety = true;
  options.analysis.write_old_schema = &s.source;

  auto global = PlanExhaustiveGlobal(ctx, 0, options, /*max_ops=*/10);
  ASSERT_TRUE(global.ok()) << global.status().ToString();
  EXPECT_EQ(global->write_penalty, 0.0);

  auto gaa = PlanGaa(ctx, 0, options);
  ASSERT_TRUE(gaa.ok()) << gaa.status().ToString();
  EXPECT_EQ(gaa->write_penalty, 0.0);
  EXPECT_GE(gaa->best_cost, 0.0);
}

// With a prohibitive propagation price and the seed as the live version, the
// advisor recommends no layout-changing move: every split/combine would
// downgrade some seed table's writes to kNeedsPropagation.
TEST(WriteSafetyAdvisor, ProhibitivePropagationPriceFreezesTheLayout) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto data = s.MakeData(10, 30, 60);
  LogicalStats stats = data->ComputeStats();

  std::vector<WorkloadQuery> queries;
  LogicalQuery q;
  q.name = "O1";
  q.anchor = s.book;
  q.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
  q.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
  queries.emplace_back(std::move(q), /*is_old=*/true);
  std::vector<double> freqs{25.0};

  AdvisorOptions options;
  options.allow_creates = false;
  options.analysis.write_safety = true;
  options.analysis.write_propagation_penalty = 1e9;
  auto rec = AdviseSchema(s.source, stats, queries, freqs, options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  for (const AdvisorStep& step : rec->steps) {
    EXPECT_EQ(step.op.kind, OperatorKind::kCreateTable) << step.op.ToString(s.logical);
  }
  EXPECT_EQ(rec->write_penalty, 0.0);
}

}  // namespace
}  // namespace pse
