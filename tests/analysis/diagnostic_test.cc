// DiagnosticReport mechanics: tallies, code lookup, status conversion,
// stable code names (part of the tool surface — DESIGN.md documents them).
#include <gtest/gtest.h>

#include "analysis/diagnostic.h"

namespace pse {
namespace {

TEST(DiagnosticTest, EmptyReportIsOk) {
  DiagnosticReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.warnings(), 0u);
  EXPECT_EQ(report.notes(), 0u);
  EXPECT_EQ(report.ToString(), "");
  EXPECT_TRUE(report.ToStatus().ok());
}

TEST(DiagnosticTest, TalliesBySeverity) {
  DiagnosticReport report;
  report.AddError(DiagCode::kOpsetDepCycle, "op#1", "cycle");
  report.AddWarning(DiagCode::kPreserveCombineCoverage, "op#2", "coverage");
  report.AddNote(DiagCode::kWorkloadUnanswerableIntermediate, "query 'N1'", "deferred");
  report.AddError(DiagCode::kPreserveSplitLossy, "op#3", "lossy");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.errors(), 2u);
  EXPECT_EQ(report.warnings(), 1u);
  EXPECT_EQ(report.notes(), 1u);
  EXPECT_EQ(report.diagnostics().size(), 4u);
}

TEST(DiagnosticTest, HasCodeAndWithCode) {
  DiagnosticReport report;
  report.AddError(DiagCode::kOpsetDanglingRef, "op#0", "a");
  report.AddError(DiagCode::kOpsetDanglingRef, "op#4", "b");
  EXPECT_TRUE(report.HasCode(DiagCode::kOpsetDanglingRef));
  EXPECT_FALSE(report.HasCode(DiagCode::kOpsetDepCycle));
  EXPECT_EQ(report.WithCode(DiagCode::kOpsetDanglingRef).size(), 2u);
  EXPECT_EQ(report.WithCode(DiagCode::kOpsetReapply).size(), 0u);
}

TEST(DiagnosticTest, ToStatusCarriesFirstError) {
  DiagnosticReport report;
  report.AddWarning(DiagCode::kPreserveCombineCoverage, "op#2", "first warning");
  report.AddError(DiagCode::kOpsetNoConvergence, "", "does not converge");
  Status s = report.ToStatus();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("OPSET_NO_CONVERGENCE"), std::string::npos);
  EXPECT_NE(s.message().find("does not converge"), std::string::npos);
}

TEST(DiagnosticTest, DiagnosticToStringFormat) {
  Diagnostic d{DiagSeverity::kError, DiagCode::kPreserveSplitLossy, "op#3", "not lossless"};
  EXPECT_EQ(d.ToString(), "error PRESERVE_SPLIT_LOSSY [op#3]: not lossless");
  Diagnostic no_loc{DiagSeverity::kNote, DiagCode::kWorkloadArity, "", "arity"};
  EXPECT_EQ(no_loc.ToString(), "note WORKLOAD_ARITY: arity");
}

TEST(DiagnosticTest, CodeNamesAreStable) {
  EXPECT_STREQ(DiagCodeName(DiagCode::kOpsetArity), "OPSET_ARITY");
  EXPECT_STREQ(DiagCodeName(DiagCode::kOpsetDepCycle), "OPSET_DEP_CYCLE");
  EXPECT_STREQ(DiagCodeName(DiagCode::kOpsetDanglingRef), "OPSET_DANGLING_REF");
  EXPECT_STREQ(DiagCodeName(DiagCode::kOpsetNotApplicable), "OPSET_NOT_APPLICABLE");
  EXPECT_STREQ(DiagCodeName(DiagCode::kOpsetReapply), "OPSET_REAPPLY");
  EXPECT_STREQ(DiagCodeName(DiagCode::kOpsetNoConvergence), "OPSET_NO_CONVERGENCE");
  EXPECT_STREQ(DiagCodeName(DiagCode::kSchemaInvalid), "SCHEMA_INVALID");
  EXPECT_STREQ(DiagCodeName(DiagCode::kPreserveAttrLost), "PRESERVE_ATTR_LOST");
  EXPECT_STREQ(DiagCodeName(DiagCode::kPreserveSplitLossy), "PRESERVE_SPLIT_LOSSY");
  EXPECT_STREQ(DiagCodeName(DiagCode::kPreserveCombineCoverage), "PRESERVE_COMBINE_COVERAGE");
  EXPECT_STREQ(DiagCodeName(DiagCode::kWorkloadArity), "WORKLOAD_ARITY");
  EXPECT_STREQ(DiagCodeName(DiagCode::kWorkloadUnanswerableSource),
               "WORKLOAD_UNANSWERABLE_SOURCE");
  EXPECT_STREQ(DiagCodeName(DiagCode::kWorkloadUnanswerableObject),
               "WORKLOAD_UNANSWERABLE_OBJECT");
  EXPECT_STREQ(DiagCodeName(DiagCode::kWorkloadUnanswerableIntermediate),
               "WORKLOAD_UNANSWERABLE_INTERMEDIATE");
}

TEST(DiagnosticTest, MergeAccumulates) {
  DiagnosticReport a, b;
  a.AddError(DiagCode::kOpsetArity, "", "x");
  b.AddWarning(DiagCode::kWorkloadArity, "phase 0", "y");
  b.AddNote(DiagCode::kWorkloadUnanswerableIntermediate, "q", "z");
  a.Merge(b);
  EXPECT_EQ(a.diagnostics().size(), 3u);
  EXPECT_EQ(a.errors(), 1u);
  EXPECT_EQ(a.warnings(), 1u);
  EXPECT_EQ(a.notes(), 1u);
}

}  // namespace
}  // namespace pse
