// Tests for the operator-interaction analyzer: footprints, interference
// clusters, relevance sets, the cost-irrelevance diagnostic, and — the
// load-bearing property — that cluster-wise LAA selects a subset with the
// same cost as brute force on randomized migrations and workloads (m <= 12).
#include "analysis/interaction.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/mapping.h"
#include "core/migration_planner.h"
#include "engine/expr.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

/// Book-only workload: O1 reads b_title/b_cost, N1 reads the new abstract.
/// Nothing touches the user table.
std::vector<WorkloadQuery> BookOnlyWorkload(const Bookstore& s) {
  std::vector<WorkloadQuery> queries;
  LogicalQuery o1;
  o1.name = "O1";
  o1.anchor = s.book;
  o1.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
  o1.select.emplace_back(Col("b_cost"), AggFunc::kNone, "c");
  queries.emplace_back(std::move(o1), /*is_old=*/true);
  LogicalQuery n1;
  n1.name = "N1";
  n1.anchor = s.book;
  n1.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "x");
  queries.emplace_back(std::move(n1), /*is_old=*/false);
  return queries;
}

class InteractionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    auto opset = ComputeOperatorSet(bs_->source, bs_->object);
    ASSERT_TRUE(opset.ok()) << opset.status().ToString();
    opset_ = std::move(*opset);
    applied_.assign(opset_.size(), false);
  }

  int OpOfKind(OperatorKind kind) const {
    for (size_t i = 0; i < opset_.size(); ++i) {
      if (opset_.ops[i].kind == kind) return static_cast<int>(i);
    }
    return -1;
  }

  std::unique_ptr<Bookstore> bs_;
  OperatorSet opset_;
  std::vector<bool> applied_;
};

TEST_F(InteractionTest, SchemaDeltaAttrsCapturesOneOperatorApplication) {
  int split = OpOfKind(OperatorKind::kSplitTable);
  ASSERT_GE(split, 0);
  PhysicalSchema after = bs_->source;
  ASSERT_TRUE(ApplyOperator(opset_.ops[static_cast<size_t>(split)], &after).ok());
  std::set<AttrId> delta = SchemaDeltaAttrs(bs_->source, after);
  // The user split rewrites the user table: all three user attrs move.
  EXPECT_EQ(delta, (std::set<AttrId>{bs_->u_name, bs_->u_bday, bs_->u_addr}));
  EXPECT_TRUE(SchemaDeltaAttrs(bs_->source, bs_->source).empty());
}

TEST_F(InteractionTest, QuerySupportIncludesFkChainToParentFragments) {
  LogicalQuery q;
  q.anchor = bs_->book;
  q.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
  std::set<AttrId> support = QuerySupportAttrs(q, bs_->logical);
  // The rewriter joins book -> author over b_a_id, so both the referenced
  // attribute and the chain FK are part of the query's support.
  EXPECT_TRUE(support.count(bs_->a_name));
  EXPECT_TRUE(support.count(bs_->b_a_id));
  EXPECT_FALSE(support.count(bs_->u_name));
}

TEST_F(InteractionTest, KeyOnlyQueryHasEmptySupport) {
  LogicalQuery q;
  q.anchor = bs_->book;
  q.select.emplace_back(Col("b_id"), AggFunc::kNone, "id");
  EXPECT_TRUE(QuerySupportAttrs(q, bs_->logical).empty());
}

TEST_F(InteractionTest, BookstoreSplitsIntoTwoClusters) {
  std::vector<WorkloadQuery> queries = BookOnlyWorkload(*bs_);
  auto analysis = AnalyzeInteractions(opset_, bs_->source, applied_, &queries);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  ASSERT_EQ(analysis->remaining.size(), 4u);
  ASSERT_EQ(analysis->clusters.size(), 2u);

  // The create + the two combines form one cluster (dependency chain +
  // overlapping book/author footprints); the user split stands alone.
  int create = OpOfKind(OperatorKind::kCreateTable);
  int split = OpOfKind(OperatorKind::kSplitTable);
  ASSERT_GE(create, 0);
  ASSERT_GE(split, 0);
  int book_cluster = analysis->cluster_of[static_cast<size_t>(create)];
  int user_cluster = analysis->cluster_of[static_cast<size_t>(split)];
  ASSERT_NE(book_cluster, user_cluster);
  EXPECT_EQ(analysis->clusters[static_cast<size_t>(book_cluster)].ops.size(), 3u);
  EXPECT_EQ(analysis->clusters[static_cast<size_t>(user_cluster)].ops.size(), 1u);

  // Closed-subset counts: the chained book cluster admits 4 closed subsets,
  // the singleton split 2 — an 8-schema brute-force space.
  EXPECT_EQ(analysis->clusters[static_cast<size_t>(book_cluster)].closed_subsets, 4u);
  EXPECT_EQ(analysis->clusters[static_cast<size_t>(user_cluster)].closed_subsets, 2u);
  EXPECT_DOUBLE_EQ(analysis->closed_subsets_total, 8.0);

  // Both workload queries couple to the book cluster; none to the split.
  EXPECT_EQ(analysis->clusters[static_cast<size_t>(book_cluster)].queries.size(), 2u);
  EXPECT_TRUE(analysis->clusters[static_cast<size_t>(user_cluster)].queries.empty());
  for (const std::vector<int>& ops : analysis->query_ops) {
    EXPECT_EQ(std::count(ops.begin(), ops.end(), split), 0);
  }
  EXPECT_TRUE(analysis->untouched_queries.empty());

  // The report mentions the plan-space shape.
  std::string report = analysis->ToString(opset_, bs_->logical, &queries);
  EXPECT_NE(report.find("2 interference cluster(s)"), std::string::npos) << report;
}

TEST_F(InteractionTest, SharedQueryMergesClusters) {
  // A query reading a book attribute AND a user attribute would make one
  // cost term span both clusters — they must merge. No bookstore query can
  // anchor across book and user, so use a key-only query instead: empty
  // support couples conservatively to everything.
  std::vector<WorkloadQuery> queries = BookOnlyWorkload(*bs_);
  LogicalQuery key_only;
  key_only.name = "K";
  key_only.anchor = bs_->user;
  key_only.select.emplace_back(Col("u_id"), AggFunc::kNone, "id");
  queries.emplace_back(std::move(key_only), /*is_old=*/true);
  auto analysis = AnalyzeInteractions(opset_, bs_->source, applied_, &queries);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->clusters.size(), 1u);
  EXPECT_EQ(analysis->clusters[0].ops.size(), 4u);
}

TEST_F(InteractionTest, AppliedOperatorsLeaveTheGraph) {
  int create = OpOfKind(OperatorKind::kCreateTable);
  ASSERT_GE(create, 0);
  PhysicalSchema current = bs_->source;
  ASSERT_TRUE(ApplyOperator(opset_.ops[static_cast<size_t>(create)], &current).ok());
  applied_[static_cast<size_t>(create)] = true;
  auto analysis = AnalyzeInteractions(opset_, current, applied_, nullptr);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_EQ(analysis->remaining.size(), 3u);
  EXPECT_EQ(analysis->cluster_of[static_cast<size_t>(create)], -1);
}

TEST_F(InteractionTest, CostIrrelevantOperatorGetsNote) {
  std::vector<WorkloadQuery> queries = BookOnlyWorkload(*bs_);
  auto analysis = AnalyzeInteractions(opset_, bs_->source, applied_, &queries);
  ASSERT_TRUE(analysis.ok());
  DiagnosticReport report;
  ReportCostIrrelevantOps(*analysis, opset_, bs_->logical, &report);
  ASSERT_TRUE(report.HasCode(DiagCode::kAnalysisCostIrrelevantOp));
  auto notes = report.WithCode(DiagCode::kAnalysisCostIrrelevantOp);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].severity, DiagSeverity::kNote);
  int split = OpOfKind(OperatorKind::kSplitTable);
  EXPECT_EQ(notes[0].location, "op#" + std::to_string(split));
  EXPECT_STREQ(DiagCodeName(DiagCode::kAnalysisCostIrrelevantOp),
               "ANALYSIS_COST_IRRELEVANT_OP");
  EXPECT_TRUE(report.ok());  // notes are not errors
}

TEST_F(InteractionTest, TouchedWorkloadSuppressesTheNote) {
  std::vector<WorkloadQuery> queries = BookOnlyWorkload(*bs_);
  LogicalQuery u;
  u.name = "U";
  u.anchor = bs_->user;
  u.select.emplace_back(Col("u_name"), AggFunc::kNone, "n");
  queries.emplace_back(std::move(u), /*is_old=*/true);
  auto analysis = AnalyzeInteractions(opset_, bs_->source, applied_, &queries);
  ASSERT_TRUE(analysis.ok());
  DiagnosticReport report;
  ReportCostIrrelevantOps(*analysis, opset_, bs_->logical, &report);
  EXPECT_FALSE(report.HasCode(DiagCode::kAnalysisCostIrrelevantOp));
}

TEST_F(InteractionTest, NoWorkloadMeansNoIrrelevanceVerdicts) {
  auto analysis = AnalyzeInteractions(opset_, bs_->source, applied_, nullptr);
  ASSERT_TRUE(analysis.ok());
  DiagnosticReport report;
  ReportCostIrrelevantOps(*analysis, opset_, bs_->logical, &report);
  EXPECT_TRUE(report.diagnostics().empty());
}

// -- The exactness property: pruned LAA == brute-force LAA, randomized. --
//
// Random migrations are generated exactly like the mapping property test
// (scramble the source with random valid split/combine ops, then recompute
// the operator set), random workloads select random reachable attribute
// subsets from random anchors. For every instance with m <= 12, cluster-wise
// LAA must (a) report a brute-force plan space equal to what the brute sweep
// actually enumerates and (b) choose a subset of identical cost.
class LaaPruningProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LaaPruningProperty, PrunedLaaMatchesBruteForce) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  auto data = s.MakeData(10, 30, 60);
  std::vector<LogicalStats> stats{data->ComputeStats()};
  Rng rng(GetParam());
  int instances = 0;
  for (int iter = 0; iter < 12 && instances < 8; ++iter) {
    // Scramble the source into a random reachable object schema.
    PhysicalSchema object = s.source;
    int next_id = 1000;
    for (int step = 0; step < 6; ++step) {
      double roll = rng.UniformDouble();
      MigrationOperator op;
      op.id = next_id++;
      if (roll < 0.4) {
        std::vector<std::pair<size_t, std::vector<AttrId>>> candidates;
        for (size_t t = 0; t < object.tables().size(); ++t) {
          std::vector<AttrId> nonkey;
          for (AttrId a : object.tables()[t].attrs) {
            if (!s.logical.attr(a).is_key) nonkey.push_back(a);
          }
          if (nonkey.size() >= 2) candidates.emplace_back(t, nonkey);
        }
        if (candidates.empty()) continue;
        auto& [t, nonkey] = candidates[rng.Index(candidates.size())];
        size_t count = 1 + rng.Index(nonkey.size() - 1);
        rng.Shuffle(&nonkey);
        op.kind = OperatorKind::kSplitTable;
        op.split_moved.assign(nonkey.begin(), nonkey.begin() + static_cast<long>(count));
        op.split_moved_anchor = s.logical.attr(op.split_moved[0]).entity;
      } else {
        if (object.tables().size() < 2) continue;
        size_t a = rng.Index(object.tables().size());
        size_t b = rng.Index(object.tables().size());
        if (a == b) continue;
        std::vector<AttrId> a_nonkey, b_nonkey;
        for (AttrId x : object.tables()[a].attrs) {
          if (!s.logical.attr(x).is_key) a_nonkey.push_back(x);
        }
        for (AttrId x : object.tables()[b].attrs) {
          if (!s.logical.attr(x).is_key) b_nonkey.push_back(x);
        }
        if (a_nonkey.empty() || b_nonkey.empty()) continue;
        op.kind = OperatorKind::kCombineTable;
        op.combine_left_rep = a_nonkey[0];
        op.combine_right_rep = b_nonkey[0];
      }
      (void)ApplyOperator(op, &object);
    }
    auto opset = ComputeOperatorSet(s.source, object);
    ASSERT_TRUE(opset.ok()) << opset.status().ToString();
    if (opset->size() == 0 || opset->size() > 12) continue;

    // Random workload: queries over random reachable non-key attributes
    // (b_abstract excluded — the scrambles never store it).
    std::vector<WorkloadQuery> queries;
    size_t num_queries = 3 + rng.Index(4);
    for (size_t qi = 0; qi < num_queries; ++qi) {
      EntityId anchor = rng.Index(s.logical.num_entities());
      std::vector<AttrId> reachable;
      for (AttrId a = 0; a < s.logical.num_attributes(); ++a) {
        const LogicalAttribute& attr = s.logical.attr(a);
        if (attr.is_key || attr.is_new) continue;
        if (s.logical.Reaches(anchor, attr.entity)) reachable.push_back(a);
      }
      if (reachable.empty()) continue;
      rng.Shuffle(&reachable);
      size_t picks = 1 + rng.Index(std::min<size_t>(3, reachable.size()));
      LogicalQuery q;
      q.name = "q" + std::to_string(qi);
      q.anchor = anchor;
      for (size_t k = 0; k < picks; ++k) {
        const std::string& name = s.logical.attr(reachable[k]).name;
        q.select.emplace_back(Col(name), AggFunc::kNone, name);
      }
      queries.emplace_back(std::move(q), /*is_old=*/true);
    }
    if (queries.empty()) continue;
    std::vector<std::vector<double>> freqs(1, std::vector<double>(queries.size()));
    for (double& f : freqs[0]) f = 1.0 + static_cast<double>(rng.Index(40));

    MigrationContext ctx;
    ctx.current = &s.source;
    ctx.object = &object;
    ctx.opset = &*opset;
    ctx.applied.assign(opset->size(), false);
    ctx.phase_freqs = &freqs;
    ctx.phase_stats = &stats;
    ctx.queries = &queries;

    auto pruned = SelectOpsLaa(ctx, 0, 0);
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    AnalysisOptions brute_options;
    brute_options.prune_laa = false;
    auto brute = SelectOpsLaa(ctx, 0, 0, /*max_ops=*/12, brute_options);
    ASSERT_TRUE(brute.ok()) << brute.status().ToString();
    ++instances;

    // (a) The factorized plan-space count matches what brute force actually
    // enumerated (closed subsets factorize across clusters exactly).
    EXPECT_EQ(static_cast<size_t>(pruned->schemas_exhaustive), brute->schemas_evaluated);
    // The pruned run spends 1 + sum(per-cluster counts) estimations (the +1
    // prices the untouched residual); brute spends the product. The sum only
    // beats the product once clusters multiply, so allow the +1 here — the
    // bench covers the asymptotic win.
    EXPECT_LE(pruned->schemas_evaluated, brute->schemas_evaluated + 1);

    // (b) Same chosen-subset cost, modulo float summation order.
    double tol = 1e-6 * std::max(1.0, std::fabs(brute->best_cost));
    EXPECT_NEAR(pruned->best_cost, brute->best_cost, tol)
        << "m=" << opset->size() << " pruned={" << pruned->ops_to_apply.size()
        << " ops} brute={" << brute->ops_to_apply.size() << " ops}";

    // (c) And the subsets really are interchangeable: costing the pruned
    // winner with the full workload gives the brute winner's cost.
    PhysicalSchema chosen = s.source;
    for (int op : pruned->ops_to_apply) {
      ASSERT_TRUE(ApplyOperator(opset->ops[static_cast<size_t>(op)], &chosen).ok());
    }
    CostOptions cost_options;
    cost_options.fallback_schema = &object;
    auto full_cost = EstimateWorkloadCost(chosen, stats[0], queries, freqs[0], cost_options);
    ASSERT_TRUE(full_cost.ok());
    EXPECT_NEAR(*full_cost, brute->best_cost, tol);
  }
  EXPECT_GT(instances, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaaPruningProperty, ::testing::Values(7, 77, 777, 7777));

}  // namespace
}  // namespace pse
