// AnalyzeResumability: batch-schedule prediction and the RESUME_* lints for
// online migration configurations.
#include <gtest/gtest.h>

#include "analysis/resumability.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

class ResumabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    data_ = bs_->MakeData(5, 8, 60);  // 5 authors, 40 books, 60 users
    stats_ = data_->ComputeStats();
    auto opset = ComputeOperatorSet(bs_->source, bs_->object);
    ASSERT_TRUE(opset.ok()) << opset.status().ToString();
    opset_ = std::move(*opset);
  }

  ResumabilityInput Input() {
    ResumabilityInput in;
    in.source = &bs_->source;
    in.opset = &opset_;
    in.stats = &stats_;
    return in;
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<LogicalDatabase> data_;
  LogicalStats stats_;
  OperatorSet opset_;
};

TEST_F(ResumabilityTest, MissingInputsAreAnError) {
  ResumabilityInput in;
  DiagnosticReport report = AnalyzeResumability(in);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kResumeInvalidBatch));
}

TEST_F(ResumabilityTest, ZeroBatchRowsIsAnError) {
  ResumabilityInput in = Input();
  in.options.batch_rows = 0;
  DiagnosticReport report = AnalyzeResumability(in);
  EXPECT_FALSE(report.ok());
  auto diags = report.WithCode(DiagCode::kResumeInvalidBatch);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, DiagSeverity::kError);
}

TEST_F(ResumabilityTest, NondurableConfigurationsWarn) {
  ResumabilityInput in = Input();
  in.persistent = false;
  EXPECT_TRUE(AnalyzeResumability(in).HasCode(DiagCode::kResumeNondurable));

  in = Input();
  in.options.durability = MigrationOptions::Durability::kFinalOnly;
  EXPECT_TRUE(AnalyzeResumability(in).HasCode(DiagCode::kResumeNondurable));

  // A persistent database with per-batch durability is clean.
  in = Input();
  DiagnosticReport report = AnalyzeResumability(in);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.HasCode(DiagCode::kResumeNondurable));
}

TEST_F(ResumabilityTest, EstimatesOneSchedulePerRemainingOp) {
  ResumabilityInput in = Input();
  in.options.batch_rows = 16;
  std::vector<OpBatchEstimate> estimates;
  DiagnosticReport report = AnalyzeResumability(in, {}, &estimates);
  EXPECT_TRUE(report.ok()) << report.ToString();
  ASSERT_EQ(estimates.size(), opset_.size());
  for (const auto& est : estimates) {
    EXPECT_GT(est.batches, 0u);
    EXPECT_EQ(est.batches, est.rows_moved == 0
                               ? 1u
                               : (est.rows_moved + 15) / 16)
        << "op#" << est.op_id;
  }
  // One batch-plan note per estimated operator.
  EXPECT_EQ(report.WithCode(DiagCode::kResumeBatchPlan).size(), estimates.size());
}

TEST_F(ResumabilityTest, AppliedOpsAreSkipped) {
  ResumabilityInput in = Input();
  std::vector<bool> applied(opset_.size(), false);
  applied[0] = true;
  in.applied = &applied;
  std::vector<OpBatchEstimate> estimates;
  AnalyzeResumability(in, {}, &estimates);
  EXPECT_EQ(estimates.size(), opset_.size() - 1);
  for (const auto& est : estimates) EXPECT_NE(est.op_id, opset_.ops[0].id);
}

TEST_F(ResumabilityTest, LongOperatorsWarn) {
  ResumabilityInput in = Input();
  in.options.batch_rows = 1;  // every row its own batch
  ResumabilityOptions opts;
  opts.long_op_batches = 10;  // 40 books / 60 users blow through this
  DiagnosticReport report = AnalyzeResumability(in, opts);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kResumeLongOp));
  // Long ops get the warning instead of the note, never both.
  for (const auto& d : report.WithCode(DiagCode::kResumeLongOp)) {
    EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  }
}

TEST_F(ResumabilityTest, SplitToForeignAnchorCountsDistinctKeys) {
  // Splitting the denormalized glossary's author attrs back out would move
  // one row per *author*, not per book. Build that direction explicitly:
  // object -> source style split is not in the bookstore opset, so check the
  // user split (same anchor): rest and moved sides both count user rows.
  ResumabilityInput in = Input();
  in.options.batch_rows = 1000;  // single batch per op: rows == batches' rows
  std::vector<OpBatchEstimate> estimates;
  AnalyzeResumability(in, {}, &estimates);
  bool found_split = false;
  for (size_t i = 0; i < opset_.size(); ++i) {
    if (opset_.ops[i].kind != OperatorKind::kSplitTable) continue;
    for (const auto& est : estimates) {
      if (est.op_id != opset_.ops[i].id) continue;
      found_split = true;
      // user table: 60 rows kept + 60 rows moved (same anchor, no dedup).
      EXPECT_EQ(est.rows_moved, 120u);
    }
  }
  EXPECT_TRUE(found_split);
}

}  // namespace
}  // namespace pse
