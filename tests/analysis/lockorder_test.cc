// Lock-order analysis: seeded-violation fixtures (mirroring the
// seeded-invalid style of the rest of tests/analysis/), offline analysis of
// hand-built acquisition graphs, and — in PROGSCHEMA_LOCKDEP builds — live
// instrumentation checks, including the regression pinning the
// MigrationExecutor copy-batch fix.
//
// The seeded fixtures drive LockRegistry directly (the API is always
// compiled), so they run and detect in every build; only the tests that
// need the latch *hooks* skip without PSE_LOCKDEP.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/lockorder.h"
#include "common/lock_registry.h"
#include "common/rw_latch.h"
#include "core/migration_executor.h"
#include "storage/database.h"
#include "tests/common/test_db_builder.h"

namespace pse {
namespace {

using testutil::Bookstore;
using testutil::TableRows;

#ifdef PSE_LOCKDEP
constexpr bool kLockdepEnabled = true;
#else
constexpr bool kLockdepEnabled = false;
#endif

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// --- seeded violations (any build) ------------------------------------------

TEST(LockOrderSeeded, InvertedTwoTableAcquisitionReportsInversionAndCycle) {
  LockRegistry& reg = LockRegistry::Instance();
  reg.ClearEvents();
  uint32_t src = reg.RegisterClass("zz_src", kLockRankTable, /*allows_io=*/true);
  uint32_t dst = reg.RegisterClass("aa_dst", kLockRankTable, /*allows_io=*/true);

  // Canonical direction: aa_dst before zz_src (same rank, name order).
  reg.PushSite("fixture:forward");
  reg.OnAcquire(dst, LockMode::kShared);
  reg.OnAcquire(src, LockMode::kShared);
  reg.OnRelease(src);
  reg.OnRelease(dst);
  reg.PopSite();

  // Deliberately inverted: zz_src held while aa_dst is acquired. Together
  // the two orders close a cycle in the acquisition graph.
  reg.PushSite("fixture:reversed");
  reg.OnAcquire(src, LockMode::kShared);
  reg.OnAcquire(dst, LockMode::kExclusive);
  reg.OnRelease(dst);
  reg.OnRelease(src);
  reg.PopSite();

  DiagnosticReport report = AnalyzeLockOrder(reg.Snapshot());
  EXPECT_FALSE(report.ok());

  auto inversions = report.WithCode(DiagCode::kLockOrderInversion);
  ASSERT_EQ(inversions.size(), 1u) << report.ToString();
  EXPECT_EQ(inversions[0].location, "lock 'aa_dst'");
  EXPECT_TRUE(Contains(inversions[0].message, "fixture:reversed"));
  EXPECT_TRUE(Contains(inversions[0].message, "'zz_src'"));

  auto cycles = report.WithCode(DiagCode::kLockCycle);
  ASSERT_EQ(cycles.size(), 1u) << report.ToString();
  EXPECT_EQ(cycles[0].location, "cycle [aa_dst, zz_src]");
  EXPECT_TRUE(Contains(cycles[0].message, "aa_dst -> zz_src"));
  EXPECT_TRUE(Contains(cycles[0].message, "zz_src -> aa_dst"));
  reg.ClearEvents();
}

TEST(LockOrderSeeded, SharedToExclusiveUpgradeReported) {
  LockRegistry& reg = LockRegistry::Instance();
  reg.ClearEvents();
  uint32_t u = reg.RegisterClass("upgrade_latch", kLockRankTable, /*allows_io=*/true);

  reg.PushSite("fixture:reader");
  reg.OnAcquire(u, LockMode::kShared);
  reg.PopSite();
  reg.PushSite("fixture:upgrader");
  reg.OnAcquire(u, LockMode::kExclusive);  // the upgrade
  reg.OnRelease(u);
  reg.OnRelease(u);
  reg.PopSite();

  DiagnosticReport report = AnalyzeLockOrder(reg.Snapshot());
  auto upgrades = report.WithCode(DiagCode::kLockUpgrade);
  ASSERT_EQ(upgrades.size(), 1u) << report.ToString();
  EXPECT_EQ(upgrades[0].location, "lock 'upgrade_latch'");
  EXPECT_TRUE(Contains(upgrades[0].message, "fixture:reader"));
  EXPECT_TRUE(Contains(upgrades[0].message, "fixture:upgrader"));
  // An upgrade is not an ordering edge; no cycle should appear.
  EXPECT_TRUE(report.WithCode(DiagCode::kLockCycle).empty());
  reg.ClearEvents();
}

TEST(LockOrderSeeded, RecursiveSharedAcquisitionReported) {
  LockRegistry& reg = LockRegistry::Instance();
  reg.ClearEvents();
  uint32_t r = reg.RegisterClass("recursive_latch", kLockRankTable, /*allows_io=*/true);

  reg.PushSite("fixture:outer");
  reg.OnAcquire(r, LockMode::kShared);
  reg.PopSite();
  reg.PushSite("fixture:inner");
  // Shared->shared self-nesting: deadlocks behind a waiting writer on the
  // writer-preferring SharedMutex (rw_latch.h header comment).
  reg.OnAcquire(r, LockMode::kShared);
  reg.OnRelease(r);
  reg.OnRelease(r);
  reg.PopSite();

  DiagnosticReport report = AnalyzeLockOrder(reg.Snapshot());
  auto recursive = report.WithCode(DiagCode::kLockRecursive);
  ASSERT_EQ(recursive.size(), 1u) << report.ToString();
  EXPECT_EQ(recursive[0].location, "lock 'recursive_latch'");
  EXPECT_TRUE(Contains(recursive[0].message, "fixture:outer"));
  EXPECT_TRUE(Contains(recursive[0].message, "fixture:inner"));
  reg.ClearEvents();
}

TEST(LockOrderSeeded, IoUnderNoIoLatchReported) {
  LockRegistry& reg = LockRegistry::Instance();
  reg.ClearEvents();
  uint32_t n = reg.RegisterClass("noio_latch", kLockRankServing, /*allows_io=*/false);
  uint32_t ok = reg.RegisterClass("io_ok_latch", kLockRankBufferPool, /*allows_io=*/true);

  reg.PushSite("fixture:holder");
  reg.OnAcquire(n, LockMode::kExclusive);
  reg.OnAcquire(ok, LockMode::kExclusive);
  reg.PopSite();
  reg.PushSite("fixture:io");
  reg.OnIo();
  reg.OnRelease(ok);
  reg.OnRelease(n);
  reg.PopSite();

  DiagnosticReport report = AnalyzeLockOrder(reg.Snapshot());
  auto io = report.WithCode(DiagCode::kLockHeldAcrossIo);
  // Only the no-I/O class fires; io_ok_latch is allowed to cover I/O.
  ASSERT_EQ(io.size(), 1u) << report.ToString();
  EXPECT_EQ(io[0].location, "lock 'noio_latch'");
  EXPECT_TRUE(Contains(io[0].message, "fixture:holder"));
  EXPECT_TRUE(Contains(io[0].message, "fixture:io"));
  reg.ClearEvents();
}

TEST(LockOrderSeeded, TryAcquireRecordsNoEdgesOrViolations) {
  LockRegistry& reg = LockRegistry::Instance();
  reg.ClearEvents();
  uint32_t hi = reg.RegisterClass("try_hi", kLockRankBufferPool, /*allows_io=*/true);
  uint32_t lo = reg.RegisterClass("try_lo", kLockRankCatalog, /*allows_io=*/true);

  reg.OnAcquire(hi, LockMode::kExclusive);
  // Out-of-rank, but a successful trylock cannot close a wait cycle.
  reg.OnAcquire(lo, LockMode::kExclusive, /*try_acquire=*/true);
  reg.OnRelease(lo);
  reg.OnRelease(hi);

  LockOrderGraph g = reg.Snapshot();
  EXPECT_TRUE(g.violations.empty());
  EXPECT_TRUE(g.edges.empty());
  EXPECT_TRUE(AnalyzeLockOrder(g).ok());
  reg.ClearEvents();
}

// --- offline analysis of hand-built graphs ----------------------------------

TEST(LockOrderOffline, HandBuiltThreeLockCycleDetected) {
  LockOrderGraph g;
  g.classes = {
      {"alpha", 10, true},
      {"beta", 20, true},
      {"gamma", 30, true},
  };
  auto edge = [&](size_t from, size_t to, const char* fs, const char* ts) {
    LockEdge e;
    e.from = from;
    e.to = to;
    e.from_site = fs;
    e.to_site = ts;
    e.count = 1;
    g.edges.push_back(e);
  };
  edge(0, 1, "siteA", "siteB");  // alpha -> beta: ascending, fine
  edge(1, 2, "siteB", "siteC");  // beta -> gamma: ascending, fine
  edge(2, 0, "siteC", "siteA");  // gamma -> alpha: inverted, closes the cycle

  DiagnosticReport report = AnalyzeLockOrder(g);
  EXPECT_FALSE(report.ok());

  // No runtime violations were recorded, so the inversion must be derived
  // from the edge itself.
  auto inversions = report.WithCode(DiagCode::kLockOrderInversion);
  ASSERT_EQ(inversions.size(), 1u) << report.ToString();
  EXPECT_EQ(inversions[0].location, "lock 'alpha'");
  EXPECT_TRUE(Contains(inversions[0].message, "siteC"));

  auto cycles = report.WithCode(DiagCode::kLockCycle);
  ASSERT_EQ(cycles.size(), 1u) << report.ToString();
  EXPECT_EQ(cycles[0].location, "cycle [alpha, beta, gamma]");
  EXPECT_TRUE(Contains(cycles[0].message, "alpha -> beta"));
  EXPECT_TRUE(Contains(cycles[0].message, "beta -> gamma"));
  EXPECT_TRUE(Contains(cycles[0].message, "gamma -> alpha"));
}

TEST(LockOrderOffline, CanonicalGraphIsCleanAndRendersToDot) {
  LockOrderGraph g = CanonicalLockGraph();
  DiagnosticReport report = AnalyzeLockOrder(g);
  EXPECT_TRUE(report.ok()) << report.ToString();

  std::string dot = LockGraphToDot(g);
  EXPECT_TRUE(Contains(dot, "digraph lockorder"));
  EXPECT_TRUE(Contains(dot, "\"catalog\""));
  EXPECT_TRUE(Contains(dot, "\"bufferpool\""));
  EXPECT_TRUE(Contains(dot, "no-io"));  // servingschema renders its flag
  EXPECT_FALSE(Contains(dot, "color=red"));
}

TEST(LockOrderOffline, DotHighlightsInvertedEdges) {
  LockOrderGraph g;
  g.classes = {{"low", 10, true}, {"high", 40, true}};
  // high -> low: inverted
  g.edges.push_back(LockEdge{/*from=*/1, /*to=*/0, "s1", "s2", /*count=*/3});
  std::string dot = LockGraphToDot(g);
  EXPECT_TRUE(Contains(dot, "color=red"));
  EXPECT_TRUE(Contains(dot, "label=\"3\""));
}

// --- live instrumentation (PROGSCHEMA_LOCKDEP builds) ------------------------

TEST(LockOrderLive, SharedMutexHooksFlagRecursiveSharedAcquisition) {
  if (!kLockdepEnabled) GTEST_SKIP() << "built without PROGSCHEMA_LOCKDEP";
  LockRegistry& reg = LockRegistry::Instance();
  reg.ClearEvents();
  SharedMutex m;
  m.LockdepRegister("live_recursive_latch", kLockRankTable, /*allows_io=*/true);
  m.lock_shared();
  // With no writer waiting this succeeds, but lockdep must flag it: behind
  // a waiting writer the same nesting deadlocks.
  m.lock_shared();
  m.unlock_shared();
  m.unlock_shared();

  DiagnosticReport report = AnalyzeLockOrder(reg.Snapshot());
  auto recursive = report.WithCode(DiagCode::kLockRecursive);
  ASSERT_EQ(recursive.size(), 1u) << report.ToString();
  EXPECT_EQ(recursive[0].location, "lock 'live_recursive_latch'");
  reg.ClearEvents();
}

// Regression for the MigrationExecutor copy-batch fix: the split targets
// ("m7a_user"/"m7b_user") sort *before* the source ("user"), so the old code
// — destination inserts under the source's shared batch latch — acquired
// table latches against the sorted-name order. The fix stages each batch and
// inserts after the source latch drops; the acquisition graph must therefore
// contain no table->table edge at all from the copy path.
TEST(LockOrderLive, CopyBatchHoldsOneTableLatchAtATime) {
  if (!kLockdepEnabled) GTEST_SKIP() << "built without PROGSCHEMA_LOCKDEP";
  LockRegistry& reg = LockRegistry::Instance();
  reg.ClearEvents();

  auto bs = Bookstore::Make();
  auto data = bs->MakeData(5, 8, 60);
  Database db(512);
  ASSERT_TRUE(data->Materialize(&db, bs->source).ok());
  PhysicalSchema schema = bs->source;

  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 7;
  op.split_moved = {bs->u_addr};
  op.split_moved_anchor = bs->user;

  MigrationExecutor exec(&db, data.get());
  MigrationOptions opts;
  opts.batch_rows = 16;  // several batches over 60 user rows
  exec.set_options(std::move(opts));
  auto io = exec.Apply(op, &schema);
  ASSERT_TRUE(io.ok()) << io.status().ToString();
  EXPECT_EQ(TableRows(&db, "m7a_user").size(), 60u);

  LockOrderGraph g = reg.Snapshot();
  EXPECT_GT(g.acquisitions, 0u);
  for (const LockViolation& v : g.violations) {
    ADD_FAILURE() << "unexpected violation: " << v.ToString();
  }
  for (const LockEdge& e : g.edges) {
    bool table_to_table = g.classes[e.from].rank == kLockRankTable &&
                          g.classes[e.to].rank == kLockRankTable;
    EXPECT_FALSE(table_to_table) << "copy path nested table latches: "
                                 << g.classes[e.from].name << " (" << e.from_site << ") -> "
                                 << g.classes[e.to].name << " (" << e.to_site << ")";
  }
  DiagnosticReport report = AnalyzeLockOrder(g);
  EXPECT_TRUE(report.ok()) << report.ToString();
  reg.ClearEvents();
}

TEST(LockOrderLive, MigrationRecordsCanonicalEdgesOnly) {
  if (!kLockdepEnabled) GTEST_SKIP() << "built without PROGSCHEMA_LOCKDEP";
  LockRegistry& reg = LockRegistry::Instance();
  reg.ClearEvents();

  auto bs = Bookstore::Make();
  auto data = bs->MakeData(4, 6, 40);
  Database db(512);
  ASSERT_TRUE(data->Materialize(&db, bs->source).ok());
  PhysicalSchema schema = bs->source;
  MigrationExecutor exec(&db, data.get());
  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 7;
  op.split_moved = {bs->u_addr};
  op.split_moved_anchor = bs->user;
  ASSERT_TRUE(exec.Apply(op, &schema).ok());

  LockOrderGraph g = reg.Snapshot();
  // Every observed edge must descend the hierarchy: (rank, name) strictly
  // ascending from source to target.
  for (const LockEdge& e : g.edges) {
    const LockClassDesc& from = g.classes[e.from];
    const LockClassDesc& to = g.classes[e.to];
    EXPECT_TRUE(std::tie(from.rank, from.name) < std::tie(to.rank, to.name))
        << from.name << " -> " << to.name;
  }
  DiagnosticReport report = AnalyzeLockOrder(g);
  EXPECT_TRUE(report.ok());
  // A violation-free instrumented run earns the LOCK_GRAPH_CLEAN note (and
  // only that — the success note must not reuse a violation code, or tooling
  // that greps for LOCK_CYCLE would flag clean runs).
  EXPECT_EQ(report.WithCode(DiagCode::kLockGraphClean).size(), 1u);
  EXPECT_TRUE(report.WithCode(DiagCode::kLockCycle).empty());
  reg.ClearEvents();
}

}  // namespace
}  // namespace pse
