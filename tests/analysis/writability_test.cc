// Write-safety information-flow analyzer: operator lens classification,
// per-version writability matrices with provenance, the WRITE_* diagnostic
// family (one seeded fixture per code), and the agreement property between
// the matrix's SELECT column and Rewriter servability over randomized
// trajectories.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/writability.h"
#include "common/rng.h"
#include "core/rewriter.h"
#include "engine/expr.h"
#include "tests/core/core_test_util.h"
#include "tpcw/schema.h"

namespace pse {
namespace {

using coretest::Bookstore;

/// Indices of operators of `kind` in the set.
std::vector<size_t> OpsOfKind(const OperatorSet& opset, OperatorKind kind) {
  std::vector<size_t> out;
  for (size_t i = 0; i < opset.size(); ++i) {
    if (opset.ops[i].kind == kind) out.push_back(i);
  }
  return out;
}

class WritabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    auto opset = ComputeOperatorSet(bs_->source, bs_->object);
    ASSERT_TRUE(opset.ok()) << opset.status().ToString();
    opset_ = std::move(*opset);
  }

  WritabilityInput Input() {
    WritabilityInput in;
    in.old_schema = &bs_->source;
    in.new_schema = &bs_->object;
    in.opset = &opset_;
    return in;
  }

  std::unique_ptr<Bookstore> bs_;
  OperatorSet opset_;
};

TEST_F(WritabilityTest, LensClassification) {
  auto analysis = AnalyzeWritability(Input());
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  ASSERT_EQ(analysis->lenses.size(), opset_.size());

  // CreateTable: forward invertible (nothing pre-existing moves), backward
  // lossy (the new attributes have no pre-create storage).
  for (size_t i : OpsOfKind(opset_, OperatorKind::kCreateTable)) {
    EXPECT_EQ(analysis->lenses[i].forward, LensClass::kInvertible);
    EXPECT_EQ(analysis->lenses[i].backward, LensClass::kLossy);
  }
  // The user split keeps the host anchor on both sides: a vertical
  // partition, invertible both ways.
  for (size_t i : OpsOfKind(opset_, OperatorKind::kSplitTable)) {
    EXPECT_EQ(analysis->lenses[i].forward, LensClass::kInvertible);
    EXPECT_EQ(analysis->lenses[i].backward, LensClass::kInvertible);
  }
  // The glossary chain has one same-entity combine (invertible) and one
  // cross-entity combine (join duplicates rows: provenance both ways).
  std::vector<LensClass> combine_forward;
  for (size_t i : OpsOfKind(opset_, OperatorKind::kCombineTable)) {
    combine_forward.push_back(analysis->lenses[i].forward);
    EXPECT_EQ(analysis->lenses[i].forward, analysis->lenses[i].backward);
  }
  EXPECT_NE(std::count(combine_forward.begin(), combine_forward.end(),
                       LensClass::kRecoverableWithProvenance),
            0);
  EXPECT_NE(std::count(combine_forward.begin(), combine_forward.end(),
                       LensClass::kInvertible),
            0);
}

TEST_F(WritabilityTest, MatrixCoversEveryCellWithProvenance) {
  auto analysis = AnalyzeWritability(Input());
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  ASSERT_EQ(analysis->steps.size(), analysis->trajectory.size() + 1);
  ASSERT_EQ(analysis->trajectory.size(), opset_.size());  // default: one op per step

  for (const StepWritability& step : analysis->steps) {
    ASSERT_EQ(step.old_version.cells.size(), analysis->old_tables.size());
    ASSERT_EQ(step.new_version.cells.size(), analysis->new_tables.size());
    for (const auto& row : step.old_version.cells) {
      for (const WritabilityCell& cell : row) {
        if (cell.level != Writability::kSafe) {
          EXPECT_GE(cell.provenance_op, 0);
          EXPECT_FALSE(cell.detail.empty());
        }
      }
    }
  }
}

TEST_F(WritabilityTest, CombineStepDowngradesOldTablesToNeedsPropagation) {
  auto analysis = AnalyzeWritability(Input());
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();

  // After the cross-entity combine executes, old-version writes to book and
  // author must fan into the shared glossary row — kNeedsPropagation with the
  // combine as provenance.
  bool found = false;
  for (const StepWritability& step : analysis->steps) {
    for (size_t t = 0; t < analysis->old_tables.size(); ++t) {
      const WritabilityCell& cell =
          step.old_version.cells[t][static_cast<size_t>(DmlKind::kInsert)];
      if (cell.level == Writability::kNeedsPropagation && cell.provenance_op >= 0 &&
          opset_.ops[static_cast<size_t>(cell.provenance_op)].kind ==
              OperatorKind::kCombineTable) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(WritabilityTest, DeleteIsNeverUnservable) {
  auto analysis = AnalyzeWritability(Input());
  ASSERT_TRUE(analysis.ok());
  for (const StepWritability& step : analysis->steps) {
    for (const auto* matrix : {&step.old_version, &step.new_version}) {
      for (const auto& row : matrix->cells) {
        EXPECT_NE(row[static_cast<size_t>(DmlKind::kDelete)].level,
                  Writability::kUnservable);
      }
    }
  }
}

// -- seeded fixtures, one per WRITE_* code --

TEST_F(WritabilityTest, SeededLossyCombineWarns) {
  DiagnosticReport report;
  ASSERT_TRUE(AnalyzeWritability(Input(), &report).ok());
  auto diags = report.WithCode(DiagCode::kWriteLossyCombine);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].severity, DiagSeverity::kWarning);
  EXPECT_TRUE(report.ok());  // WRITE_* never carries errors
}

TEST_F(WritabilityTest, SeededUnservableWindowWarnsOnlyWhenLive) {
  // The new version's glossary needs b_abstract, which no schema stores
  // until the CreateTable publishes: a write-unservable window at step 0.
  DiagnosticReport live;
  auto analysis = AnalyzeWritability(Input(), &live);
  ASSERT_TRUE(analysis.ok());
  EXPECT_GT(analysis->unservable_cells, 0u);
  auto diags = live.WithCode(DiagCode::kWriteUnservableWindow);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].severity, DiagSeverity::kWarning);

  // Declare the new version not live: the window no longer matters.
  WritabilityInput dormant = Input();
  dormant.new_live = false;
  DiagnosticReport quiet;
  auto dormant_analysis = AnalyzeWritability(dormant, &quiet);
  ASSERT_TRUE(dormant_analysis.ok());
  EXPECT_EQ(dormant_analysis->unservable_cells, 0u);
  EXPECT_FALSE(quiet.HasCode(DiagCode::kWriteUnservableWindow));
}

TEST_F(WritabilityTest, SeededProvenanceRequiredNotes) {
  DiagnosticReport report;
  ASSERT_TRUE(AnalyzeWritability(Input(), &report).ok());
  auto diags = report.WithCode(DiagCode::kWriteProvenanceRequired);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].severity, DiagSeverity::kNote);
}

TEST(WritabilitySplit, SeededCrossAnchorSplitIsRoutingAmbiguous) {
  // Denormalized source: one book-anchored table carrying the author's
  // attributes. Splitting them back out to the author anchor de-duplicates
  // rows — old-version INSERTs into the wide table cannot route without
  // provenance.
  auto bs = Bookstore::Make();
  PhysicalSchema source(&bs->logical);
  ASSERT_TRUE(source
                  .AddTable("book_all", bs->book,
                            {bs->b_title, bs->b_cost, bs->b_a_id, bs->a_name, bs->a_bio})
                  .ok());
  ASSERT_TRUE(source.AddTable("user", bs->user, {bs->u_name, bs->u_bday, bs->u_addr}).ok());
  PhysicalSchema object(&bs->logical);
  ASSERT_TRUE(
      object.AddTable("book", bs->book, {bs->b_title, bs->b_cost, bs->b_a_id}).ok());
  ASSERT_TRUE(object.AddTable("author", bs->author, {bs->a_name, bs->a_bio}).ok());
  ASSERT_TRUE(object.AddTable("user", bs->user, {bs->u_name, bs->u_bday, bs->u_addr}).ok());
  auto opset = ComputeOperatorSet(source, object);
  ASSERT_TRUE(opset.ok()) << opset.status().ToString();

  WritabilityInput input;
  input.old_schema = &source;
  input.new_schema = &object;
  input.opset = &*opset;
  DiagnosticReport report;
  auto analysis = AnalyzeWritability(input, &report);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  auto diags = report.WithCode(DiagCode::kWriteSplitRoutingAmbiguous);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].severity, DiagSeverity::kWarning);
  bool has_recoverable_split = false;
  for (size_t i : OpsOfKind(*opset, OperatorKind::kSplitTable)) {
    if (analysis->lenses[i].forward == LensClass::kRecoverableWithProvenance) {
      has_recoverable_split = true;
    }
  }
  EXPECT_TRUE(has_recoverable_split);
}

// -- classifier corner cases (direct ClassifyVersionTable calls) --

TEST_F(WritabilityTest, KeyOnlyFragmentIsAlwaysSafe) {
  VersionTable table;
  table.name = "pivot";
  table.anchor = bs_->book;
  auto cells = ClassifyVersionTable(table, bs_->source);
  for (const WritabilityCell& cell : cells) {
    EXPECT_EQ(cell.level, Writability::kSafe);
    EXPECT_EQ(cell.detail, "key-only fragment");
  }
}

TEST_F(WritabilityTest, AllAttributesMissingLeavesDeleteSafe) {
  // Nothing stored anywhere: reads and inserts are unservable (and the
  // detail counts the extra missing attributes), but a delete-by-key has
  // nothing to remove, so it stays safe.
  PhysicalSchema empty(&bs_->logical);
  VersionTable table;
  table.name = "glossary";
  table.anchor = bs_->book;
  table.attrs = {bs_->b_abstract, bs_->b_title};
  auto cells = ClassifyVersionTable(table, empty);
  const WritabilityCell& sel = cells[static_cast<size_t>(DmlKind::kSelect)];
  EXPECT_EQ(sel.level, Writability::kUnservable);
  EXPECT_NE(sel.detail.find("(+1 more)"), std::string::npos);
  const WritabilityCell& del = cells[static_cast<size_t>(DmlKind::kDelete)];
  EXPECT_EQ(del.level, Writability::kSafe);
  EXPECT_EQ(del.detail, "no fragment stored on this schema");
}

TEST_F(WritabilityTest, DeduplicatedIntoParentFragmentDetail) {
  // a_name lives in an author-anchored fragment; a book-anchored version
  // table touching it must create-or-merge the shared parent row (the
  // author entity does not reach book, so this is not denormalization).
  VersionTable table;
  table.name = "book_author_name";
  table.anchor = bs_->book;
  table.attrs = {bs_->a_name};
  auto cells = ClassifyVersionTable(table, bs_->source);
  const WritabilityCell& ins = cells[static_cast<size_t>(DmlKind::kInsert)];
  EXPECT_EQ(ins.level, Writability::kNeedsPropagation);
  EXPECT_NE(ins.detail.find("de-duplicated into parent fragment"), std::string::npos);
}

// -- rendering --

TEST_F(WritabilityTest, ToStringRendersLensesAndMatrix) {
  auto analysis = AnalyzeWritability(Input());
  ASSERT_TRUE(analysis.ok());
  std::string text = analysis->ToString(opset_, bs_->logical);
  EXPECT_NE(text.find("operator lenses:"), std::string::npos);
  EXPECT_NE(text.find("step 0 (starting schema)"), std::string::npos);
  EXPECT_NE(text.find("step 1 (after op#"), std::string::npos);
  EXPECT_NE(text.find("forward=invertible"), std::string::npos);
  EXPECT_NE(text.find("backward=lossy"), std::string::npos);
  EXPECT_NE(text.find("select=safe"), std::string::npos);
  EXPECT_NE(text.find("insert=unservable(op#"), std::string::npos);
  EXPECT_NE(text.find("delete="), std::string::npos);
  EXPECT_NE(text.find("update="), std::string::npos);
  EXPECT_NE(text.find("needs-propagation"), std::string::npos);
}

TEST(WritabilityNames, OutOfRangeValuesRenderAsUnknown) {
  EXPECT_STREQ(DmlKindName(static_cast<DmlKind>(99)), "?");
  EXPECT_STREQ(WritabilityName(static_cast<Writability>(99)), "?");
  EXPECT_STREQ(LensClassName(static_cast<LensClass>(99)), "?");
}

// -- malformed input --

TEST_F(WritabilityTest, MalformedInputsFail) {
  WritabilityInput in;  // null everything
  EXPECT_FALSE(AnalyzeWritability(in).ok());

  // Old and new schemas drawn from unrelated logical schemas.
  auto other = Bookstore::Make();
  in = Input();
  in.new_schema = &other->object;
  EXPECT_FALSE(AnalyzeWritability(in).ok());

  in = Input();
  in.applied.assign(1, false);  // arity mismatch
  EXPECT_FALSE(AnalyzeWritability(in).ok());

  in = Input();
  in.trajectory = {{static_cast<int>(opset_.size())}};  // out of range
  EXPECT_FALSE(AnalyzeWritability(in).ok());

  auto topo = opset_.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  in = Input();
  in.trajectory = {{topo->front(), topo->front()}};  // duplicate
  EXPECT_FALSE(AnalyzeWritability(in).ok());

  // Scheduling only the last operator of a dependency chain is not closed.
  for (size_t i = 0; i < opset_.size(); ++i) {
    if (!opset_.deps[i].empty()) {
      in = Input();
      in.trajectory = {{static_cast<int>(i)}};
      EXPECT_FALSE(AnalyzeWritability(in).ok());
      break;
    }
  }
}

TEST_F(WritabilityTest, GroupMembersMayArriveInAnyOrder) {
  auto topo = opset_.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  // One big group, members listed in *reverse* topological order: the replay
  // must reorder them internally.
  std::vector<int> group(topo->rbegin(), topo->rend());
  WritabilityInput in = Input();
  in.trajectory = {group};
  auto analysis = AnalyzeWritability(in);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_EQ(analysis->steps.size(), 2u);
  // The final step is the object schema: the new version is fully safe.
  const StepWritability& last = analysis->steps.back();
  for (const auto& row : last.new_version.cells) {
    for (const WritabilityCell& cell : row) {
      EXPECT_EQ(cell.level, Writability::kSafe);
    }
  }
}

// -- TPC-W: the full evaluation migration --

TEST(WritabilityTpcw, FullPlanClassifiesEveryCell) {
  std::unique_ptr<TpcwSchema> schema = BuildTpcwSchema();
  auto opset = ComputeOperatorSet(schema->source, schema->object);
  ASSERT_TRUE(opset.ok()) << opset.status().ToString();
  WritabilityInput input;
  input.old_schema = &schema->source;
  input.new_schema = &schema->object;
  input.opset = &*opset;
  DiagnosticReport report;
  auto analysis = AnalyzeWritability(input, &report);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();

  ASSERT_EQ(analysis->steps.size(), opset->size() + 1);
  size_t needs_propagation_from_combine = 0;
  for (const StepWritability& step : analysis->steps) {
    ASSERT_EQ(step.old_version.cells.size(), analysis->old_tables.size());
    ASSERT_EQ(step.new_version.cells.size(), analysis->new_tables.size());
    for (const auto* matrix : {&step.old_version, &step.new_version}) {
      for (const auto& row : matrix->cells) {
        for (const WritabilityCell& cell : row) {
          if (cell.level == Writability::kSafe) continue;
          ASSERT_GE(cell.provenance_op, 0);
          if (cell.level == Writability::kNeedsPropagation &&
              opset->ops[static_cast<size_t>(cell.provenance_op)].kind ==
                  OperatorKind::kCombineTable) {
            ++needs_propagation_from_combine;
          }
        }
      }
    }
  }
  EXPECT_GT(needs_propagation_from_combine, 0u);
  // Both versions live across the default trajectory: the not-yet-created
  // attributes open a write-unservable window for the new version.
  EXPECT_GT(analysis->unservable_cells, 0u);
  EXPECT_TRUE(report.HasCode(DiagCode::kWriteUnservableWindow));
  EXPECT_TRUE(report.HasCode(DiagCode::kWriteLossyCombine));
  EXPECT_TRUE(report.ok());
}

// -- property: the SELECT column agrees with the Rewriter --

/// Scrambles the bookstore source into a random reachable object schema
/// (the parallel-planner property test's recipe, without the workload).
std::optional<PhysicalSchema> ScrambleSchema(const Bookstore& s, Rng* rng) {
  PhysicalSchema object = s.source;
  int next_id = 3000;
  for (int step = 0; step < 6; ++step) {
    double roll = rng->UniformDouble();
    MigrationOperator op;
    op.id = next_id++;
    if (roll < 0.4) {
      std::vector<std::pair<size_t, std::vector<AttrId>>> candidates;
      for (size_t t = 0; t < object.tables().size(); ++t) {
        std::vector<AttrId> nonkey;
        for (AttrId a : object.tables()[t].attrs) {
          if (!s.logical.attr(a).is_key) nonkey.push_back(a);
        }
        if (nonkey.size() >= 2) candidates.emplace_back(t, nonkey);
      }
      if (candidates.empty()) continue;
      auto& [t, nonkey] = candidates[rng->Index(candidates.size())];
      size_t count = 1 + rng->Index(nonkey.size() - 1);
      rng->Shuffle(&nonkey);
      op.kind = OperatorKind::kSplitTable;
      op.split_moved.assign(nonkey.begin(), nonkey.begin() + static_cast<long>(count));
      op.split_moved_anchor = s.logical.attr(op.split_moved[0]).entity;
    } else {
      if (object.tables().size() < 2) continue;
      size_t a = rng->Index(object.tables().size());
      size_t b = rng->Index(object.tables().size());
      if (a == b) continue;
      std::vector<AttrId> a_nonkey, b_nonkey;
      for (AttrId x : object.tables()[a].attrs) {
        if (!s.logical.attr(x).is_key) a_nonkey.push_back(x);
      }
      for (AttrId x : object.tables()[b].attrs) {
        if (!s.logical.attr(x).is_key) b_nonkey.push_back(x);
      }
      if (a_nonkey.empty() || b_nonkey.empty()) continue;
      op.kind = OperatorKind::kCombineTable;
      op.combine_left_rep = a_nonkey[0];
      op.combine_right_rep = b_nonkey[0];
    }
    (void)ApplyOperator(op, &object);
  }
  return object;
}

/// The canonical full-projection query of a version table: anchored at the
/// table's anchor, selecting every non-key attribute it carries.
LogicalQuery CanonicalQuery(const VersionTable& table, const LogicalSchema& L) {
  LogicalQuery q;
  q.name = "canon_";  // += form: GCC 12's operator+ trips -Wrestrict
  q.name += table.name;
  q.anchor = table.anchor;
  for (AttrId a : table.attrs) {
    const std::string& name = L.attr(a).name;
    q.select.emplace_back(Col(name), AggFunc::kNone, name);
  }
  return q;
}

class WritabilityProperty : public ::testing::TestWithParam<uint64_t> {};

// On every intermediate schema of randomized trajectories, a version table's
// SELECT cell is kUnservable exactly when the Rewriter cannot bind its
// canonical full-projection query.
TEST_P(WritabilityProperty, SelectColumnAgreesWithRewriter) {
  auto bs = Bookstore::Make();
  Bookstore& s = *bs;
  Rng rng(GetParam());

  int instances = 0;
  for (int iter = 0; iter < 12 && instances < 6; ++iter) {
    auto object = ScrambleSchema(s, &rng);
    if (!object.has_value()) continue;
    auto opset = ComputeOperatorSet(s.source, *object);
    if (!opset.ok() || opset->size() == 0) continue;
    auto topo = opset->TopologicalOrder();
    ASSERT_TRUE(topo.ok());
    ++instances;

    // Random trajectory: the topological order cut into random contiguous
    // groups (prefix-closed, so always dependency-closed).
    std::vector<std::vector<int>> trajectory;
    for (size_t i = 0; i < topo->size();) {
      size_t len = 1 + rng.Index(topo->size() - i);
      trajectory.emplace_back(topo->begin() + static_cast<long>(i),
                              topo->begin() + static_cast<long>(i + len));
      i += len;
    }

    WritabilityInput input;
    input.old_schema = &s.source;
    input.new_schema = &*object;
    input.opset = &*opset;
    input.trajectory = trajectory;
    auto analysis = AnalyzeWritability(input);
    ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();

    // Replay the intermediate schemas independently and compare.
    PhysicalSchema state = s.source;
    for (size_t step = 0; step < analysis->steps.size(); ++step) {
      if (step > 0) {
        for (int op : trajectory[step - 1]) {
          ASSERT_TRUE(ApplyOperator(opset->ops[static_cast<size_t>(op)], &state).ok());
        }
      }
      auto check = [&](const std::vector<VersionTable>& tables, const VersionMatrix& matrix) {
        for (size_t t = 0; t < tables.size(); ++t) {
          if (tables[t].attrs.empty()) continue;  // key-only: nothing to project
          LogicalQuery q = CanonicalQuery(tables[t], s.logical);
          bool servable = RewriteQuery(q, state).ok();
          bool matrix_servable =
              matrix.cells[t][static_cast<size_t>(DmlKind::kSelect)].level !=
              Writability::kUnservable;
          EXPECT_EQ(servable, matrix_servable)
              << "step " << step << " table " << tables[t].name;
        }
      };
      check(analysis->old_tables, analysis->steps[step].old_version);
      check(analysis->new_tables, analysis->steps[step].new_version);
    }
  }
  EXPECT_GT(instances, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WritabilityProperty, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace pse
