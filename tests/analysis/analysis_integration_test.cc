// Integration: the planner refuses ill-formed operator sets through the
// verification gate, and the advisor's output passes its own verification.
#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "core/migration_planner.h"
#include "core/schema_advisor.h"
#include "engine/expr.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

class AnalysisIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    data_ = bs_->MakeData(10, 20, 50);
    stats_.push_back(data_->ComputeStats());
    auto opset = ComputeOperatorSet(bs_->source, bs_->object);
    ASSERT_TRUE(opset.ok());
    opset_ = std::make_unique<OperatorSet>(std::move(*opset));

    LogicalQuery old_q;
    old_q.anchor = bs_->author;
    old_q.select.emplace_back(Col("a_name"), AggFunc::kNone, "a_name");
    queries_.emplace_back(std::move(old_q), /*is_old=*/true);
    LogicalQuery new_q;
    new_q.anchor = bs_->book;
    new_q.select.emplace_back(Col("b_title"), AggFunc::kNone, "b_title");
    new_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "b_abstract");
    queries_.emplace_back(std::move(new_q), /*is_old=*/false);
  }

  MigrationContext MakeContext(const std::vector<std::vector<double>>* freqs) {
    MigrationContext ctx;
    ctx.current = &bs_->source;
    ctx.object = &bs_->object;
    ctx.opset = opset_.get();
    ctx.applied.assign(opset_->size(), false);
    ctx.phase_freqs = freqs;
    ctx.phase_stats = &stats_;
    ctx.queries = &queries_;
    return ctx;
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<LogicalDatabase> data_;
  std::vector<LogicalStats> stats_;
  std::unique_ptr<OperatorSet> opset_;
  std::vector<WorkloadQuery> queries_;
};

TEST_F(AnalysisIntegrationTest, LaaRejectsCyclicOperatorSet) {
  ASSERT_GE(opset_->size(), 2u);
  opset_->deps[0].push_back(1);
  opset_->deps[1].push_back(0);
  std::vector<std::vector<double>> freqs{{10, 10}};
  auto laa = SelectOpsLaa(MakeContext(&freqs), 0);
  ASSERT_FALSE(laa.ok());
  EXPECT_TRUE(laa.status().IsInvalidArgument()) << laa.status().ToString();
  EXPECT_NE(laa.status().message().find("OPSET_DEP_CYCLE"), std::string::npos)
      << laa.status().ToString();
}

TEST_F(AnalysisIntegrationTest, GaaRejectsCyclicOperatorSet) {
  ASSERT_GE(opset_->size(), 2u);
  opset_->deps[0].push_back(1);
  opset_->deps[1].push_back(0);
  std::vector<std::vector<double>> freqs{{10, 10}, {5, 20}};
  GaaOptions options;
  options.ga.population_size = 8;
  options.ga.generations = 4;
  auto gaa = PlanGaa(MakeContext(&freqs), 0, options);
  ASSERT_FALSE(gaa.ok());
  EXPECT_NE(gaa.status().message().find("OPSET_DEP_CYCLE"), std::string::npos)
      << gaa.status().ToString();
}

TEST_F(AnalysisIntegrationTest, LaaStillPlansWellFormedSets) {
  std::vector<std::vector<double>> freqs{{10, 10}};
  auto laa = SelectOpsLaa(MakeContext(&freqs), 0);
  EXPECT_TRUE(laa.ok()) << laa.status().ToString();
}

TEST_F(AnalysisIntegrationTest, VerifyContextAcceptsPlannerContext) {
  std::vector<std::vector<double>> freqs{{10, 10}};
  MigrationContext ctx = MakeContext(&freqs);
  DiagnosticReport report = VerifyContext(ctx);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(AnalysisIntegrationTest, AdvisorOutputPassesVerification) {
  // AdviseSchema verifies its own recommendation before returning; an ok
  // status therefore implies the step sequence replays cleanly and the
  // workload stays answerable on the recommended design.
  std::vector<double> freqs{5.0, 20.0};
  auto advice = AdviseSchema(bs_->source, stats_[0], queries_, freqs);
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_TRUE(advice->schema.Validate().ok());
}

}  // namespace
}  // namespace pse
