// AnalyzeConcurrency: the CONCURRENCY_* lints predicting reader/migration
// interference for a serve window before any data moves.
#include <gtest/gtest.h>

#include "analysis/concurrency.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

class ConcurrencyLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    data_ = bs_->MakeData(5, 8, 60);
    stats_ = data_->ComputeStats();
    auto opset = ComputeOperatorSet(bs_->source, bs_->object);
    ASSERT_TRUE(opset.ok()) << opset.status().ToString();
    opset_ = std::move(*opset);

    // Old-version query over book x author; old-version query over user;
    // new-version query needing the not-yet-created b_abstract.
    LogicalQuery book;
    book.name = "O1";
    book.anchor = bs_->book;
    book.select.emplace_back(Col("b_title"), AggFunc::kNone, "t");
    book.select.emplace_back(Col("a_name"), AggFunc::kNone, "a");
    queries_.emplace_back(std::move(book), /*is_old=*/true);

    LogicalQuery user;
    user.name = "O2";
    user.anchor = bs_->user;
    user.select.emplace_back(Col("u_name"), AggFunc::kNone, "n");
    queries_.emplace_back(std::move(user), /*is_old=*/true);

    LogicalQuery abstract_q;
    abstract_q.name = "N1";
    abstract_q.anchor = bs_->book;
    abstract_q.select.emplace_back(Col("b_abstract"), AggFunc::kNone, "ab");
    queries_.emplace_back(std::move(abstract_q), /*is_old=*/false);

    freqs_ = {10, 10, 10};
  }

  ConcurrencyInput Input() {
    ConcurrencyInput in;
    in.source = &bs_->source;
    in.opset = &opset_;
    in.queries = &queries_;
    in.freqs = &freqs_;
    in.stats = &stats_;
    in.sessions = 4;
    return in;
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<LogicalDatabase> data_;
  LogicalStats stats_;
  OperatorSet opset_;
  std::vector<WorkloadQuery> queries_;
  std::vector<double> freqs_;
};

TEST_F(ConcurrencyLintTest, MissingInputsAreAnError) {
  ConcurrencyInput in;
  DiagnosticReport report = AnalyzeConcurrency(in);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kConcurrencyUnservablePhase));
}

TEST_F(ConcurrencyLintTest, FrequencyArityMismatchIsAnError) {
  ConcurrencyInput in = Input();
  std::vector<double> short_freqs = {1.0};
  in.freqs = &short_freqs;
  EXPECT_FALSE(AnalyzeConcurrency(in).ok());
}

TEST_F(ConcurrencyLintTest, FewerThanTwoSessionsNotes) {
  ConcurrencyInput in = Input();
  in.sessions = 1;
  DiagnosticReport report = AnalyzeConcurrency(in);
  EXPECT_TRUE(report.ok());  // notes don't fail the report
  EXPECT_TRUE(report.HasCode(DiagCode::kConcurrencySingleLane));

  in.sessions = 4;
  EXPECT_FALSE(AnalyzeConcurrency(in).HasCode(DiagCode::kConcurrencySingleLane));
}

TEST_F(ConcurrencyLintTest, ActiveNewQueryUnservableMidWindowWarns) {
  DiagnosticReport report = AnalyzeConcurrency(Input());
  auto diags = report.WithCode(DiagCode::kConcurrencyUnservablePhase);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].severity, DiagSeverity::kWarning);
  EXPECT_EQ(diags[0].location, "query 'N1'");

  // Inactive this phase: no warning.
  freqs_ = {10, 10, 0};
  EXPECT_FALSE(AnalyzeConcurrency(Input()).HasCode(DiagCode::kConcurrencyUnservablePhase));
}

TEST_F(ConcurrencyLintTest, HotSourceTablesNote) {
  // Every source table the operators drop is read by an active query with a
  // large frequency share, so each data-moving operator gets the note.
  DiagnosticReport report = AnalyzeConcurrency(Input());
  EXPECT_TRUE(report.HasCode(DiagCode::kConcurrencyHotSource));

  // Raise the share threshold beyond any query's mass: the note disappears.
  ConcurrencyOptions opt;
  opt.hot_source_share = 1.1;
  EXPECT_FALSE(AnalyzeConcurrency(Input(), opt).HasCode(DiagCode::kConcurrencyHotSource));
}

TEST_F(ConcurrencyLintTest, QuiesceStallThresholdGatesTheWarning) {
  // 5 authors + 40 books + 60 users: the book x author query drains ~45 rows.
  ConcurrencyOptions opt;
  opt.quiesce_drain_rows = 10;
  DiagnosticReport report = AnalyzeConcurrency(Input(), opt);
  EXPECT_TRUE(report.HasCode(DiagCode::kConcurrencyQuiesceStall));

  EXPECT_FALSE(AnalyzeConcurrency(Input()).HasCode(DiagCode::kConcurrencyQuiesceStall));

  // No stats: the scan-size estimate (and the warning) is unavailable.
  ConcurrencyInput in = Input();
  in.stats = nullptr;
  EXPECT_FALSE(AnalyzeConcurrency(in, opt).HasCode(DiagCode::kConcurrencyQuiesceStall));
}

TEST_F(ConcurrencyLintTest, AppliedOperatorsAreSkipped) {
  std::vector<bool> applied(opset_.size(), true);
  ConcurrencyInput in = Input();
  in.applied = &applied;
  DiagnosticReport report = AnalyzeConcurrency(in);
  EXPECT_FALSE(report.HasCode(DiagCode::kConcurrencyHotSource));
  EXPECT_FALSE(report.HasCode(DiagCode::kConcurrencyUnservablePhase));
}

}  // namespace
}  // namespace pse
