// VerifyMigration: the Fig 7 bookstore migration verifies clean, and each
// seeded-invalid fixture is rejected with its documented diagnostic code.
#include "analysis/verifier.h"

#include <gtest/gtest.h>

#include "core/operators.h"
#include "engine/expr.h"
#include "tests/core/core_test_util.h"

namespace pse {
namespace {

using coretest::Bookstore;

class VerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bs_ = Bookstore::Make();
    auto opset = ComputeOperatorSet(bs_->source, bs_->object);
    ASSERT_TRUE(opset.ok());
    opset_ = std::make_unique<OperatorSet>(std::move(*opset));
  }

  VerifyInput Input() {
    VerifyInput input;
    input.source = &bs_->source;
    input.object = &bs_->object;
    input.opset = opset_.get();
    return input;
  }

  static WorkloadQuery MakeQuery(EntityId anchor, std::initializer_list<const char*> attrs,
                                 bool is_old, const char* name) {
    LogicalQuery q;
    q.name = name;
    q.anchor = anchor;
    for (const char* a : attrs) q.select.emplace_back(Col(a), AggFunc::kNone, a);
    return WorkloadQuery(std::move(q), is_old);
  }

  std::unique_ptr<Bookstore> bs_;
  std::unique_ptr<OperatorSet> opset_;
};

// --- pass-through: the paper's Fig 7 migration. ---

TEST_F(VerifierTest, Fig7BookstoreVerifiesClean) {
  std::vector<WorkloadQuery> queries;
  queries.push_back(MakeQuery(bs_->author, {"a_name", "a_bio"}, true, "O1"));
  queries.push_back(MakeQuery(bs_->user, {"u_name", "u_addr"}, true, "O2"));
  queries.push_back(MakeQuery(bs_->book, {"b_title", "a_name", "b_abstract"}, false, "N1"));
  std::vector<std::vector<double>> freqs{{5, 3, 1}, {1, 1, 8}};
  VerifyInput input = Input();
  input.queries = &queries;
  input.phase_freqs = &freqs;

  DiagnosticReport report = VerifyMigration(input);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.errors(), 0u);
  // The combine of author into book carries the documented coverage
  // precondition — a warning, not an error.
  EXPECT_TRUE(report.HasCode(DiagCode::kPreserveCombineCoverage));
  // N1 needs b_abstract: unanswerable at intermediates lacking the create,
  // reported as an expected-deferral note.
  bool n1_note = false;
  for (const auto& d : report.WithCode(DiagCode::kWorkloadUnanswerableIntermediate)) {
    if (d.severity == DiagSeverity::kNote && d.location == "query 'N1'") n1_note = true;
  }
  EXPECT_TRUE(n1_note) << report.ToString();
}

TEST_F(VerifierTest, CleanWithoutWorkload) {
  DiagnosticReport report = VerifyMigration(Input());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- seeded-invalid: operator-set well-formedness. ---

TEST_F(VerifierTest, DanglingFdInCreateIsRejected) {
  for (auto& op : opset_->ops) {
    if (op.kind == OperatorKind::kCreateTable) {
      // u_addr belongs to `user`, not the create's entity; the second id is
      // outside the logical schema entirely.
      op.create_attrs = {bs_->u_addr, bs_->logical.num_attributes() + 3};
      break;
    }
  }
  DiagnosticReport report = VerifyMigration(Input());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kOpsetDanglingRef)) << report.ToString();
  EXPECT_GE(report.WithCode(DiagCode::kOpsetDanglingRef).size(), 2u);
}

TEST_F(VerifierTest, DependencyCycleIsRejected) {
  ASSERT_GE(opset_->size(), 2u);
  opset_->deps[0].push_back(1);
  opset_->deps[1].push_back(0);
  DiagnosticReport report = VerifyMigration(Input());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kOpsetDepCycle)) << report.ToString();
}

TEST_F(VerifierTest, DependencyIndexOutOfRangeIsRejected) {
  opset_->deps[0].push_back(static_cast<int>(opset_->size()) + 5);
  DiagnosticReport report = VerifyMigration(Input());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kOpsetArity)) << report.ToString();
}

TEST_F(VerifierTest, AppliedMaskArityMismatchIsRejected) {
  std::vector<bool> applied(opset_->size() + 2, false);
  VerifyInput input = Input();
  input.applied = &applied;
  DiagnosticReport report = VerifyMigration(input);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kOpsetArity)) << report.ToString();
}

TEST_F(VerifierTest, IncompleteOperatorSetDoesNotConverge) {
  // Only the CreateTable for b_abstract: replay cannot reach the object
  // schema (no combine, no split).
  OperatorSet partial;
  for (const auto& op : opset_->ops) {
    if (op.kind == OperatorKind::kCreateTable) {
      partial.ops.push_back(op);
      partial.deps.emplace_back();
      break;
    }
  }
  ASSERT_EQ(partial.size(), 1u);
  VerifyInput input = Input();
  input.opset = &partial;
  DiagnosticReport report = VerifyMigration(input);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kOpsetNoConvergence)) << report.ToString();
}

TEST_F(VerifierTest, DuplicatedOperatorIsNotApplicableTwice) {
  // Append a copy of an existing split: the replay applies the original,
  // then the duplicate must fail its preconditions.
  const MigrationOperator* split = nullptr;
  for (const auto& op : opset_->ops) {
    if (op.kind == OperatorKind::kSplitTable) split = &op;
  }
  ASSERT_NE(split, nullptr);
  opset_->ops.push_back(*split);
  opset_->deps.emplace_back();
  DiagnosticReport report = VerifyMigration(Input());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kOpsetNotApplicable)) << report.ToString();
}

TEST_F(VerifierTest, InvalidSourceSchemaIsRejected) {
  // A raw table that stores u_addr a second time violates the
  // exactly-one-placement invariant.
  PhysicalTable dup;
  dup.name = "user_dup";
  dup.anchor = bs_->user;
  dup.attrs = {bs_->u_id, bs_->u_addr};
  bs_->source.AddRawTable(dup);
  DiagnosticReport report = VerifyMigration(Input());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kSchemaInvalid)) << report.ToString();
}

// --- seeded-invalid: information preservation. ---

TEST_F(VerifierTest, LossySplitIsRejected) {
  // Move u_addr into a fragment anchored at `author`: author's key does not
  // functionally determine u_addr, so the split is not lossless-join.
  OperatorSet lossy;
  MigrationOperator op;
  op.kind = OperatorKind::kSplitTable;
  op.id = 0;
  op.split_moved = {bs_->u_addr};
  op.split_moved_anchor = bs_->author;
  lossy.ops.push_back(op);
  lossy.deps.emplace_back();
  VerifyInput input = Input();
  input.opset = &lossy;
  DiagnosticReport report = VerifyMigration(input);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kPreserveSplitLossy)) << report.ToString();
}

TEST_F(VerifierTest, ObjectSchemaDroppingAnAttrLosesInformation) {
  // An object schema with no placement for u_addr forgets data.
  PhysicalSchema object(&bs_->logical);
  ASSERT_TRUE(object
                  .AddTable("glossary", bs_->book,
                            {bs_->b_title, bs_->b_cost, bs_->b_a_id, bs_->a_name, bs_->a_bio,
                             bs_->b_abstract})
                  .ok());
  ASSERT_TRUE(object.AddTable("user_gen", bs_->user, {bs_->u_name, bs_->u_bday}).ok());
  OperatorSet empty;
  VerifyInput input = Input();
  input.object = &object;
  input.opset = &empty;
  DiagnosticReport report = VerifyMigration(input);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kPreserveAttrLost)) << report.ToString();
}

TEST_F(VerifierTest, CrossEntityCombineCarriesCoverageWarning) {
  DiagnosticReport report = VerifyMigration(Input());
  ASSERT_TRUE(report.HasCode(DiagCode::kPreserveCombineCoverage)) << report.ToString();
  for (const auto& d : report.WithCode(DiagCode::kPreserveCombineCoverage)) {
    EXPECT_EQ(d.severity, DiagSeverity::kWarning);
    EXPECT_NE(d.message.find("author"), std::string::npos);
  }
}

// --- seeded-invalid: workload lint. ---

TEST_F(VerifierTest, QueryOnNeverStoredAttrIsUnanswerable) {
  AttrId b_extra =
      *bs_->logical.AddAttribute(bs_->book, "b_extra", TypeId::kInt64, 0, /*is_new=*/true);
  (void)b_extra;
  std::vector<WorkloadQuery> queries;
  queries.push_back(MakeQuery(bs_->book, {"b_extra"}, false, "Nx"));
  VerifyInput input = Input();
  input.queries = &queries;
  DiagnosticReport report = VerifyMigration(input);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kWorkloadUnanswerableObject)) << report.ToString();
}

TEST_F(VerifierTest, OldQueryOnNewAttrIsUnanswerableOnSource) {
  std::vector<WorkloadQuery> queries;
  queries.push_back(MakeQuery(bs_->book, {"b_abstract"}, /*is_old=*/true, "Ox"));
  VerifyInput input = Input();
  input.queries = &queries;
  DiagnosticReport report = VerifyMigration(input);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kWorkloadUnanswerableSource)) << report.ToString();
}

TEST_F(VerifierTest, UnknownAttributeNameIsReported) {
  std::vector<WorkloadQuery> queries;
  queries.push_back(MakeQuery(bs_->book, {"no_such_attr"}, false, "Nz"));
  VerifyInput input = Input();
  input.queries = &queries;
  DiagnosticReport report = VerifyMigration(input);
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const auto& d : report.WithCode(DiagCode::kWorkloadUnanswerableObject)) {
    if (d.message.find("no_such_attr") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST_F(VerifierTest, FrequencyArityMismatchIsReported) {
  std::vector<WorkloadQuery> queries;
  queries.push_back(MakeQuery(bs_->author, {"a_name"}, true, "O1"));
  std::vector<std::vector<double>> freqs{{1.0, 2.0, 3.0}};  // 3 freqs, 1 query
  VerifyInput input = Input();
  input.queries = &queries;
  input.phase_freqs = &freqs;
  DiagnosticReport report = VerifyMigration(input);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode(DiagCode::kWorkloadArity)) << report.ToString();
}

TEST_F(VerifierTest, IntermediateDeferralNoteCanBeSilenced) {
  std::vector<WorkloadQuery> queries;
  queries.push_back(MakeQuery(bs_->book, {"b_abstract"}, false, "N1"));
  VerifyInput input = Input();
  input.queries = &queries;
  VerifyOptions options;
  options.note_expected_deferrals = false;
  DiagnosticReport report = VerifyMigration(input, options);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_FALSE(report.HasCode(DiagCode::kWorkloadUnanswerableIntermediate));
}

// --- partial application (mid-migration verification). ---

TEST_F(VerifierTest, VerifiesFromAnIntermediateSchema) {
  // Apply the first operator of the topological order, then verify the rest
  // from the evolved schema.
  auto topo = opset_->TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  PhysicalSchema current = bs_->source;
  int first = (*topo)[0];
  ASSERT_TRUE(ApplyOperator(opset_->ops[static_cast<size_t>(first)], &current).ok());
  std::vector<bool> applied(opset_->size(), false);
  applied[static_cast<size_t>(first)] = true;
  VerifyInput input = Input();
  input.source = &current;
  input.applied = &applied;
  DiagnosticReport report = VerifyMigration(input);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- prefix fallback above the exhaustive budget. ---

TEST_F(VerifierTest, PrefixModeStillFindsDeferralNotes) {
  std::vector<WorkloadQuery> queries;
  queries.push_back(MakeQuery(bs_->book, {"b_abstract"}, false, "N1"));
  VerifyInput input = Input();
  input.queries = &queries;
  VerifyOptions options;
  options.max_exhaustive_ops = 0;  // force topological-prefix candidates
  DiagnosticReport report = VerifyMigration(input, options);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasCode(DiagCode::kWorkloadUnanswerableIntermediate))
      << report.ToString();
}

}  // namespace
}  // namespace pse
