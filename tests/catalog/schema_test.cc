#include "catalog/schema.h"

#include <gtest/gtest.h>

namespace pse {
namespace {

TableSchema MakeSchema() {
  return TableSchema("book",
                     {Column("book_id", TypeId::kInt64, 0, false),
                      Column("title", TypeId::kVarchar, 40),
                      Column("price", TypeId::kDouble)},
                     {"book_id"});
}

TEST(SchemaTest, BasicAccessors) {
  TableSchema s = MakeSchema();
  EXPECT_EQ(s.name(), "book");
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.column(1).name, "title");
  ASSERT_EQ(s.key_columns().size(), 1u);
  EXPECT_EQ(s.key_columns()[0], "book_id");
}

TEST(SchemaTest, ColumnIndexCaseInsensitive) {
  TableSchema s = MakeSchema();
  auto r = s.ColumnIndex("TITLE");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1u);
  EXPECT_FALSE(s.ColumnIndex("nope").ok());
  EXPECT_TRUE(s.HasColumn("price"));
  EXPECT_FALSE(s.HasColumn("qty"));
}

TEST(SchemaTest, EstimatedTupleWidthCountsAllColumns) {
  TableSchema s = MakeSchema();
  // 8 (int) + 44 (varchar avg 40 + 4 len) + 8 (double) + 1 bitmap + 4 slot.
  EXPECT_EQ(s.EstimatedTupleWidth(), 8u + 44u + 8u + 1u + 4u);
}

TEST(SchemaTest, AddColumn) {
  TableSchema s = MakeSchema();
  s.AddColumn(Column("stock", TypeId::kInt64));
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_TRUE(s.HasColumn("stock"));
}

TEST(SchemaTest, ToStringMentionsColumnsAndKey) {
  std::string str = MakeSchema().ToString();
  EXPECT_NE(str.find("book("), std::string::npos);
  EXPECT_NE(str.find("title VARCHAR"), std::string::npos);
  EXPECT_NE(str.find("KEY(book_id)"), std::string::npos);
}

TEST(SchemaTest, VarcharWidthDefaultsWhenUnset) {
  Column c("note", TypeId::kVarchar);
  EXPECT_EQ(c.EstimatedWidth(), TypeFixedWidth(TypeId::kVarchar) + 4);
}

}  // namespace
}  // namespace pse
