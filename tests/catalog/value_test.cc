#include "catalog/value.h"

#include <gtest/gtest.h>

namespace pse {
namespace {

TEST(ValueTest, Constructors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_FALSE(Value::Int(1).is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Varchar("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_FALSE(Value::Bool(false).AsBool());
  EXPECT_TRUE(Value::Null(TypeId::kVarchar).is_null());
  EXPECT_EQ(Value::Null(TypeId::kVarchar).type(), TypeId::kVarchar);
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(3).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Varchar("abc").Compare(Value::Varchar("abd")), 0);
  EXPECT_EQ(Value::Varchar("x").Compare(Value::Varchar("x")), 0);
}

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value::Null(TypeId::kInt64).Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null(TypeId::kInt64).Compare(Value::Null(TypeId::kVarchar)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null(TypeId::kInt64)), 0);
}

TEST(ValueTest, SqlEqualsNullSemantics) {
  EXPECT_FALSE(Value::Null(TypeId::kInt64).SqlEquals(Value::Null(TypeId::kInt64)));
  EXPECT_FALSE(Value::Null(TypeId::kInt64).SqlEquals(Value::Int(1)));
  EXPECT_TRUE(Value::Int(1).SqlEquals(Value::Int(1)));
  EXPECT_FALSE(Value::Int(1).SqlEquals(Value::Int(2)));
}

TEST(ValueTest, HashConsistentWithCompare) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::Null(TypeId::kInt64).Hash(), Value::Null(TypeId::kVarchar).Hash());
  EXPECT_EQ(Value::Varchar("abc").Hash(), Value::Varchar("abc").Hash());
}

TEST(ValueTest, CastIntToDouble) {
  auto r = Value::Int(3).CastTo(TypeId::kDouble);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsDouble(), 3.0);
}

TEST(ValueTest, CastStringToInt) {
  auto ok = Value::Varchar("123").CastTo(TypeId::kInt64);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->AsInt(), 123);
  auto bad = Value::Varchar("12x").CastTo(TypeId::kInt64);
  EXPECT_FALSE(bad.ok());
}

TEST(ValueTest, CastNullYieldsNullOfTargetType) {
  auto r = Value::Null(TypeId::kInt64).CastTo(TypeId::kVarchar);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null());
  EXPECT_EQ(r->type(), TypeId::kVarchar);
}

TEST(ValueTest, CastToVarchar) {
  auto r = Value::Int(-5).CastTo(TypeId::kVarchar);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "-5");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(1).ToString(), "1");
  EXPECT_EQ(Value::Null(TypeId::kInt64).ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Varchar("v").ToString(), "v");
}

}  // namespace
}  // namespace pse
