#include "catalog/tuple.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pse {
namespace {

TableSchema MakeSchema() {
  return TableSchema("t", {Column("a", TypeId::kInt64), Column("b", TypeId::kVarchar, 16),
                           Column("c", TypeId::kDouble), Column("d", TypeId::kBoolean)});
}

TEST(TupleCodecTest, RoundTrip) {
  TableSchema s = MakeSchema();
  Row row{Value::Int(-7), Value::Varchar("hello"), Value::Double(3.25), Value::Bool(true)};
  std::string bytes;
  ASSERT_TRUE(TupleCodec::Serialize(s, row, &bytes).ok());
  Row back;
  ASSERT_TRUE(TupleCodec::Deserialize(s, bytes.data(), bytes.size(), &back).ok());
  ASSERT_EQ(back.size(), 4u);
  EXPECT_EQ(back[0].AsInt(), -7);
  EXPECT_EQ(back[1].AsString(), "hello");
  EXPECT_EQ(back[2].AsDouble(), 3.25);
  EXPECT_TRUE(back[3].AsBool());
}

TEST(TupleCodecTest, RoundTripWithNulls) {
  TableSchema s = MakeSchema();
  Row row{Value::Null(TypeId::kInt64), Value::Varchar(""), Value::Null(TypeId::kDouble),
          Value::Bool(false)};
  std::string bytes;
  ASSERT_TRUE(TupleCodec::Serialize(s, row, &bytes).ok());
  Row back;
  ASSERT_TRUE(TupleCodec::Deserialize(s, bytes.data(), bytes.size(), &back).ok());
  EXPECT_TRUE(back[0].is_null());
  EXPECT_EQ(back[1].AsString(), "");
  EXPECT_TRUE(back[2].is_null());
  EXPECT_FALSE(back[3].AsBool());
}

TEST(TupleCodecTest, ArityMismatchRejected) {
  TableSchema s = MakeSchema();
  std::string bytes;
  Row short_row{Value::Int(1)};
  EXPECT_FALSE(TupleCodec::Serialize(s, short_row, &bytes).ok());
}

TEST(TupleCodecTest, SerializedSizeMatches) {
  TableSchema s = MakeSchema();
  Row row{Value::Int(1), Value::Varchar("abcd"), Value::Double(1.0), Value::Bool(true)};
  std::string bytes;
  ASSERT_TRUE(TupleCodec::Serialize(s, row, &bytes).ok());
  EXPECT_EQ(bytes.size(), TupleCodec::SerializedSize(s, row));
}

TEST(TupleCodecTest, TruncatedBytesRejected) {
  TableSchema s = MakeSchema();
  Row row{Value::Int(1), Value::Varchar("abcd"), Value::Double(1.0), Value::Bool(true)};
  std::string bytes;
  ASSERT_TRUE(TupleCodec::Serialize(s, row, &bytes).ok());
  Row back;
  EXPECT_FALSE(TupleCodec::Deserialize(s, bytes.data(), bytes.size() - 3, &back).ok());
  EXPECT_FALSE(TupleCodec::Deserialize(s, bytes.data(), 0, &back).ok());
}

// Property: random rows round-trip exactly.
class TupleRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(TupleRoundTripProperty, RandomRowsRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  TableSchema s = MakeSchema();
  for (int iter = 0; iter < 200; ++iter) {
    Row row;
    row.push_back(rng.Bernoulli(0.1) ? Value::Null(TypeId::kInt64)
                                     : Value::Int(rng.UniformInt(INT64_MIN / 2, INT64_MAX / 2)));
    row.push_back(rng.Bernoulli(0.1) ? Value::Null(TypeId::kVarchar)
                                     : Value::Varchar(rng.AlphaString(rng.Index(64))));
    row.push_back(rng.Bernoulli(0.1) ? Value::Null(TypeId::kDouble)
                                     : Value::Double(rng.UniformDouble() * 1e6));
    row.push_back(rng.Bernoulli(0.1) ? Value::Null(TypeId::kBoolean)
                                     : Value::Bool(rng.Bernoulli(0.5)));
    std::string bytes;
    ASSERT_TRUE(TupleCodec::Serialize(s, row, &bytes).ok());
    Row back;
    ASSERT_TRUE(TupleCodec::Deserialize(s, bytes.data(), bytes.size(), &back).ok());
    ASSERT_TRUE(RowEq()(row, back)) << RowToString(row) << " vs " << RowToString(back);
    ASSERT_EQ(RowHash()(row), RowHash()(back));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleRoundTripProperty, ::testing::Values(1, 2, 3, 4, 5));

TEST(RowHelpersTest, RowToString) {
  Row r{Value::Int(1), Value::Varchar("x"), Value::Null(TypeId::kDouble)};
  EXPECT_EQ(RowToString(r), "(1, x, NULL)");
}

TEST(RowHelpersTest, RowEqDistinguishesArity) {
  Row a{Value::Int(1)};
  Row b{Value::Int(1), Value::Int(2)};
  EXPECT_FALSE(RowEq()(a, b));
  EXPECT_TRUE(RowEq()(a, Row{Value::Int(1)}));
}

}  // namespace
}  // namespace pse
