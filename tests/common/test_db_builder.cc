#include "tests/common/test_db_builder.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace pse {
namespace testutil {

std::vector<Row> SortRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

std::vector<Row> TableRows(Database* db, const std::string& name) {
  auto info = db->GetTable(name);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  std::vector<Row> out;
  if (!info.ok()) return out;
  for (auto it = (*info)->heap->Begin(); !it.AtEnd();) {
    out.push_back(it.row());
    EXPECT_TRUE(it.Next().ok());
  }
  return SortRows(std::move(out));
}

bool SameRows(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t c = 0; c < a[i].size(); ++c) {
      if (a[i][c].Compare(b[i][c]) != 0) return false;
    }
  }
  return true;
}

RandomInstance MakeInstance(Rng* rng, size_t num_rows) {
  RandomInstance inst;
  inst.db = std::make_unique<Database>(256);
  TableSchema schema("t",
                     {Column("id", TypeId::kInt64, 0, false), Column("a", TypeId::kInt64),
                      Column("b", TypeId::kInt64), Column("s", TypeId::kVarchar, 8)},
                     {"id"});
  EXPECT_TRUE(inst.db->CreateTable(schema).ok());
  for (size_t i = 0; i < num_rows; ++i) {
    Row row{Value::Int(static_cast<int64_t>(i)),
            rng->Bernoulli(0.1) ? Value::Null(TypeId::kInt64)
                                : Value::Int(rng->UniformInt(-20, 20)),
            rng->Bernoulli(0.1) ? Value::Null(TypeId::kInt64)
                                : Value::Int(rng->UniformInt(0, 5)),
            Value::Varchar(std::string(1, static_cast<char>('a' + rng->Index(4))))};
    EXPECT_TRUE(inst.db->Insert("t", row).ok());
    inst.rows.push_back(std::move(row));
  }
  EXPECT_TRUE(inst.db->AnalyzeAll().ok());
  return inst;
}

std::unique_ptr<Bookstore> Bookstore::Make() {
  auto out = std::make_unique<Bookstore>();
  Bookstore& s = *out;
  LogicalSchema& L = s.logical;
  s.author = L.AddEntity("author", "a_id");
  s.book = L.AddEntity("book", "b_id");
  s.user = L.AddEntity("user", "u_id");
  s.a_id = *L.AttrByName("a_id");
  s.b_id = *L.AttrByName("b_id");
  s.u_id = *L.AttrByName("u_id");
  s.a_name = *L.AddAttribute(s.author, "a_name", TypeId::kVarchar, 16);
  s.a_bio = *L.AddAttribute(s.author, "a_bio", TypeId::kVarchar, 40);
  s.b_title = *L.AddAttribute(s.book, "b_title", TypeId::kVarchar, 24);
  s.b_cost = *L.AddAttribute(s.book, "b_cost", TypeId::kDouble);
  s.b_a_id = *L.AddForeignKey(s.book, "b_a_id", s.author);
  s.b_abstract = *L.AddAttribute(s.book, "b_abstract", TypeId::kVarchar, 60, /*is_new=*/true);
  s.u_name = *L.AddAttribute(s.user, "u_name", TypeId::kVarchar, 16);
  s.u_bday = *L.AddAttribute(s.user, "u_bday", TypeId::kInt64);
  s.u_addr = *L.AddAttribute(s.user, "u_addr", TypeId::kVarchar, 32);

  s.source = PhysicalSchema(&L);
  (void)s.source.AddTable("author", s.author, {s.a_name, s.a_bio});
  (void)s.source.AddTable("book", s.book, {s.b_title, s.b_cost, s.b_a_id});
  (void)s.source.AddTable("user", s.user, {s.u_name, s.u_bday, s.u_addr});

  s.object = PhysicalSchema(&L);
  (void)s.object.AddTable("glossary", s.book,
                          {s.b_title, s.b_cost, s.b_a_id, s.a_name, s.a_bio, s.b_abstract});
  (void)s.object.AddTable("user_gen", s.user, {s.u_name, s.u_bday});
  (void)s.object.AddTable("user_rest", s.user, {s.u_addr});
  return out;
}

std::unique_ptr<LogicalDatabase> Bookstore::MakeData(int authors, int books_per_author,
                                                     int users) const {
  auto data = std::make_unique<LogicalDatabase>(&logical);
  for (int a = 0; a < authors; ++a) {
    // attribute order: a_id, a_name, a_bio
    (void)data->AddRow(author, {Value::Int(a), Value::Varchar("author-" + std::to_string(a)),
                                Value::Varchar("bio of author " + std::to_string(a))});
  }
  int b = 0;
  for (int a = 0; a < authors; ++a) {
    for (int k = 0; k < books_per_author; ++k, ++b) {
      // attribute order: b_id, b_title, b_cost, b_a_id, b_abstract
      (void)data->AddRow(book, {Value::Int(b), Value::Varchar("title-" + std::to_string(b)),
                                Value::Double(5.0 + b % 37), Value::Int(a),
                                Value::Varchar("abstract for book " + std::to_string(b))});
    }
  }
  for (int u = 0; u < users; ++u) {
    // attribute order: u_id, u_name, u_bday, u_addr
    (void)data->AddRow(user, {Value::Int(u), Value::Varchar("user-" + std::to_string(u)),
                              Value::Int(19600101 + u * 37),
                              Value::Varchar("street " + std::to_string(u * 7))});
  }
  return data;
}

Row FullEntityRow(const LogicalSchema& lg, EntityId e, int64_t key,
                  const std::vector<AttrId>& attrs, const std::vector<Value>& values) {
  const LogicalEntity& ent = lg.entity(e);
  Row row;
  for (AttrId a : ent.attributes) {
    if (a == ent.key) {
      row.push_back(Value::Int(key));
      continue;
    }
    Value v = Value::Null(lg.attr(a).type);
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == a) v = values[i];
    }
    row.push_back(std::move(v));
  }
  return row;
}

std::optional<int64_t> MirrorChainKey(const LogicalDatabase& mirror, EntityId from,
                                      int64_t from_key, EntityId to,
                                      const std::map<AttrId, Value>& overrides) {
  const LogicalSchema& lg = mirror.logical();
  if (from == to) return from_key;
  auto path = lg.FkPath(from, to);
  if (!path.ok()) return std::nullopt;
  EntityId cur = from;
  int64_t cur_key = from_key;
  for (AttrId fk : *path) {
    Value v;
    auto ov = overrides.find(fk);
    if (ov != overrides.end()) {
      v = ov->second;
    } else {
      const Row* r = mirror.FindByKey(cur, cur_key);
      if (r == nullptr) return std::nullopt;
      auto got = mirror.AttrOfRow(cur, *r, fk);
      if (!got.ok()) return std::nullopt;
      v = *got;
    }
    if (v.is_null() || v.type() != TypeId::kInt64) return std::nullopt;
    cur = *lg.attr(fk).references;
    cur_key = v.AsInt();
  }
  return cur_key;
}

void MirrorApply(LogicalDatabase* mirror, const LogicalDml& dml) {
  const LogicalSchema& lg = mirror->logical();
  EntityId anchor = dml.table.anchor;
  bool exists = mirror->FindByKey(anchor, dml.key) != nullptr;
  std::map<AttrId, Value> provided;
  for (size_t i = 0; i < dml.set_attrs.size(); ++i) provided[dml.set_attrs[i]] = dml.set_values[i];

  switch (dml.kind) {
    case DmlKind::kInsert: {
      if (exists) return;
      std::vector<EntityId> parents;
      for (AttrId a : dml.set_attrs) {
        EntityId e = lg.attr(a).entity;
        if (e == anchor) continue;
        if (std::find(parents.begin(), parents.end(), e) == parents.end()) parents.push_back(e);
      }
      for (EntityId e : parents) {
        auto pk = MirrorChainKey(*mirror, anchor, dml.key, e, provided);
        if (!pk.has_value() || mirror->FindByKey(e, *pk) != nullptr) continue;
        ASSERT_TRUE(
            mirror->AddRow(e, FullEntityRow(lg, e, *pk, dml.set_attrs, dml.set_values)).ok());
      }
      ASSERT_TRUE(
          mirror->AddRow(anchor, FullEntityRow(lg, anchor, dml.key, dml.set_attrs, dml.set_values))
              .ok());
      return;
    }
    case DmlKind::kUpdate: {
      if (!exists) return;
      std::vector<AttrId> own_attrs;
      std::vector<Value> own_values;
      std::vector<EntityId> parents;
      for (size_t i = 0; i < dml.set_attrs.size(); ++i) {
        EntityId e = lg.attr(dml.set_attrs[i]).entity;
        if (e == anchor) {
          own_attrs.push_back(dml.set_attrs[i]);
          own_values.push_back(dml.set_values[i]);
        } else if (std::find(parents.begin(), parents.end(), e) == parents.end()) {
          parents.push_back(e);
        }
      }
      // Anchor first: parent rows are located through the updated FKs.
      ASSERT_TRUE(mirror->UpdateRow(anchor, dml.key, own_attrs, own_values).ok());
      for (EntityId e : parents) {
        auto pk = MirrorChainKey(*mirror, anchor, dml.key, e, provided);
        if (!pk.has_value() || mirror->FindByKey(e, *pk) == nullptr) continue;
        std::vector<AttrId> attrs;
        std::vector<Value> values;
        for (size_t i = 0; i < dml.set_attrs.size(); ++i) {
          if (lg.attr(dml.set_attrs[i]).entity != e) continue;
          attrs.push_back(dml.set_attrs[i]);
          values.push_back(dml.set_values[i]);
        }
        ASSERT_TRUE(mirror->UpdateRow(e, *pk, attrs, values).ok());
      }
      return;
    }
    case DmlKind::kDelete: {
      if (!exists) return;
      ASSERT_TRUE(mirror->DeleteRow(anchor, dml.key).ok());
      return;
    }
    case DmlKind::kSelect:
      FAIL() << "SELECT is not DML";
  }
}

void ExpectStateMatchesMirror(Database* db, const LogicalDatabase& mirror,
                              const PhysicalSchema& schema, const std::string& where) {
  Database scratch(1024);
  ASSERT_TRUE(mirror.Materialize(&scratch, schema).ok()) << where;
  for (const PhysicalTable& t : schema.tables()) {
    std::vector<Row> got = SortRows(TableRows(db, t.name));
    std::vector<Row> want = SortRows(TableRows(&scratch, t.name));
    if (SameRows(got, want)) continue;
    auto dump = [](const std::vector<Row>& rows) {
      std::string out;
      for (const Row& r : rows) {
        out += "  [";
        for (size_t i = 0; i < r.size(); ++i) out += (i ? ", " : "") + r[i].ToString();
        out += "]\n";
      }
      return out;
    };
    ADD_FAILURE() << where << ": table '" << t.name
                  << "' diverges from the entity-level mirror\nrouter (" << got.size()
                  << " rows):\n"
                  << dump(got) << "mirror (" << want.size() << " rows):\n"
                  << dump(want);
  }
}

}  // namespace testutil
}  // namespace pse
