#include "common/status.h"

#include <gtest/gtest.h>

namespace pse {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::InvalidArgument("bad");
  Status t = s;
  EXPECT_TRUE(t.IsInvalidArgument());
  EXPECT_EQ(t.message(), "bad");
  EXPECT_TRUE(s.IsInvalidArgument());  // source untouched
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::IOError("disk gone");
  Status t = std::move(s);
  EXPECT_EQ(t.code(), StatusCode::kIOError);
  EXPECT_EQ(t.message(), "disk gone");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ResourceExhausted("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::ConstraintViolation("").code(), StatusCode::kConstraintViolation);
}

Result<int> ReturnsValue() { return 42; }
Result<int> ReturnsError() { return Status::Internal("boom"); }

TEST(ResultTest, ValueAccess) {
  Result<int> r = ReturnsValue();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r = ReturnsError();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<std::string> Concat(bool fail) {
  if (fail) return Status::InvalidArgument("no");
  return std::string("hello");
}

Status UseAssignOrReturn(bool fail, std::string* out) {
  PSE_ASSIGN_OR_RETURN(std::string v, Concat(fail));
  *out = v + "!";
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  std::string out;
  EXPECT_TRUE(UseAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, "hello!");
  Status s = UseAssignOrReturn(true, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
}

Status UseReturnNotOk(bool fail) {
  PSE_RETURN_NOT_OK(fail ? Status::IOError("x") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UseReturnNotOk(false).ok());
  EXPECT_EQ(UseReturnNotOk(true).code(), StatusCode::kIOError);
}

TEST(ResultTest, MoveValueUnsafeTransfersOwnership) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = r.MoveValueUnsafe();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace pse
