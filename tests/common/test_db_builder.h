// Shared database builders and row-set helpers for tests.
//
// Three families of suites kept re-implementing the same scaffolding: the
// engine's differential tests (a random single-table instance plus a ground-
// truth row copy), the core migration tests (sorted table dumps and row-set
// equality), and everything fixture-shaped around the paper's miniature
// bookstore. They live here once; tests/core/core_test_util.h remains as a
// shim for the historical include path.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/logical_database.h"
#include "core/logical_schema.h"
#include "core/physical_schema.h"
#include "core/rewriter_dml.h"
#include "storage/database.h"

namespace pse {
namespace testutil {

/// Sorts rows lexicographically by Value::Compare (column by column, then by
/// width) so order-insensitive result sets can be compared index-wise.
std::vector<Row> SortRows(std::vector<Row> rows);

/// Sorted contents of one table (whole rows). Reports a gtest failure and
/// returns empty when the table does not exist.
std::vector<Row> TableRows(Database* db, const std::string& name);

/// Element-wise equality of two row sets (same order, same arity, Compare==0
/// per value). Combine with SortRows for order-insensitive comparison.
bool SameRows(const std::vector<Row>& a, const std::vector<Row>& b);

/// A random single-table instance plus its ground-truth row copy, for
/// differential testing against a naive reference evaluator.
struct RandomInstance {
  std::unique_ptr<Database> db;
  std::vector<Row> rows;
};

/// Builds a table t(id BIGINT, a BIGINT, b BIGINT, s VARCHAR) with random
/// data, including NULLs, and ANALYZEs it.
RandomInstance MakeInstance(Rng* rng, size_t num_rows);

/// The paper's miniature bookstore: author/book/user source schema, a
/// combined glossary + split user object schema, and deterministic covering
/// data. Fixture for core, analysis, and (now) engine suites.
struct Bookstore {
  // PhysicalSchema holds a pointer to `logical`, so a Bookstore must never
  // be copied or moved; Make() heap-allocates it.
  Bookstore() = default;
  Bookstore(const Bookstore&) = delete;
  Bookstore& operator=(const Bookstore&) = delete;

  LogicalSchema logical;
  EntityId author = kInvalidId, book = kInvalidId, user = kInvalidId;
  AttrId a_id, a_name, a_bio;
  AttrId b_id, b_title, b_cost, b_a_id, b_abstract;  // b_abstract is new
  AttrId u_id, u_name, u_bday, u_addr;
  PhysicalSchema source;
  PhysicalSchema object;

  /// Paper-style schemas:
  ///   source: author(a_id,a_name,a_bio), book(b_id,b_title,b_cost,b_a_id),
  ///           user(u_id,u_name,u_bday,u_addr)
  ///   object: glossary = book x author (+ new b_abstract) anchored at book,
  ///           user_gen(u_id,u_name,u_bday), user_rest(u_id,u_addr)
  static std::unique_ptr<Bookstore> Make();

  /// Deterministic data: `authors` authors, `books_per_author` books each
  /// (covering: every author has books), `users` users.
  std::unique_ptr<LogicalDatabase> MakeData(int authors = 10, int books_per_author = 20,
                                            int users = 50) const;
};

// --- entity-level DML mirror (write-side differential oracles) ---
//
// Reference semantics of one LogicalDml applied directly to a
// LogicalDatabase, matching the DmlRouter's documented entity-level
// behavior: idempotent INSERT (existing parents win, bare parents created),
// no-op UPDATE/DELETE of absent rows, anchor assignments before parent
// assignments. A physical database driven through the router must equal a
// fresh materialization of the mirror after any statement sequence.

/// Full entity row for `e`: key at the key position, provided attributes at
/// theirs, typed NULL elsewhere. Attributes not belonging to `e` are
/// ignored, so a version table carrying parent attributes can share one
/// provided list.
Row FullEntityRow(const LogicalSchema& lg, EntityId e, int64_t key,
                  const std::vector<AttrId>& attrs, const std::vector<Value>& values);

/// Key of entity `to` reachable from (from, from_key) by the FK chain;
/// values come from `overrides` first (the statement's assignments), then
/// the mirror's stored rows. nullopt when any hop is NULL or dangling.
std::optional<int64_t> MirrorChainKey(const LogicalDatabase& mirror, EntityId from,
                                      int64_t from_key, EntityId to,
                                      const std::map<AttrId, Value>& overrides);

/// Applies `dml` to the mirror (reports gtest failures on mirror errors).
void MirrorApply(LogicalDatabase* mirror, const LogicalDml& dml);

/// Every table of `schema` in `db` must equal a fresh materialization of the
/// mirror, row for row; divergence dumps both sides as a gtest failure.
void ExpectStateMatchesMirror(Database* db, const LogicalDatabase& mirror,
                              const PhysicalSchema& schema, const std::string& where);

}  // namespace testutil
}  // namespace pse
