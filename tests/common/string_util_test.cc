#include "common/string_util.h"

#include <gtest/gtest.h>

namespace pse {
namespace {

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("HeLLo123"), "hello123");
  EXPECT_EQ(ToUpper("HeLLo123"), "HELLO123");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> v{"x", "y", "z"};
  EXPECT_EQ(Join(v, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(LikeMatchTest, ExactMatch) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
}

TEST(LikeMatchTest, PercentWildcard) {
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "%lo wo%"));
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("hello", "%z%"));
}

TEST(LikeMatchTest, UnderscoreWildcard) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("caat", "c_t"));
  EXPECT_TRUE(LikeMatch("abc", "___"));
  EXPECT_FALSE(LikeMatch("ab", "___"));
}

TEST(LikeMatchTest, MixedWildcards) {
  EXPECT_TRUE(LikeMatch("database systems", "d%_ systems"));
  EXPECT_TRUE(LikeMatch("aXbYc", "a_b_c"));
  EXPECT_TRUE(LikeMatch("abc", "%a%b%c%"));
  EXPECT_FALSE(LikeMatch("acb", "%a%b%c%"));
}

TEST(LikeMatchTest, BacktrackingStress) {
  // Patterns that defeat naive exponential matchers.
  std::string s(50, 'a');
  EXPECT_TRUE(LikeMatch(s, "%a%a%a%a%a%a%a%a%a%a%"));
  EXPECT_FALSE(LikeMatch(s, "%a%a%a%a%a%b%"));
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(100ull * 1024 * 1024), "100.0 MiB");
  EXPECT_EQ(FormatBytes(1ull << 30), "1.0 GiB");
}

TEST(StringUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

}  // namespace
}  // namespace pse
