#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pse {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, AlphaStringFormat) {
  Rng rng(19);
  std::string s = rng.AlphaString(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RngTest, ReseedReproduces) {
  Rng rng(23);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.Next());
  rng.Seed(23);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

}  // namespace
}  // namespace pse
