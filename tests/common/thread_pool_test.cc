// Tests for the fixed-size ThreadPool: exact index coverage, reuse across
// jobs, the serial single-lane fallback, and concurrent-counter integrity
// (the latter is what the TSAN leg of scripts/check.sh exercises).
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pse {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsClamped) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  EXPECT_LE(ThreadPool::DefaultThreadCount(), 16u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroAndSingleElementJobs) {
  ThreadPool pool(3);
  int calls = 0;  // unsynchronized on purpose: these jobs must run inline
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int job = 0; job < 50; ++job) {
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  }
  EXPECT_EQ(sum.load(), 50L * (99L * 100L / 2));
}

TEST(ThreadPoolTest, SingleLanePoolRunsOnTheCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.ParallelFor(seen.size(), [&](size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ManyMoreItemsThanLanes) {
  ThreadPool pool(4);
  std::atomic<size_t> count{0};
  pool.ParallelFor(10007, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10007u);
}

}  // namespace
}  // namespace pse
