#!/usr/bin/env bash
# One-command gate: sanitized build + full test suite + static lint.
#
#   scripts/check.sh            # ASan+UBSan build, ctest, clang-tidy, format
#   scripts/check.sh --fast     # skip the lint passes (build + test only)
#   scripts/check.sh --tsan     # ThreadSanitizer build + the concurrency
#                               # test suites (thread pool, cost cache,
#                               # parallel planners, concurrent serving
#                               # stress) — nothing else; latches are
#                               # lockdep-instrumented so stress suites
#                               # assert a clean lock-order report
#   scripts/check.sh --lockdep  # PROGSCHEMA_LOCKDEP=ON build, full test
#                               # suite, then sql_shell .lockgraph — fails
#                               # on any recorded lock-order violation and
#                               # leaves the DOT dump in
#                               # build-lockdep/lockgraph.dot
#
# clang-tidy and clang-format passes are skipped with a notice when the
# tools are not installed; the sanitizer build and tests always run.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
tsan=0
lockdep=0
case "${1:-}" in
  --fast) fast=1 ;;
  --tsan) tsan=1 ;;
  --lockdep) lockdep=1 ;;
esac

jobs="$(nproc 2>/dev/null || echo 4)"

if [ "$lockdep" -eq 1 ]; then
  build_dir="build-lockdep"
  echo "== check: configuring lockdep build ($build_dir, PROGSCHEMA_LOCKDEP=ON) =="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPROGSCHEMA_LOCKDEP=ON \
    -DPROGSCHEMA_WERROR=ON >/dev/null

  echo "== check: building =="
  cmake --build "$build_dir" -j "$jobs"

  echo "== check: running full suite with lockdep instrumentation =="
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs")

  echo "== check: dumping instrumented lock graph (.serve workload + .lockgraph) =="
  lockgraph_out="$build_dir/lockgraph.out"
  # argv mode propagates the diagnostic error count as the exit code, so a
  # violating run fails here even before the grep below.
  "$build_dir/examples/sql_shell" ".serve" ".lockgraph" | tee "$lockgraph_out"
  sed -n '/^digraph lockorder/,/^}/p' "$lockgraph_out" > "$build_dir/lockgraph.dot"
  if ! grep -q '^digraph lockorder' "$build_dir/lockgraph.dot"; then
    echo "== check: FAILED (no lock graph in .lockgraph output) =="
    exit 1
  fi
  if grep -E 'LOCK_(ORDER_INVERSION|UPGRADE|RECURSIVE|HELD_ACROSS_IO|CYCLE)' "$lockgraph_out" >/dev/null; then
    echo "== check: FAILED (lock-order violations in .lockgraph report) =="
    exit 1
  fi

  echo "== check: OK (lockdep; DOT dump at $build_dir/lockgraph.dot) =="
  exit 0
fi

if [ "$tsan" -eq 1 ]; then
  build_dir="build-tsan"
  echo "== check: configuring TSan build ($build_dir, thread + lockdep) =="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPROGSCHEMA_SANITIZE=thread \
    -DPROGSCHEMA_LOCKDEP=ON \
    -DPROGSCHEMA_WERROR=ON >/dev/null

  echo "== check: building concurrency + fault-injection suites =="
  cmake --build "$build_dir" -j "$jobs" \
    --target common_test engine_test core_test analysis_test storage_test concurrency_test \
    --target fleet_test

  echo "== check: running concurrency + fault-injection suites under TSan =="
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs" \
    -R '^(common_test|engine_test|core_test|analysis_test|storage_test|concurrency_test|fleet_test)$')

  echo "== check: OK (tsan) =="
  exit 0
fi

build_dir="build-check"

echo "== check: configuring sanitized build ($build_dir, address+undefined) =="
cmake -B "$build_dir" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPROGSCHEMA_SANITIZE=address,undefined \
  -DPROGSCHEMA_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

echo "== check: building =="
cmake --build "$build_dir" -j "$jobs"

echo "== check: running tests under ASan+UBSan =="
(cd "$build_dir" && ctest --output-on-failure -j "$jobs")

if [ "$fast" -eq 1 ]; then
  echo "== check: OK (fast mode, lint skipped) =="
  exit 0
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== check: clang-tidy over src/ =="
  mapfile -t tidy_files < <(git ls-files 'src/*.cc' \
    ':!src/analysis/*.cc' ':!src/common/thread_pool.cc' ':!src/common/lock_registry.cc' \
    ':!src/engine/cost_cache.cc' ':!src/core/cost_estimator.cc' \
    ':!src/core/migration_executor.cc' ':!src/storage/migration_journal.cc' \
    ':!src/core/rewriter_dml.cc' ':!src/fleet/*.cc' \
    ':!src/engine/tuple_batch.cc' ':!src/engine/expr_vec.cc' ':!src/engine/vec_executor.cc')
  clang-tidy -p "$build_dir" --quiet "${tidy_files[@]}"
  # The analysis module and the concurrency/costing/online-migration targets
  # — plus the vectorized engine, whose per-batch latching rides the same
  # discipline — are held to a stricter bar: any enabled check firing there
  # fails the gate outright.
  # (the write rewriter, src/core/rewriter_dml.cc, rides the strict set too:
  # its fan-out writes and frontier dual-apply share the migration executor's
  # latching discipline, as does the whole fleet layer — scheduler lanes,
  # shard advance, the shared plan cache)
  echo "== check: clang-tidy (strict, warnings-as-errors) over src/analysis/ + concurrency + migration + write-rewriter + vectorized-engine + fleet targets =="
  mapfile -t strict_files < <(git ls-files 'src/analysis/*.cc' \
    'src/common/thread_pool.cc' 'src/common/lock_registry.cc' \
    'src/engine/cost_cache.cc' 'src/core/cost_estimator.cc' \
    'src/core/migration_executor.cc' 'src/storage/migration_journal.cc' \
    'src/core/rewriter_dml.cc' 'src/fleet/*.cc' \
    'src/engine/tuple_batch.cc' 'src/engine/expr_vec.cc' 'src/engine/vec_executor.cc')
  clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' "${strict_files[@]}"
else
  echo "== check: clang-tidy not found; skipping lint =="
fi

scripts/format-check.sh

echo "== check: OK =="
