#!/usr/bin/env bash
# Verifies that all tracked C++ sources satisfy .clang-format.
# Skips (exit 0) with a notice when clang-format is not installed, so the
# check degrades gracefully on minimal toolchains.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format-check: clang-format not found; skipping (install clang-format to enable)"
  exit 0
fi

mapfile -t files < <(git ls-files '*.cc' '*.cpp' '*.h' '*.hpp')
if [ "${#files[@]}" -eq 0 ]; then
  echo "format-check: no C++ sources tracked"
  exit 0
fi

echo "format-check: checking ${#files[@]} files with $(clang-format --version)"
clang-format --dry-run -Werror "${files[@]}"
echo "format-check: OK"
