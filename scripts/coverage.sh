#!/usr/bin/env bash
# Line-coverage gate over the migration-critical modules.
#
#   scripts/coverage.sh            # coverage build + ctest + gcovr report
#   scripts/coverage.sh --floor N  # additionally fail when
#                                  # src/core/migration_executor.cc line
#                                  # coverage drops below N percent
#
# The report covers src/core + src/storage (the online-migration execution
# path). With gcovr installed, writes coverage.xml (Cobertura) and
# coverage.txt into the build dir for CI to upload; without it, falls back
# to plain gcov for the floor check and skips the report artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

floor=""
if [ "${1:-}" = "--floor" ]; then
  floor="${2:?--floor needs a percentage}"
fi

jobs="$(nproc 2>/dev/null || echo 4)"
build_dir="build-coverage"

echo "== coverage: configuring instrumented build ($build_dir) =="
cmake -B "$build_dir" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPROGSCHEMA_COVERAGE=ON >/dev/null

echo "== coverage: building =="
cmake --build "$build_dir" -j "$jobs" >/dev/null

echo "== coverage: running the test suite =="
(cd "$build_dir" && ctest --output-on-failure -j "$jobs" >/dev/null)

target_file="src/core/migration_executor.cc"

if command -v gcovr >/dev/null 2>&1; then
  echo "== coverage: gcovr report over src/core + src/storage =="
  gcovr --root . --object-directory "$build_dir" \
    --filter 'src/core/.*' --filter 'src/storage/.*' \
    --xml "$build_dir/coverage.xml" \
    --txt "$build_dir/coverage.txt" \
    --print-summary
  cat "$build_dir/coverage.txt"
  # Row format: name, lines, exec, cover%, missing-ranges — find the % field.
  pct="$(awk -v f="$target_file" '$0 ~ f {
      for (i = 1; i <= NF; ++i) if ($i ~ /%$/) { gsub(/%/, "", $i); print $i; exit }
    }' "$build_dir/coverage.txt")"
else
  echo "== coverage: gcovr not found; falling back to gcov =="
  # gcno/gcda live next to the object files; resolve the executor's.
  obj_dir="$(dirname "$(find "$build_dir" -name 'migration_executor.cc.gcda' | head -1)")"
  if [ -z "$obj_dir" ]; then
    echo "coverage: no .gcda for $target_file — tests did not exercise it" >&2
    exit 1
  fi
  # gcov reports one block per file; take the percentage that follows the
  # executor's own "File '...'" line (headers get their own blocks).
  pct="$( (cd "$obj_dir" && gcov -n migration_executor.cc.gcda 2>/dev/null) \
    | awk -v f="migration_executor.cc" '
        /^File / { hit = index($0, f) > 0 }
        hit && /^Lines executed:/ {
          split($2, parts, ":"); gsub(/%/, "", parts[2]); print parts[2]; exit
        }' )"
fi

if [ -z "${pct:-}" ]; then
  echo "coverage: could not determine $target_file line coverage" >&2
  exit 1
fi
echo "== coverage: $target_file line coverage: ${pct}% =="

if [ -n "$floor" ]; then
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "coverage: $target_file at ${pct}% is below the ${floor}% floor" >&2
    exit 1
  fi
  echo "== coverage: floor ${floor}% OK =="
fi
