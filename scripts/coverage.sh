#!/usr/bin/env bash
# Line-coverage gate over the migration-critical modules.
#
#   scripts/coverage.sh            # coverage build + ctest + gcovr report
#   scripts/coverage.sh --floor N  # additionally fail when any gated file's
#                                  # line coverage drops below N percent
#
# The report covers src/core + src/storage (the online-migration execution
# path), src/analysis (the static verification stack), the vectorized
# engine core, and the multi-tenant fleet layer; the floor gates
# src/core/migration_executor.cc, src/core/rewriter_dml.cc (the write
# rewriter), src/analysis/writability.cc, src/engine/vec_executor.cc, and
# src/fleet/scheduler.cc (the fleet scheduler). With gcovr
# installed, writes coverage.xml (Cobertura) and coverage.txt into the build
# dir for CI to upload; without it, falls back to plain gcov for the floor
# check and skips the report artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

floor=""
if [ "${1:-}" = "--floor" ]; then
  floor="${2:?--floor needs a percentage}"
fi

jobs="$(nproc 2>/dev/null || echo 4)"
build_dir="build-coverage"

echo "== coverage: configuring instrumented build ($build_dir) =="
cmake -B "$build_dir" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPROGSCHEMA_COVERAGE=ON >/dev/null

echo "== coverage: building =="
cmake --build "$build_dir" -j "$jobs" >/dev/null

echo "== coverage: running the test suite =="
(cd "$build_dir" && ctest --output-on-failure -j "$jobs" >/dev/null)

target_files=(
  "src/core/migration_executor.cc"
  "src/core/rewriter_dml.cc"
  "src/analysis/writability.cc"
  "src/engine/vec_executor.cc"
  "src/fleet/scheduler.cc"
)

if command -v gcovr >/dev/null 2>&1; then
  echo "== coverage: gcovr report over src/core + src/storage + src/analysis + vec engine + fleet =="
  gcovr --root . --object-directory "$build_dir" \
    --filter 'src/core/.*' --filter 'src/storage/.*' --filter 'src/analysis/.*' \
    --filter 'src/engine/vec_executor\.cc' --filter 'src/fleet/.*' \
    --xml "$build_dir/coverage.xml" \
    --txt "$build_dir/coverage.txt" \
    --print-summary
  cat "$build_dir/coverage.txt"
fi

# Per-file line coverage: from the gcovr table when available, else gcov.
file_pct() {
  local target_file="$1"
  local base; base="$(basename "$target_file")"
  if command -v gcovr >/dev/null 2>&1; then
    # Row format: name, lines, exec, cover%, missing-ranges — find the % field.
    awk -v f="$target_file" '$0 ~ f {
        for (i = 1; i <= NF; ++i) if ($i ~ /%$/) { gsub(/%/, "", $i); print $i; exit }
      }' "$build_dir/coverage.txt"
    return
  fi
  # gcno/gcda live next to the object files; resolve this file's. -quit (not
  # `| head -1`) so find exits itself — under pipefail a SIGPIPE'd find would
  # abort the whole script.
  local gcda; gcda="$(find "$build_dir" -name "$base.gcda" -print -quit)"
  if [ -z "$gcda" ]; then
    return
  fi
  local obj_dir; obj_dir="$(dirname "$gcda")"
  if [ -z "$obj_dir" ]; then
    return
  fi
  # gcov reports one block per file; take the percentage that follows the
  # file's own "File '...'" line (headers get their own blocks). Capture the
  # report before awk — an early awk exit would SIGPIPE gcov under pipefail.
  local report; report="$( (cd "$obj_dir" && gcov -n "$base.gcda" 2>/dev/null) || true )"
  awk -v f="$base" '
      /^File / { hit = index($0, f) > 0 }
      hit && /^Lines executed:/ {
        split($2, parts, ":"); gsub(/%/, "", parts[2]); print parts[2]; exit
      }' <<<"$report"
}

if ! command -v gcovr >/dev/null 2>&1; then
  echo "== coverage: gcovr not found; falling back to gcov =="
fi

failed=0
for target_file in "${target_files[@]}"; do
  pct="$(file_pct "$target_file")"
  if [ -z "${pct:-}" ]; then
    echo "coverage: could not determine $target_file line coverage" >&2
    failed=1
    continue
  fi
  echo "== coverage: $target_file line coverage: ${pct}% =="
  if [ -n "$floor" ]; then
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
      echo "coverage: $target_file at ${pct}% is below the ${floor}% floor" >&2
      failed=1
    fi
  fi
done
if [ "$failed" -ne 0 ]; then
  exit 1
fi
if [ -n "$floor" ]; then
  echo "== coverage: floor ${floor}% OK =="
fi
