#!/usr/bin/env bash
# Builds (Release) and runs the machine-readable benches, leaving their JSON
# artifacts in the repo root — the project's perf trajectory across PRs.
#
#   scripts/bench.sh            # build + run, writes BENCH_laa_scaling.json
#                               # and BENCH_engine_micro.json
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"
build_dir="build-bench"

echo "== bench: configuring Release build ($build_dir) =="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "== bench: building =="
cmake --build "$build_dir" -j "$jobs" --target bench_laa_scaling --target bench_engine_micro \
  --target bench_fleet >/dev/null

echo "== bench: LAA scaling (pruned vs brute force vs cached vs GAA) =="
"$build_dir"/bench/bench_laa_scaling --json=BENCH_laa_scaling.json

echo "== bench: validating BENCH_laa_scaling.json =="
# Skipped brute runs must be JSON null, never a numeric sentinel, and every
# brute row must agree with the pruned and cached sweeps bit-for-bit.
if grep -E '"schemas_evaluated_brute_run": -1|"exhaustive_ms": -1' BENCH_laa_scaling.json; then
  echo "bench JSON uses numeric sentinels for skipped brute runs (want null)" >&2
  exit 1
fi
if grep -q '"cost_equal_to_brute": false' BENCH_laa_scaling.json; then
  echo "pruned/cached LAA disagreed with brute force on some row" >&2
  exit 1
fi
grep -q '"cached_ms"' BENCH_laa_scaling.json || {
  echo "bench JSON is missing the cached-run columns" >&2
  exit 1
}
# The online-migration section must be present (batch size, I/O budget,
# per-phase probe I/O) and at least one phase must have committed batches.
for key in '"online_migration"' '"batch_rows"' '"io_budget"' '"probe_io"'; do
  grep -q "$key" BENCH_laa_scaling.json || {
    echo "bench JSON is missing the online-migration key $key" >&2
    exit 1
  }
done
grep -Eq '"batches": [1-9]' BENCH_laa_scaling.json || {
  echo "online migration committed no batches in any phase" >&2
  exit 1
}
# The concurrent-serving section must report per-phase throughput and latency
# quantiles for at least 4 live sessions, and those sessions must have
# answered real queries.
for key in '"concurrent_serving"' '"throughput_qps"' '"p50_ms"' '"p95_ms"' '"p99_ms"'; do
  grep -q "$key" BENCH_laa_scaling.json || {
    echo "bench JSON is missing the concurrent-serving key $key" >&2
    exit 1
  }
done
grep -q '"sessions": 4' BENCH_laa_scaling.json || {
  echo "concurrent serving has no 4-session rows" >&2
  exit 1
}
grep -Eq '"sessions": [48], "phase": [0-9]+, "queries": [1-9]' BENCH_laa_scaling.json || {
  echo "concurrent serving answered no queries in any phase" >&2
  exit 1
}
# Lockdep is a compile-time option and this is a lockdep-off Release build:
# the serving numbers must stay at the seed level (~3.4-4.9k qps on the CI
# class of machine). A generous floor catches the instrumentation being
# accidentally compiled in (or another order-of-magnitude regression)
# without flaking on slow runners.
peak_qps="$(grep -o '"throughput_qps": [0-9.]*' BENCH_laa_scaling.json \
  | awk '{ if ($2 > m) m = $2 } END { printf "%d", m }')"
if [ "${peak_qps:-0}" -lt 1000 ]; then
  echo "concurrent serving peak throughput ${peak_qps} qps is below the 1000 qps floor" >&2
  exit 1
fi
echo "== bench: peak concurrent-serving throughput ${peak_qps} qps (floor 1000) =="
# The serving sweep runs every session count under both engines; the
# vectorized lanes must be present and clear the same floor on their own.
grep -q '"vectorized": true' BENCH_laa_scaling.json || {
  echo "concurrent serving has no vectorized-engine rows" >&2
  exit 1
}
vec_peak_qps="$(grep '"vectorized": true' BENCH_laa_scaling.json \
  | grep -o '"throughput_qps": [0-9.]*' \
  | awk '{ if ($2 > m) m = $2 } END { printf "%d", m }')"
if [ "${vec_peak_qps:-0}" -lt 1000 ]; then
  echo "vectorized serving peak throughput ${vec_peak_qps} qps is below the 1000 qps floor" >&2
  exit 1
fi
echo "== bench: peak vectorized serving throughput ${vec_peak_qps} qps (floor 1000) =="
# The mixed read/write section must be present, the writer lanes must have
# applied real statements through the write rewriter, and no row may report
# a non-bind failure (unservable write windows are counted, never errors).
for key in '"mixed_rw_serving"' '"write_fraction"' '"unservable_writes"' '"fragment_writes"' \
  '"dual_applied"'; do
  grep -q "$key" BENCH_laa_scaling.json || {
    echo "bench JSON is missing the mixed-rw key $key" >&2
    exit 1
  }
done
grep -Eq '"writes": [1-9]' BENCH_laa_scaling.json || {
  echo "mixed read/write serving applied no writes in any row" >&2
  exit 1
}
if sed -n '/"mixed_rw_serving"/,$p' BENCH_laa_scaling.json | grep -Eq '"errors": [1-9]'; then
  echo "mixed read/write serving reported write-path errors" >&2
  exit 1
fi

echo "== bench: engine micro (row vs vectorized execution) =="
"$build_dir"/bench/bench_engine_micro --json=BENCH_engine_micro.json

echo "== bench: validating BENCH_engine_micro.json =="
for key in '"scan_filter_project"' '"zero_copy_project"' '"row_ms"' '"vectorized_ms"' \
  '"row_rows_per_s"' '"vectorized_rows_per_s"' '"speedup"'; do
  grep -q "$key" BENCH_engine_micro.json || {
    echo "engine micro JSON is missing the key $key" >&2
    exit 1
  }
done
# The vectorized engine must beat the row engine by at least 2x on the
# scan->filter->project micro (column-pruned batch decode vs per-row
# full-tuple deserialization); anything less means the batch path lost its
# structural edge.
sfp_speedup="$(grep '"scan_filter_project"' BENCH_engine_micro.json \
  | grep -o '"speedup": [0-9.]*' | awk '{print $2}')"
if ! awk -v s="${sfp_speedup:-0}" 'BEGIN { exit !(s >= 2.0) }'; then
  echo "vectorized scan-filter-project speedup ${sfp_speedup}x is below the 2.0x floor" >&2
  exit 1
fi
echo "== bench: vectorized scan-filter-project speedup ${sfp_speedup}x (floor 2.0x) =="
# The row engine's zero-copy projection fast path must not regress below the
# copying path it replaces.
zc_speedup="$(grep '"zero_copy_project"' BENCH_engine_micro.json \
  | grep -o '"speedup": [0-9.]*' | awk '{print $2}')"
if ! awk -v s="${zc_speedup:-0}" 'BEGIN { exit !(s >= 1.0) }'; then
  echo "zero-copy projection fast path is slower than the copying path (${zc_speedup}x)" >&2
  exit 1
fi
echo "== bench: zero-copy projection fast path ${zc_speedup}x =="

echo "== bench: fleet (1024 tenant shards under one scheduler) =="
"$build_dir"/bench/bench_fleet --json=BENCH_fleet.json

echo "== bench: validating BENCH_fleet.json =="
for key in '"fleet"' '"tenants_migrated"' '"throughput_qps"' '"p50_ms"' '"p95_ms"' \
  '"p99_ms"' '"io_peak_outstanding"' '"same_step_plan_cache"'; do
  grep -q "$key" BENCH_fleet.json || {
    echo "fleet JSON is missing the key $key" >&2
    exit 1
  }
done
# The acceptance floor: at least 1000 tenants migrated end to end.
fleet_migrated="$(grep -o '"tenants_migrated": [0-9]*' BENCH_fleet.json | awk '{print $2}')"
if [ "${fleet_migrated:-0}" -lt 1000 ]; then
  echo "fleet migrated only ${fleet_migrated} tenants (floor 1000)" >&2
  exit 1
fi
# Zero non-bind foreground errors across the whole rollout window
# (unservable statements are counted separately, never as errors).
grep -q '"errors": 0,' BENCH_fleet.json || {
  echo "fleet serving reported foreground errors" >&2
  exit 1
}
# The global migration-I/O budget must hold exactly.
io_cap="$(grep -o '"io_capacity": [0-9]*' BENCH_fleet.json | awk '{print $2}')"
io_peak="$(grep -o '"io_peak_outstanding": [0-9]*' BENCH_fleet.json | awk '{print $2}')"
if [ "${io_peak:-0}" -gt "${io_cap:-0}" ]; then
  echo "fleet exceeded its I/O budget (peak ${io_peak} > capacity ${io_cap})" >&2
  exit 1
fi
# Same-step tenants must amortize planning to >= 90% shared-cache hits.
fleet_hit_pct="$(grep -o '"same_step_hit_pct": [0-9.]*' BENCH_fleet.json | awk '{print $2}')"
if ! awk -v h="${fleet_hit_pct:-0}" 'BEGIN { exit !(h >= 90.0) }'; then
  echo "same-step plan-cache hit rate ${fleet_hit_pct}% is below the 90% floor" >&2
  exit 1
fi
echo "== bench: fleet migrated ${fleet_migrated} tenants, same-step hit rate ${fleet_hit_pct}% =="

echo "== bench: OK =="
