#!/usr/bin/env bash
# Builds (Release) and runs the machine-readable benches, leaving their JSON
# artifacts in the repo root — the project's perf trajectory across PRs.
#
#   scripts/bench.sh            # build + run, writes BENCH_laa_scaling.json
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"
build_dir="build-bench"

echo "== bench: configuring Release build ($build_dir) =="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "== bench: building =="
cmake --build "$build_dir" -j "$jobs" --target bench_laa_scaling >/dev/null

echo "== bench: LAA scaling (pruned vs brute force vs GAA) =="
"$build_dir"/bench/bench_laa_scaling --json=BENCH_laa_scaling.json

echo "== bench: OK =="
